"""Correlation experiments (Tables 1–4 of the paper).

For every data set and every amount of side information, the Pearson
correlation between the CVCP internal classification scores and the
external Overall F-Measure is computed per trial (across the parameter
range) and averaged over trials.  For the ALOI column the average also runs
over the data sets of the collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constraints.oracles import ConstraintOracle
from repro.datasets.registry import get_dataset, get_dataset_collection
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import AlgorithmName, ScenarioName, run_trials
from repro.utils.rng import RandomStateLike, check_random_state


@dataclass
class CorrelationTable:
    """One of Tables 1–4.

    Attributes
    ----------
    algorithm / scenario:
        Which algorithm and which scenario the table describes.
    amounts:
        Row keys (label fractions or constraint-pool fractions).
    datasets:
        Column keys (data-set names).
    values:
        ``values[amount][dataset]`` = mean correlation.
    """

    algorithm: AlgorithmName
    scenario: ScenarioName
    amounts: list[float]
    datasets: list[str]
    values: dict[float, dict[str, float]] = field(default_factory=dict)

    def row(self, amount: float) -> list[float]:
        """The correlations of one row, in ``datasets`` order."""
        return [self.values[amount][name] for name in self.datasets]

    def as_rows(self) -> list[list[object]]:
        """Rows ready for text formatting: ``[amount, corr, corr, ...]``."""
        return [[amount, *self.row(amount)] for amount in self.amounts]


def _datasets_for(name: str, config: ExperimentConfig, seed: int) -> list:
    if name.lower() == "aloi":
        return get_dataset_collection("ALOI", n_datasets=config.n_aloi_datasets,
                                      random_state=seed)
    return [get_dataset(name, random_state=seed)]


def correlation_table(
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    *,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    store: ArtifactStore | None = None,
    parallelize: str = "grid",
    oracle: ConstraintOracle | None = None,
) -> CorrelationTable:
    """Compute the correlation table for one algorithm and one scenario.

    Table 1 = ``("fosc", "labels")``, Table 2 = ``("mpck", "labels")``,
    Table 3 = ``("fosc", "constraints")``, Table 4 = ``("mpck", "constraints")``.
    ``n_jobs``/``backend`` override the execution engine of ``config``; with
    a ``store``, per-trial artifacts are reused and written through.
    """
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    rng = check_random_state(random_state if random_state is not None else config.seed)
    amounts = (
        list(config.label_fractions) if scenario == "labels"
        else list(config.constraint_fractions)
    )

    table = CorrelationTable(
        algorithm=algorithm,
        scenario=scenario,
        amounts=amounts,
        datasets=list(config.datasets),
    )
    for amount in amounts:
        table.values[amount] = {}
        for name in config.datasets:
            datasets = _datasets_for(name, config, int(rng.integers(0, 2**31 - 1)))
            correlations: list[float] = []
            for dataset in datasets:
                trials = run_trials(
                    dataset, algorithm, scenario, amount, config.n_trials,
                    config=config, random_state=int(rng.integers(0, 2**31 - 1)),
                    store=store, parallelize=parallelize, oracle=oracle,
                )
                correlations.extend(trial.correlation for trial in trials)
            table.values[amount][name] = float(np.mean(correlations))
    return table
