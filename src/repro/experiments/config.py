"""Experiment configuration: the paper's setup and scaled-down defaults.

The paper's setup (Section 4.1):

* FOSC-OPTICSDend sweeps ``MinPts ∈ {3, 6, 9, 12, 15, 18, 21, 24}``;
* MPCKMeans sweeps ``k ∈ {2, ..., M}`` with ``M`` a reasonable upper bound
  per data set (we use ``number of classes + 3``, capped at 10, which gives
  the ranges shown in Figures 6/8);
* label scenario: 5%, 10%, 20% of objects labelled;
* constraint scenario: a pool from 10% of each class, of which 10%, 20%,
  50% is given to the algorithm;
* every cell is averaged over 50 independent trials; the ALOI column is
  additionally averaged over the 100 data sets of the collection.

Running 50 trials over 100 ALOI data sets is hours of compute in pure
Python, so the benchmark harness defaults to :data:`QUICK_CONFIG` (fewer
trials, a handful of ALOI data sets, 5 folds); setting the environment
variable ``REPRO_FULL=1`` switches to :data:`PAPER_CONFIG`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.core.executor import ExecutionSpec
from repro.datasets.base import Dataset

#: MinPts values swept for FOSC-OPTICSDend (Section 4.1).
MINPTS_RANGE: tuple[int, ...] = (3, 6, 9, 12, 15, 18, 21, 24)

#: Fractions of labelled objects in the label scenario.
LABEL_FRACTIONS: tuple[float, ...] = (0.05, 0.10, 0.20)

#: Fractions of the constraint pool in the constraint scenario.
CONSTRAINT_FRACTIONS: tuple[float, ...] = (0.10, 0.20, 0.50)

#: Data sets in the order used by the paper's tables.
TABLE_DATASETS: tuple[str, ...] = ("ALOI", "Iris", "Wine", "Ionosphere", "Ecoli", "Zyeast")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    Attributes
    ----------
    n_trials:
        Independent repetitions per cell (the paper uses 50).
    n_folds:
        Cross-validation folds inside CVCP (the paper follows the usual
        10-fold convention; the quick configuration uses 5).
    n_aloi_datasets:
        How many data sets of the ALOI collection to average over
        (paper: 100).
    minpts_range:
        MinPts values for FOSC-OPTICSDend.
    label_fractions / constraint_fractions:
        Amounts of side information to evaluate.
    max_k:
        Hard upper cap on the swept ``k`` range.
    mpck_n_init / mpck_max_iter:
        Restart and iteration budget of MPCKMeans (reduced in the quick
        configuration to keep the benchmarks responsive).
    datasets:
        Data-set names to include (paper order).
    seed:
        Master seed; every trial derives its own child seed from it.
    backend:
        Execution backend for the CVCP grid and the trial loops
        (``"serial"``, ``"thread"`` or ``"process"``); see
        :mod:`repro.core.executor`.  All backends are bit-identical for a
        fixed seed.
    n_jobs:
        Worker count for the parallel backends (``None`` = all cores).
    distance_backend:
        Distance-matrix storage tier (``"dense"``, ``"blockwise"``,
        ``"memmap"`` or ``"neighbors"``; see
        :mod:`repro.core.distance_backend`).  ``None`` defers to
        ``REPRO_DISTANCE_BACKEND``/the dense default.  The exact tiers are
        bit-identical, so they are deliberately *not* part of the trial
        artifact fingerprint — stores are shared across them.  The
        ``neighbors`` tier is approximate and *is* fingerprinted (together
        with ``epsilon``/``k_neighbors``), so its trials never shadow
        exact ones.
    epsilon / k_neighbors:
        Neighbour-graph radius and out-degree for the ``neighbors`` tier
        (``None`` defers to ``REPRO_NEIGHBOR_EPSILON`` /
        ``REPRO_NEIGHBOR_K``); ignored by the exact tiers.
    metric:
        Distance metric every resolved data set is evaluated under
        (``"euclidean"``, ``"cosine"`` or ``None``).  ``None`` keeps each
        data set's own default (euclidean for the UCI-style sets, cosine
        for ``"Text"``).  Non-Euclidean metrics become part of the trial
        artifact fingerprint, so cosine trials never shadow euclidean ones.
    """

    n_trials: int = 50
    n_folds: int = 10
    n_aloi_datasets: int = 100
    minpts_range: tuple[int, ...] = MINPTS_RANGE
    label_fractions: tuple[float, ...] = LABEL_FRACTIONS
    constraint_fractions: tuple[float, ...] = CONSTRAINT_FRACTIONS
    max_k: int = 10
    mpck_n_init: int = 3
    mpck_max_iter: int = 30
    datasets: tuple[str, ...] = TABLE_DATASETS
    seed: int = 20140324  # EDBT 2014 conference start date
    backend: str = "serial"
    n_jobs: int | None = None
    distance_backend: str | None = None
    epsilon: float | None = None
    k_neighbors: int | None = None
    metric: str | None = None

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def with_execution(
        self,
        backend: str | None = None,
        n_jobs: int | None = None,
        distance_backend: str | None = None,
        epsilon: float | None = None,
        k_neighbors: int | None = None,
        metric: str | None = None,
    ) -> "ExperimentConfig":
        """Copy with the execution engine overridden where arguments are given."""
        if (
            backend is None and n_jobs is None and distance_backend is None
            and epsilon is None and k_neighbors is None and metric is None
        ):
            return self
        return replace(
            self,
            backend=backend if backend is not None else self.backend,
            n_jobs=n_jobs if n_jobs is not None else self.n_jobs,
            distance_backend=(
                distance_backend if distance_backend is not None else self.distance_backend
            ),
            epsilon=epsilon if epsilon is not None else self.epsilon,
            k_neighbors=k_neighbors if k_neighbors is not None else self.k_neighbors,
            metric=metric if metric is not None else self.metric,
        )

    def execution_spec(self) -> ExecutionSpec:
        """The execution engine fields as one validated ``ExecutionSpec``."""
        return ExecutionSpec(
            backend=self.backend, n_jobs=self.n_jobs,
            distance_backend=self.distance_backend,
            epsilon=self.epsilon, k_neighbors=self.k_neighbors,
            metric=self.metric,
        )


#: The paper-scale configuration (50 trials, 100 ALOI data sets, 10 folds).
PAPER_CONFIG = ExperimentConfig()

#: A laptop-friendly configuration used by the benchmarks by default.
QUICK_CONFIG = ExperimentConfig(
    n_trials=2,
    n_folds=4,
    n_aloi_datasets=2,
    minpts_range=(3, 6, 9, 12, 15, 18),
    mpck_n_init=1,
    mpck_max_iter=10,
)


def default_config() -> ExperimentConfig:
    """Select the configuration from environment variables.

    ``REPRO_FULL=1`` switches to the paper-scale configuration;
    ``REPRO_BACKEND`` (``serial``/``thread``/``process``) and
    ``REPRO_N_JOBS`` select the execution engine without touching code,
    which is how the benchmark harness and CI exercise the parallel paths.
    (``REPRO_DISTANCE_BACKEND`` needs no plumbing here: a ``None``
    ``distance_backend`` defers to the environment at every use site — see
    :func:`repro.core.distance_backend.resolve_distance_backend`.)
    """
    if os.environ.get("REPRO_FULL", "").strip() in {"1", "true", "yes"}:
        config = PAPER_CONFIG
    else:
        config = QUICK_CONFIG
    backend = os.environ.get("REPRO_BACKEND", "").strip() or None
    n_jobs_raw = os.environ.get("REPRO_N_JOBS", "").strip()
    n_jobs = None
    if n_jobs_raw:
        try:
            n_jobs = int(n_jobs_raw)
        except ValueError:
            raise ValueError(
                f"REPRO_N_JOBS must be an integer, got {n_jobs_raw!r}"
            ) from None
    return config.with_execution(backend=backend, n_jobs=n_jobs)


def k_range_for_dataset(dataset: Dataset, *, max_k: int = 10) -> list[int]:
    """Candidate ``k`` values for a data set: ``2 .. min(n_classes + 3, max_k)``.

    The paper describes the range as ``[2, M]`` with ``M`` "an upper bound
    for the number of clusters that a user would reasonably specify"; the
    representative ALOI figures use 2–10 (label scenario) and 2–9
    (constraint scenario) for 5 true classes, i.e. roughly true k + 4/5.
    """
    upper = min(dataset.n_classes + 3, max_k)
    upper = max(upper, 3)
    return list(range(2, upper + 1))
