"""Score curves over the parameter range (Figures 5–8 of the paper).

Each figure shows, for one representative ALOI data set and one amount of
side information, the CVCP internal classification score and the external
clustering score (Overall F-Measure) as functions of the swept parameter
(MinPts for FOSC-OPTICSDend, k for MPCKMeans), together with their
correlation coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.oracles import ConstraintOracle
from repro.datasets.base import Dataset
from repro.datasets.registry import get_dataset
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import AlgorithmName, ScenarioName, run_trial
from repro.utils.rng import RandomStateLike, check_random_state


@dataclass
class ParameterCurves:
    """The data behind one of Figures 5–8.

    Attributes
    ----------
    parameter_name:
        ``"MinPts"`` or ``"k"``.
    parameter_values:
        X axis.
    internal_scores:
        "CVCP internal classification scores" curve.
    external_scores:
        "clustering scores" (Overall F-Measure) curve.
    correlation:
        Pearson correlation between the two curves (the figure captions
        report 0.94–0.99 on the representative ALOI data set).
    """

    algorithm: AlgorithmName
    scenario: ScenarioName
    amount: float
    parameter_name: str
    parameter_values: list[int]
    internal_scores: list[float]
    external_scores: list[float]
    correlation: float

    def as_series(self) -> list[tuple[int, float, float]]:
        """``(parameter, internal, external)`` triples for printing/plotting."""
        return list(zip(self.parameter_values, self.internal_scores, self.external_scores))


def parameter_curves(
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    *,
    amount: float | None = None,
    dataset: Dataset | None = None,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    store: ArtifactStore | None = None,
    oracle: ConstraintOracle | None = None,
) -> ParameterCurves:
    """Compute the curves of one figure.

    Paper mapping: Figure 5 = ``("fosc", "labels")``, Figure 6 =
    ``("mpck", "labels")``, Figure 7 = ``("fosc", "constraints")``,
    Figure 8 = ``("mpck", "constraints")``; all four use 10% of labels /
    10% of the constraint pool on a representative ALOI data set.
    """
    config = config or default_config()
    rng = check_random_state(random_state if random_state is not None else config.seed)
    if amount is None:
        amount = 0.10
    if dataset is None:
        dataset = get_dataset("ALOI", random_state=int(rng.integers(0, 2**31 - 1)))

    trial = run_trial(
        dataset, algorithm, scenario, amount,
        config=config, random_state=int(rng.integers(0, 2**31 - 1)),
        store=store, oracle=oracle,
    )
    return ParameterCurves(
        algorithm=algorithm,
        scenario=scenario,
        amount=amount,
        parameter_name="MinPts" if algorithm == "fosc" else "k",
        parameter_values=trial.parameter_values,
        internal_scores=trial.internal_scores,
        external_scores=trial.external_scores,
        correlation=trial.correlation,
    )
