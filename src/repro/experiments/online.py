"""Incremental CVCP: replay a constraint stream over cached tree structures.

The paper's CVCP procedure treats the constraint set as fixed.  In
practice constraints *arrive*: an oracle answers queries over time, and
after every batch of answers the practitioner wants the currently best
parameter value.  Rerunning the full grid from scratch on every batch
wastes almost all of its work — for FOSC the expensive phase (OPTICS
core distances, the mutual-reachability MST, the condensed tree) does
not depend on the constraints at all, only the FOSC extraction and the
fold scoring do.

This module replays such a stream deterministically:

1. the oracle's full constraint set for the configured amount is drawn
   once (the same draw a batch trial would make) and put in a
   deterministic order (``sorted`` by the normalised constraint tuple,
   or ``shuffled`` by the stream's own seeded permutation);
2. the stream is cut into ``n_deltas`` cumulative prefixes — delta ``t``
   re-runs CVCP selection on the first ``counts[t]`` constraints;
3. every delta is a *full, honest* CVCP fit (per-step seed derived
   up-front via :func:`~repro.utils.rng.spawn_seeds`), so its selection
   is bit-identical to a cold CVCP run on the same accumulated
   constraint set — the structure cache
   (:func:`repro.clustering.hierarchy.cached_tree_structure`) merely
   turns the per-delta refits into cheap re-extractions;
4. with an :class:`~repro.experiments.artifacts.ArtifactStore`, every
   completed delta persists one ``"online"`` artifact (and its CVCP
   grid persists per-cell ``"cell"`` artifacts while in flight), so a
   replay killed mid-stream resumes exactly where it died and produces
   a byte-identical report.

The replay reports the selection-stability-vs-queries curve: for every
delta, the number of constraints seen so far, the selected parameter
value, whether the selection changed, and whether it already agrees
with the final selection.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from math import ceil
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.constraints.constraint import ConstraintSet
from repro.constraints.oracles import ConstraintOracle
from repro.core.cvcp import CVCP
from repro.core.distance_backend import resolve_distance_backend
from repro.experiments.artifacts import (
    ArtifactStore,
    dataset_fingerprint,
    trial_config_fingerprint,
)
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import (
    algorithm_factory,
    make_side_information,
    parameter_values_for,
)
from repro.utils.rng import RandomStateLike, check_random_state, spawn_seeds
from repro.utils.specs import SpecError, check_spec_mapping, unknown_key_problems

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datasets.base import Dataset

__all__ = [
    "STREAM_ORDERS",
    "OnlineReplay",
    "OnlineStep",
    "StreamSpec",
    "replay_constraint_stream",
    "stream_prefix_sizes",
    "stream_step_key",
]

#: Deterministic orderings a constraint stream can arrive in.
STREAM_ORDERS: tuple[str, ...] = ("sorted", "shuffled")

DEFAULT_N_DELTAS = 4


@dataclass(frozen=True)
class StreamSpec:
    """The ``[stream]`` pipeline-config table (``kind = "online"`` only).

    Attributes
    ----------
    n_deltas:
        Number of cumulative constraint batches the stream is cut into;
        every delta triggers one incremental re-selection.
    order:
        Arrival order of the constraints: ``"sorted"`` (the normalised
        constraint-tuple order — reproducible across platforms) or
        ``"shuffled"`` (a permutation drawn from the replay's own seed).
    """

    n_deltas: int = DEFAULT_N_DELTAS
    order: str = "sorted"

    def with_overrides(self, **overrides) -> "StreamSpec":
        """A copy with the given fields replaced (CLI flag overrides)."""
        return replace(self, **{key: value for key, value in overrides.items() if value is not None})

    def to_spec(self) -> dict:
        """JSON/TOML-ready ``[stream]`` table (the shared spec protocol)."""
        return {"n_deltas": self.n_deltas, "order": self.order}

    @classmethod
    def from_spec(cls, spec: dict) -> "StreamSpec":
        """Validate a ``[stream]`` table mapping into a spec.

        Collects every problem before raising
        :class:`~repro.utils.specs.SpecError`.
        """
        spec = check_spec_mapping(spec, "stream")
        known = ("n_deltas", "order")
        problems = unknown_key_problems(spec, known, "stream")
        kwargs: dict[str, object] = {}
        if "n_deltas" in spec:
            value = spec["n_deltas"]
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                problems.append(f"stream.n_deltas: must be a positive integer, got {value!r}")
            else:
                kwargs["n_deltas"] = value
        if "order" in spec:
            value = spec["order"]
            if not isinstance(value, str) or value not in STREAM_ORDERS:
                problems.append(
                    f"stream.order: must be one of {', '.join(STREAM_ORDERS)}, got {value!r}"
                )
            else:
                kwargs["order"] = value
        if problems:
            raise SpecError("stream", problems)
        return cls(**kwargs)


@dataclass
class OnlineStep:
    """One incremental re-selection after a constraint delta.

    ``fold_scores`` holds the full CVCP grid of this step (one list of
    per-fold internal scores per parameter value) and ``labels`` the
    partition of the refit at the selected value — together with
    ``value`` these are the three quantities the delta-equivalence
    contract pins bit-identically to a cold run.
    """

    step: int
    queries: int
    value: int
    fold_scores: list[list[float]]
    labels: list[int]

    @property
    def mean_scores(self) -> list[float]:
        """Mean internal score per parameter value, in sweep order."""
        return [float(np.mean(scores)) if scores else 0.0 for scores in self.fold_scores]

    @property
    def labels_digest(self) -> str:
        """SHA-256 of the selected partition (summaries stay small)."""
        array = np.asarray(self.labels, dtype=np.int64)
        return hashlib.sha256(array.tobytes()).hexdigest()

    def to_payload(self) -> dict:
        """JSON-serialisable form (exact float round-trip; see artifacts)."""
        return {
            "step": self.step,
            "queries": self.queries,
            "value": self.value,
            "fold_scores": [list(scores) for scores in self.fold_scores],
            "labels": [int(label) for label in self.labels],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "OnlineStep":
        """Rebuild a step from :meth:`to_payload` output (or a JSON load)."""
        return cls(
            step=int(payload["step"]),
            queries=int(payload["queries"]),
            value=int(payload["value"]),
            fold_scores=[[float(v) for v in scores] for scores in payload["fold_scores"]],
            labels=[int(label) for label in payload["labels"]],
        )


@dataclass
class OnlineReplay:
    """The full selection-stability-vs-queries record of one stream."""

    dataset: str
    amount: float
    stream: StreamSpec
    parameter_values: list[int]
    total_constraints: int
    steps: list[OnlineStep] = field(default_factory=list)

    @property
    def final_value(self) -> int:
        """The selection after the whole stream arrived."""
        if not self.steps:
            raise ValueError("the replay recorded no steps")
        return self.steps[-1].value

    @property
    def stability(self) -> float:
        """Fraction of deltas whose selection already equals the final one."""
        if not self.steps:
            return 0.0
        final = self.final_value
        return float(np.mean([step.value == final for step in self.steps]))

    def as_summary(self) -> dict:
        """Deterministic JSON summary (part of ``summary.json``)."""
        final = self.final_value
        previous: int | None = None
        steps = []
        for step in self.steps:
            steps.append(
                {
                    "step": step.step,
                    "queries": step.queries,
                    "value": step.value,
                    "changed": previous is not None and step.value != previous,
                    "agrees_with_final": step.value == final,
                    "mean_scores": step.mean_scores,
                    "labels_digest": step.labels_digest,
                }
            )
            previous = step.value
        return {
            "n_deltas": self.stream.n_deltas,
            "order": self.stream.order,
            "total_constraints": self.total_constraints,
            "parameter_values": list(self.parameter_values),
            "steps": steps,
            "final_value": final,
            "stability": self.stability,
        }


def stream_prefix_sizes(total: int, n_deltas: int) -> list[int]:
    """Cumulative prefix sizes of a stream cut into ``n_deltas`` batches.

    The last prefix always covers the whole stream; with fewer
    constraints than deltas some consecutive prefixes coincide (their
    re-selection is then served from the per-step artifact).
    """
    if n_deltas < 1:
        raise ValueError(f"n_deltas must be positive, got {n_deltas}")
    return [ceil(total * (index + 1) / n_deltas) for index in range(n_deltas)]


def stream_step_key(
    config: ExperimentConfig,
    dataset: "Dataset",
    amount: float,
    stream: StreamSpec,
    step: int,
    step_seed: int,
    oracle: ConstraintOracle | None = None,
) -> dict:
    """Artifact-store key of one online re-selection step.

    Mirrors :func:`~repro.experiments.runner.trial_artifact_key`: the
    trial-relevant config fields, the data-set content, the oracle spec,
    the amount, the stream shape and the step's position + derived seed.
    The exact distance tiers share keys; the approximate ``neighbors``
    tier carries its own ``approx`` entry.
    """
    from repro.constraints.oracles import PerfectOracle

    oracle = oracle if oracle is not None else PerfectOracle()
    key = {
        "config": trial_config_fingerprint(config),
        "dataset": dataset_fingerprint(dataset),
        "algorithm": "fosc",
        "scenario": "constraints",
        "amount": float(amount),
        "oracle": oracle.spec(),
        "stream": {"n_deltas": int(stream.n_deltas), "order": str(stream.order)},
        "step": int(step),
        "step_seed": int(step_seed),
    }
    if resolve_distance_backend(config.distance_backend) == "neighbors":
        from repro.core.neighbor_graph import resolve_neighbor_epsilon, resolve_neighbor_k

        epsilon = resolve_neighbor_epsilon(config.epsilon)
        key["approx"] = {
            "distance_backend": "neighbors",
            # JSON has no inf literal; serialise it as the string "inf".
            "epsilon": "inf" if np.isinf(epsilon) else float(epsilon),
            "k_neighbors": resolve_neighbor_k(config.k_neighbors),
        }
    return key


def ordered_stream(
    constraints: ConstraintSet, order: str, rng: np.random.Generator
) -> list:
    """The stream's deterministic arrival order over a constraint set.

    ``rng`` is consumed only by ``"shuffled"``; the draw happens for
    every order so the downstream seed stream does not depend on it.
    """
    if order not in STREAM_ORDERS:
        raise ValueError(f"order must be one of {STREAM_ORDERS}, got {order!r}")
    base = sorted(constraints)
    permutation = rng.permutation(len(base))
    if order == "shuffled":
        return [base[index] for index in permutation]
    return base


def replay_constraint_stream(
    dataset: "Dataset",
    amount: float,
    *,
    config: ExperimentConfig | None = None,
    stream: StreamSpec | None = None,
    oracle: ConstraintOracle | None = None,
    random_state: RandomStateLike = None,
    store: ArtifactStore | None = None,
) -> OnlineReplay:
    """Replay one oracle constraint stream through incremental CVCP.

    Every delta runs a full CVCP selection (refit included) on the
    accumulated constraint prefix with a per-step derived seed, so the
    selected value, the per-cell scores and the refit labels are
    bit-identical to a cold CVCP run on the same accumulated set — the
    structure cache only removes the redundant refitting work.  With a
    ``store``, completed steps are served from their ``"online"``
    artifacts (and in-flight grids resume per cell), so a killed replay
    restarted over the same store root reports byte-identical results.
    """
    config = config or default_config()
    stream = stream or StreamSpec()
    rng = check_random_state(random_state if random_state is not None else config.seed)

    side = make_side_information(
        dataset, "constraints", amount, random_state=rng, oracle=oracle
    )
    arrivals = ordered_stream(side.constraints, stream.order, rng)
    estimator = algorithm_factory("fosc", config, random_state=rng)
    values = parameter_values_for("fosc", dataset, config)
    step_seeds = spawn_seeds(rng, stream.n_deltas)
    counts = stream_prefix_sizes(len(arrivals), stream.n_deltas)

    steps: list[OnlineStep] = []
    for index, (count, step_seed) in enumerate(zip(counts, step_seeds)):
        key = None
        if store is not None:
            key = stream_step_key(config, dataset, amount, stream, index, step_seed, oracle)
            cached = store.get("online", key)
            if cached is not None:
                steps.append(OnlineStep.from_payload(cached))
                continue
        prefix = ConstraintSet(arrivals[:count])
        search = CVCP(
            estimator,
            values,
            n_folds=config.n_folds,
            refit=True,
            random_state=step_seed,
            execution=config.execution_spec(),
            artifact_store=store,
            artifact_scope=key,
        )
        search.fit(dataset.X, constraints=prefix)
        step = OnlineStep(
            step=index,
            queries=count,
            value=int(search.cv_results_.best_value),
            fold_scores=[
                [float(score) for score in evaluation.fold_scores]
                for evaluation in search.cv_results_.evaluations
            ],
            labels=[int(label) for label in search.labels_],
        )
        steps.append(step)
        if store is not None and key is not None:
            store.put("online", key, step.to_payload())
            _compact_step_cells(store, key, len(values), config.n_folds)
    return OnlineReplay(
        dataset=dataset.name,
        amount=float(amount),
        stream=stream,
        parameter_values=list(values),
        total_constraints=len(arrivals),
        steps=steps,
    )


def _compact_step_cells(
    store: ArtifactStore, key: dict, n_values: int, n_folds: int
) -> None:
    """Drop the interim per-cell artifacts of a completed online step.

    The step artifact carries everything a resumed replay needs; the
    cells only matter while the step's own grid is in flight.
    """
    for value_index in reversed(range(n_values)):
        for fold_index in reversed(range(n_folds)):
            store.delete("cell", dict(key, phase="grid", value_index=value_index, fold=fold_index))


def cold_selection(
    dataset: "Dataset",
    constraints: ConstraintSet,
    step_seed: int,
    *,
    config: ExperimentConfig | None = None,
    template_seed_rng: np.random.Generator | None = None,
) -> tuple[int, list[list[float]], list[int]]:
    """One cold CVCP selection on an accumulated constraint set.

    The reference the delta-equivalence suite compares against: no
    artifact store, and the caller is expected to have cleared the
    process-wide caches.  Returns ``(value, fold_scores, labels)`` in
    the same shapes an :class:`OnlineStep` records.
    """
    config = config or default_config()
    rng = template_seed_rng if template_seed_rng is not None else np.random.default_rng(0)
    estimator = algorithm_factory("fosc", config, random_state=rng)
    values = parameter_values_for("fosc", dataset, config)
    search = CVCP(
        estimator,
        values,
        n_folds=config.n_folds,
        refit=True,
        random_state=step_seed,
        execution=config.execution_spec(),
    )
    search.fit(dataset.X, constraints=constraints)
    return (
        int(search.cv_results_.best_value),
        [
            [float(score) for score in evaluation.fold_scores]
            for evaluation in search.cv_results_.evaluations
        ],
        [int(label) for label in search.labels_],
    )
