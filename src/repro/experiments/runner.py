"""Single-trial experiment drivers.

One *trial* fixes a data set, an algorithm, a scenario (labels or
constraints) and an amount of side information, then

1. samples a fresh set of labelled objects (label scenario) or a fresh
   constraint pool and subset (constraint scenario);
2. runs CVCP over the algorithm's parameter range, recording the internal
   (cross-validated constraint-classification) score of every value;
3. runs the algorithm once per parameter value with *all* the side
   information and records the external Overall F-Measure of each partition
   (evaluated only on objects not involved in the side information);
4. derives the quantities the paper reports: the quality of the
   CVCP-selected parameter, the expected quality over the range, the
   Silhouette-selected quality (MPCKMeans), and the internal/external
   correlation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.fosc import FOSCOpticsDend
from repro.clustering.mpckmeans import MPCKMeans
from repro.constraints.constraint import ConstraintSet
from repro.constraints.generation import constraints_from_labels
from repro.constraints.oracles import ConstraintOracle, PerfectOracle
from repro.core.cvcp import CVCP
from repro.core.distance_backend import resolve_distance_backend
from repro.core.executor import get_executor
from repro.core.model_selection import expected_quality
from repro.datasets.base import Dataset
from repro.evaluation.external import overall_f_measure
from repro.evaluation.internal import silhouette_score
from repro.experiments.artifacts import (
    ArtifactStore,
    dataset_fingerprint,
    trial_config_fingerprint,
)
from repro.experiments.config import ExperimentConfig, default_config, k_range_for_dataset
from repro.utils.rng import RandomStateLike, check_random_state, spawn_seeds

AlgorithmName = Literal["fosc", "mpck"]
ScenarioName = Literal["labels", "constraints"]


@dataclass
class SideInformation:
    """The side information sampled for one trial."""

    scenario: ScenarioName
    labeled_objects: dict[int, int] = field(default_factory=dict)
    constraints: ConstraintSet = field(default_factory=ConstraintSet)

    @property
    def involved_objects(self) -> list[int]:
        """Objects that must be excluded from the external evaluation."""
        if self.scenario == "labels":
            return sorted(self.labeled_objects)
        return self.constraints.involved_objects()

    def training_constraints(self) -> ConstraintSet:
        """Constraints to feed to the clustering algorithm."""
        if self.scenario == "labels":
            return constraints_from_labels(self.labeled_objects)
        return self.constraints


@dataclass
class TrialResult:
    """Everything measured in one trial.

    Attributes
    ----------
    parameter_values:
        The swept values (MinPts or k).
    internal_scores:
        CVCP cross-validated internal score per parameter value.
    external_scores:
        Overall F-Measure per parameter value when clustering with all side
        information (evaluated on non-side-information objects only).
    cvcp_value / cvcp_quality:
        Parameter selected by CVCP and its external quality.
    expected_quality:
        Mean external quality over the range (random-guess reference).
    silhouette_value / silhouette_quality:
        Parameter selected by the Silhouette baseline and its external
        quality (populated for MPCKMeans; also computed for FOSC for the
        extension experiments, even though the paper does not report it).
    correlation:
        Pearson correlation between internal and external scores across the
        parameter range (the quantity of Tables 1–4).
    """

    algorithm: AlgorithmName
    scenario: ScenarioName
    amount: float
    parameter_values: list[int]
    internal_scores: list[float]
    external_scores: list[float]
    cvcp_value: int
    cvcp_quality: float
    expected_quality: float
    silhouette_value: int
    silhouette_quality: float
    correlation: float

    def to_dict(self) -> dict:
        """JSON-serialisable form (exact float round-trip; see artifacts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialResult":
        """Rebuild a result from :meth:`to_dict` output (or a JSON load)."""
        return cls(
            algorithm=payload["algorithm"],
            scenario=payload["scenario"],
            amount=float(payload["amount"]),
            parameter_values=[int(v) for v in payload["parameter_values"]],
            internal_scores=[float(v) for v in payload["internal_scores"]],
            external_scores=[float(v) for v in payload["external_scores"]],
            cvcp_value=int(payload["cvcp_value"]),
            cvcp_quality=float(payload["cvcp_quality"]),
            expected_quality=float(payload["expected_quality"]),
            silhouette_value=int(payload["silhouette_value"]),
            silhouette_quality=float(payload["silhouette_quality"]),
            correlation=float(payload["correlation"]),
        )


def make_side_information(
    dataset: Dataset,
    scenario: ScenarioName,
    amount: float,
    *,
    random_state: RandomStateLike = None,
    oracle: ConstraintOracle | None = None,
) -> SideInformation:
    """Sample the side information for one trial through an oracle.

    * ``scenario="labels"``: reveal ``amount`` (e.g. 0.10) of all objects.
    * ``scenario="constraints"``: build a pool from 10% of each class and
      give ``amount`` of the pool to the algorithm.

    ``oracle`` selects the supervision source (default
    :class:`~repro.constraints.oracles.PerfectOracle`, which reproduces the
    paper's idealised generation bit-for-bit for a fixed seed).
    """
    rng = check_random_state(random_state)
    if scenario not in ("labels", "constraints"):
        raise ValueError(f"unknown scenario {scenario!r}")
    oracle = oracle if oracle is not None else PerfectOracle()
    labeled, constraints = oracle.side_information(
        dataset.y, scenario, amount, random_state=rng, X=dataset.X
    )
    if scenario == "labels":
        return SideInformation(scenario="labels", labeled_objects=labeled)
    return SideInformation(scenario="constraints", constraints=constraints)


def algorithm_factory(
    algorithm: AlgorithmName,
    config: ExperimentConfig,
    *,
    random_state: RandomStateLike = None,
    metric: str | None = None,
) -> BaseClusterer:
    """Instantiate the template estimator for an algorithm name.

    ``metric`` is the data set's effective distance metric (``None`` =
    euclidean); it flows into the density-based template and is rejected
    for combinations that cannot honour it (MPCKMeans learns Euclidean
    metrics; the ``neighbors`` tier is a Euclidean KD-tree index).
    """
    seed = int(check_random_state(random_state).integers(0, 2**31 - 1))
    metric = metric or "euclidean"
    if algorithm == "fosc":
        if metric != "euclidean" and resolve_distance_backend(config.distance_backend) == "neighbors":
            from repro.core.distance_backend import EXACT_DISTANCE_BACKENDS

            raise ValueError(
                f"distance_backend='neighbors' supports metric='euclidean' "
                f"only (KD-tree index), got metric={metric!r}; use an exact "
                f"distance backend ({'/'.join(EXACT_DISTANCE_BACKENDS)}) "
                f"for this metric"
            )
        return FOSCOpticsDend(
            min_pts=5, random_state=seed, metric=metric,
            distance_backend=config.distance_backend,
            epsilon=config.epsilon, k_neighbors=config.k_neighbors,
        )
    if algorithm == "mpck":
        if resolve_distance_backend(config.distance_backend) == "neighbors":
            raise ValueError(
                "distance_backend='neighbors' cannot drive MPCKMeans: the "
                "metric-learning updates need every pairwise entry, not a "
                "sparse neighbour graph; use an exact distance backend "
                "(dense, blockwise, memmap) for algorithm='mpck'"
            )
        if metric != "euclidean":
            raise ValueError(
                f"algorithm='mpck' learns per-cluster Euclidean metrics and "
                f"cannot run under metric={metric!r}; use algorithm='fosc' "
                f"for cosine or precomputed workloads"
            )
        return MPCKMeans(
            n_clusters=3,
            n_init=config.mpck_n_init,
            max_iter=config.mpck_max_iter,
            random_state=seed,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}; expected 'fosc' or 'mpck'")


def parameter_values_for(
    algorithm: AlgorithmName, dataset: Dataset, config: ExperimentConfig
) -> list[int]:
    """The swept parameter range for an algorithm/data-set pair."""
    if algorithm == "fosc":
        return [value for value in config.minpts_range if value < dataset.n_samples]
    return k_range_for_dataset(dataset, max_k=config.max_k)


def trial_artifact_key(
    config: ExperimentConfig,
    dataset: Dataset,
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    trial_seed: int,
    oracle: ConstraintOracle | None = None,
) -> dict:
    """Artifact-store key of one trial.

    The key pins everything the trial's result depends on: the
    trial-relevant config fields, the data-set content, the algorithm, the
    scenario/amount of side information, the oracle spec (which supervision
    source answered the queries, with all its parameters), and the trial
    seed from which every ``(value_index, fold)`` grid cell inside the
    trial derives.

    The exact distance tiers (dense/blockwise/memmap) are bit-identical and
    deliberately share keys.  The ``neighbors`` tier is approximate, so its
    trials carry an extra ``approx`` entry — the tier name and the resolved
    ``epsilon``/``k_neighbors`` — and can never shadow (or be shadowed by)
    an exact-tier entry.
    """
    oracle = oracle if oracle is not None else PerfectOracle()
    key = {
        "config": trial_config_fingerprint(config),
        "dataset": dataset_fingerprint(dataset),
        "algorithm": str(algorithm),
        "scenario": str(scenario),
        "amount": float(amount),
        "oracle": oracle.spec(),
        "trial_seed": int(trial_seed),
    }
    if resolve_distance_backend(config.distance_backend) == "neighbors":
        from repro.core.neighbor_graph import resolve_neighbor_epsilon, resolve_neighbor_k

        epsilon = resolve_neighbor_epsilon(config.epsilon)
        key["approx"] = {
            "distance_backend": "neighbors",
            # JSON has no inf literal; serialise it as the string "inf".
            "epsilon": "inf" if np.isinf(epsilon) else float(epsilon),
            "k_neighbors": resolve_neighbor_k(config.k_neighbors),
        }
    return key


def _load_cached_trial(
    store: ArtifactStore,
    key: dict,
    dataset: Dataset,
    algorithm: AlgorithmName,
    config: ExperimentConfig,
) -> "TrialResult | None":
    """Fetch a persisted trial; on a hit, also sweep any orphaned cells.

    A kill between a trial's put and its compaction can leave interim cell
    artifacts behind — the hit path self-heals the store.
    """
    cached = store.get("trial", key)
    if cached is None:
        return None
    # One stat call decides whether a sweep is needed: the compaction order
    # guarantees the external(0) cell is deleted last, so its survival is a
    # reliable sentinel for a compaction interrupted mid-sweep.
    sentinel = store.path_for("cell", dict(key, phase="external", value_index=0))
    if sentinel.is_file():
        n_values = len(parameter_values_for(algorithm, dataset, config))
        _compact_trial_cells(store, key, n_values, config.n_folds)
    return TrialResult.from_dict(cached)


def _store_trial(
    store: ArtifactStore,
    key: dict,
    result: "TrialResult",
    n_values: int,
    n_folds: int,
) -> None:
    """Persist a completed trial and compact its interim cell artifacts.

    The sweep uses the configured fold cap, not the realised fold count:
    an earlier interrupted attempt may have persisted cells for folds the
    completing run did not materialise.
    """
    store.put("trial", key, result.to_dict())
    _compact_trial_cells(store, key, n_values, n_folds)


def run_trial(
    dataset: Dataset,
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    *,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    store: ArtifactStore | None = None,
    oracle: ConstraintOracle | None = None,
) -> TrialResult:
    """Run one full trial (see the module docstring).

    ``n_jobs``/``backend`` override the execution engine of
    ``config`` for the CVCP grid inside this trial.  ``oracle`` selects the
    supervision source the side information is drawn from (default: the
    paper's perfect oracle); its spec is part of the artifact key, so
    trials generated under different oracles never share cache entries.
    With a ``store`` and an *integer* ``random_state`` (the seed doubles as
    the artifact key), a previously persisted result is returned without
    recomputation and a fresh result is written through; a generator
    ``random_state`` cannot be keyed, so it always computes.

    While a keyed trial is in flight, every finished ``(value_index, fold)``
    CVCP grid cell and every per-value external fit is persisted as its own
    ``cell`` artifact, so an interrupted trial resumes mid-grid.  Once the
    trial completes, its result is written as one ``trial`` artifact and
    the interim cells are compacted away.
    """
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    if config.metric is not None:
        # The config-level metric override is applied to the data set itself
        # so every downstream consumer — estimator construction, silhouette,
        # the trial fingerprint — sees one consistent effective metric.
        dataset = dataset.with_metric(config.metric)
    key: dict | None = None
    if store is not None and isinstance(random_state, (int, np.integer)):
        key = trial_artifact_key(
            config, dataset, algorithm, scenario, amount, int(random_state), oracle
        )
        cached = _load_cached_trial(store, key, dataset, algorithm, config)
        if cached is not None:
            return cached
    cell_store = store if key is not None else None
    rng = check_random_state(random_state)

    side = make_side_information(dataset, scenario, amount, random_state=rng, oracle=oracle)
    estimator = algorithm_factory(algorithm, config, random_state=rng, metric=dataset.metric)
    values = parameter_values_for(algorithm, dataset, config)

    # Internal scores through CVCP (no refit: the refits per parameter value
    # below double as the final models).
    search = CVCP(
        estimator,
        values,
        n_folds=config.n_folds,
        refit=False,
        random_state=rng,
        execution=config.execution_spec(),
        artifact_store=cell_store,
        artifact_scope=key,
    )
    if scenario == "labels":
        search.fit(dataset.X, labeled_objects=side.labeled_objects)
    else:
        search.fit(dataset.X, constraints=side.constraints)
    internal_scores = [evaluation.mean_score for evaluation in search.cv_results_.evaluations]

    # External quality of every parameter value with all side information.
    # The seed draw happens for every value regardless of cache hits, so the
    # generator stream (and with it later values' models) stays identical.
    training = side.training_constraints()
    exclude = side.involved_objects
    external_scores: list[float] = []
    silhouettes: list[float] = []
    for value_index, value in enumerate(values):
        model = estimator.clone(**{estimator.tuned_parameter: value})
        if "random_state" in model.get_params():
            model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
        cell_key = None
        if cell_store is not None:
            cell_key = dict(key, phase="external", value_index=value_index)
            cached_cell = cell_store.get("cell", cell_key)
            if cached_cell is not None:
                external_scores.append(float(cached_cell["external"]))
                silhouettes.append(float(cached_cell["silhouette"]))
                continue
        if cell_store is not None and getattr(model, "structure_caching", False):
            # The external fit reuses the same constraint-independent
            # structure artifacts the CVCP grid warmed (or persists them
            # for the next run if the grid was fully cache-served).
            model.warm_structure(dataset.X, cell_store)
        model.fit(dataset.X, constraints=training)
        external_scores.append(
            overall_f_measure(dataset.y, model.labels_, exclude=exclude)
        )
        # The Silhouette baseline needs the full matrix; under the sparse
        # neighbors tier it falls back to the blockwise exact tier (same
        # values bit-for-bit, streamed row blocks).
        silhouette_backend = config.distance_backend
        if resolve_distance_backend(silhouette_backend) == "neighbors":
            silhouette_backend = "blockwise"
        silhouettes.append(
            silhouette_score(
                dataset.X, model.labels_, metric=dataset.metric,
                distance_backend=silhouette_backend,
            )
        )
        if cell_store is not None:
            payload = {"external": external_scores[-1], "silhouette": silhouettes[-1]}
            cell_store.put("cell", cell_key, payload)

    cvcp_index = int(np.argmax(internal_scores))
    silhouette_index = int(np.argmax(silhouettes))

    result = TrialResult(
        algorithm=algorithm,
        scenario=scenario,
        amount=amount,
        parameter_values=list(values),
        internal_scores=internal_scores,
        external_scores=external_scores,
        cvcp_value=int(values[cvcp_index]),
        cvcp_quality=float(external_scores[cvcp_index]),
        expected_quality=expected_quality(external_scores),
        silhouette_value=int(values[silhouette_index]),
        silhouette_quality=float(external_scores[silhouette_index]),
        correlation=_pearson(internal_scores, external_scores),
    )
    if store is not None and key is not None:
        _store_trial(store, key, result, len(values), config.n_folds)
    return result


def _compact_trial_cells(store: ArtifactStore, key: dict, n_values: int, n_folds: int) -> None:
    """Drop the interim per-cell artifacts of a completed trial.

    The trial artifact now carries everything; keeping 10s of cell files
    per trial around would bloat paper-scale stores (50 trials × 6 data
    sets × 3 amounts × ~80 grid cells) for no resume benefit.

    Deletion runs from the highest coordinates down to ``external(0)`` so
    that cell — which every completed trial wrote — survives any partial
    sweep, making it the sentinel :func:`_load_cached_trial` probes.
    """
    for value_index in reversed(range(n_values)):
        for fold_index in reversed(range(n_folds)):
            store.delete("cell", dict(key, phase="grid", value_index=value_index, fold=fold_index))
        store.delete("cell", dict(key, phase="external", value_index=value_index))


@dataclass
class _TrialTask:
    """Payload of one trial submitted through the execution engine.

    Must stay picklable for the process backend; the child seed is derived
    up-front, so trials are order-independent.  The artifact store is *not*
    shipped with the task — cache lookups and writes happen in the
    submitting process, so worker processes never contend for the store.
    """

    dataset: Dataset
    algorithm: AlgorithmName
    scenario: ScenarioName
    amount: float
    config: ExperimentConfig
    random_state: int
    oracle: ConstraintOracle | None = None


def _run_trial_task(task: _TrialTask) -> TrialResult:
    return run_trial(
        task.dataset, task.algorithm, task.scenario, task.amount,
        config=task.config, random_state=task.random_state, oracle=task.oracle,
    )


def run_trials(
    dataset: Dataset,
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    n_trials: int,
    *,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    parallelize: Literal["grid", "trials"] = "grid",
    store: ArtifactStore | None = None,
    oracle: ConstraintOracle | None = None,
) -> list[TrialResult]:
    """Run ``n_trials`` independent trials, each with its own side information.

    ``parallelize`` chooses where the execution engine is applied:

    * ``"grid"`` (default) — every trial runs in submission order and the
      engine parallelises the (parameter × fold) grid inside its CVCP;
    * ``"trials"`` — whole trials are submitted through the engine (each
      with a serial inner grid to avoid nested pools), which amortises the
      per-task overhead better when trials are plentiful.

    Both placements return bit-identical results for a fixed seed: every
    trial's seed is derived up-front and results keep trial order.  With a
    ``store``, trials whose artifact already exists are loaded instead of
    recomputed (and freshly computed trials are written through), so an
    interrupted or re-run grid resumes where it left off.  ``oracle``
    selects the supervision source for every trial (see
    :mod:`repro.constraints.oracles`); oracles are plain picklable values,
    so they travel through the trial-level process pool unchanged.
    """
    if parallelize not in ("grid", "trials"):
        raise ValueError(
            f"parallelize must be 'grid' or 'trials', got {parallelize!r}"
        )
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    if config.metric is not None:
        # Applied here as well as in run_trial so the artifact keys computed
        # for the trial-level pool match the keys run_trial itself derives.
        dataset = dataset.with_metric(config.metric)
    rng = check_random_state(random_state)
    seeds = spawn_seeds(rng, n_trials)

    if parallelize == "trials" and config.backend != "serial":
        # Whole trials travel through the pool, so artifact handling stays
        # in the submitting process: completed trials are looked up here,
        # missing ones computed by workers (without per-cell persistence,
        # which would contend across processes) and written back here.
        results: list[TrialResult | None] = [None] * n_trials
        pending: list[tuple[int, dict | None]] = []
        for index, seed in enumerate(seeds):
            cached = None
            key = None
            if store is not None:
                key = trial_artifact_key(config, dataset, algorithm, scenario, amount, seed, oracle)
                cached = _load_cached_trial(store, key, dataset, algorithm, config)
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, key))
        inner = config.with_overrides(backend="serial")
        tasks = [
            _TrialTask(dataset, algorithm, scenario, amount, inner, seeds[index], oracle)
            for index, _ in pending
        ]
        persist_trial = None
        if store is not None:
            n_values = len(parameter_values_for(algorithm, dataset, config))

            def persist_trial(position: int, result: TrialResult) -> None:
                # Runs in the submitting process as each trial completes, so
                # an interrupted batch keeps its finished trials on disk.
                key = pending[position][1]
                if key is not None:
                    _store_trial(store, key, result, n_values, config.n_folds)

        computed = get_executor(config.backend, config.n_jobs).run(
            _run_trial_task, tasks, on_result=persist_trial
        )
        for (index, _), result in zip(pending, computed):
            results[index] = result
        return [result for result in results if result is not None]

    # Grid-level placement: ``run_trial`` owns the store interaction, which
    # also persists in-flight (value_index, fold) cells for mid-trial resume.
    return [
        run_trial(
            dataset, algorithm, scenario, amount,
            config=config, random_state=seed, store=store, oracle=oracle,
        )
        for seed in seeds
    ]


def _pearson(first: Sequence[float], second: Sequence[float]) -> float:
    """Pearson correlation, 0 when either side has no variance."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.size < 2 or first.std() == 0.0 or second.std() == 0.0:
        return 0.0
    return float(np.corrcoef(first, second)[0, 1])
