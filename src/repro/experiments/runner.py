"""Single-trial experiment drivers.

One *trial* fixes a data set, an algorithm, a scenario (labels or
constraints) and an amount of side information, then

1. samples a fresh set of labelled objects (label scenario) or a fresh
   constraint pool and subset (constraint scenario);
2. runs CVCP over the algorithm's parameter range, recording the internal
   (cross-validated constraint-classification) score of every value;
3. runs the algorithm once per parameter value with *all* the side
   information and records the external Overall F-Measure of each partition
   (evaluated only on objects not involved in the side information);
4. derives the quantities the paper reports: the quality of the
   CVCP-selected parameter, the expected quality over the range, the
   Silhouette-selected quality (MPCKMeans), and the internal/external
   correlation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.fosc import FOSCOpticsDend
from repro.clustering.mpckmeans import MPCKMeans
from repro.constraints.constraint import ConstraintSet
from repro.constraints.generation import (
    build_constraint_pool,
    constraints_from_labels,
    sample_constraint_subset,
    sample_labeled_objects,
)
from repro.core.cvcp import CVCP
from repro.core.executor import get_executor
from repro.core.model_selection import expected_quality
from repro.datasets.base import Dataset
from repro.evaluation.external import overall_f_measure
from repro.evaluation.internal import silhouette_score
from repro.experiments.config import ExperimentConfig, default_config, k_range_for_dataset
from repro.utils.rng import RandomStateLike, check_random_state, spawn_rng

AlgorithmName = Literal["fosc", "mpck"]
ScenarioName = Literal["labels", "constraints"]


@dataclass
class SideInformation:
    """The side information sampled for one trial."""

    scenario: ScenarioName
    labeled_objects: dict[int, int] = field(default_factory=dict)
    constraints: ConstraintSet = field(default_factory=ConstraintSet)

    @property
    def involved_objects(self) -> list[int]:
        """Objects that must be excluded from the external evaluation."""
        if self.scenario == "labels":
            return sorted(self.labeled_objects)
        return self.constraints.involved_objects()

    def training_constraints(self) -> ConstraintSet:
        """Constraints to feed to the clustering algorithm."""
        if self.scenario == "labels":
            return constraints_from_labels(self.labeled_objects)
        return self.constraints


@dataclass
class TrialResult:
    """Everything measured in one trial.

    Attributes
    ----------
    parameter_values:
        The swept values (MinPts or k).
    internal_scores:
        CVCP cross-validated internal score per parameter value.
    external_scores:
        Overall F-Measure per parameter value when clustering with all side
        information (evaluated on non-side-information objects only).
    cvcp_value / cvcp_quality:
        Parameter selected by CVCP and its external quality.
    expected_quality:
        Mean external quality over the range (random-guess reference).
    silhouette_value / silhouette_quality:
        Parameter selected by the Silhouette baseline and its external
        quality (populated for MPCKMeans; also computed for FOSC for the
        extension experiments, even though the paper does not report it).
    correlation:
        Pearson correlation between internal and external scores across the
        parameter range (the quantity of Tables 1–4).
    """

    algorithm: AlgorithmName
    scenario: ScenarioName
    amount: float
    parameter_values: list[int]
    internal_scores: list[float]
    external_scores: list[float]
    cvcp_value: int
    cvcp_quality: float
    expected_quality: float
    silhouette_value: int
    silhouette_quality: float
    correlation: float


def make_side_information(
    dataset: Dataset,
    scenario: ScenarioName,
    amount: float,
    *,
    random_state: RandomStateLike = None,
) -> SideInformation:
    """Sample the side information for one trial.

    * ``scenario="labels"``: reveal ``amount`` (e.g. 0.10) of all objects.
    * ``scenario="constraints"``: build a pool from 10% of each class and
      give ``amount`` of the pool to the algorithm.
    """
    rng = check_random_state(random_state)
    if scenario == "labels":
        labeled = sample_labeled_objects(dataset.y, amount, random_state=rng)
        return SideInformation(scenario="labels", labeled_objects=labeled)
    if scenario == "constraints":
        pool = build_constraint_pool(dataset.y, fraction_per_class=0.10, random_state=rng)
        subset = sample_constraint_subset(pool, amount, random_state=rng)
        return SideInformation(scenario="constraints", constraints=subset)
    raise ValueError(f"unknown scenario {scenario!r}")


def algorithm_factory(
    algorithm: AlgorithmName,
    config: ExperimentConfig,
    *,
    random_state: RandomStateLike = None,
) -> BaseClusterer:
    """Instantiate the template estimator for an algorithm name."""
    seed = int(check_random_state(random_state).integers(0, 2**31 - 1))
    if algorithm == "fosc":
        return FOSCOpticsDend(min_pts=5, random_state=seed)
    if algorithm == "mpck":
        return MPCKMeans(
            n_clusters=3,
            n_init=config.mpck_n_init,
            max_iter=config.mpck_max_iter,
            random_state=seed,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}; expected 'fosc' or 'mpck'")


def parameter_values_for(
    algorithm: AlgorithmName, dataset: Dataset, config: ExperimentConfig
) -> list[int]:
    """The swept parameter range for an algorithm/data-set pair."""
    if algorithm == "fosc":
        return [value for value in config.minpts_range if value < dataset.n_samples]
    return k_range_for_dataset(dataset, max_k=config.max_k)


def run_trial(
    dataset: Dataset,
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    *,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
) -> TrialResult:
    """Run one full trial (see the module docstring).

    ``n_jobs``/``backend`` override the execution engine of
    ``config`` for the CVCP grid inside this trial.
    """
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    rng = check_random_state(random_state)

    side = make_side_information(dataset, scenario, amount, random_state=rng)
    estimator = algorithm_factory(algorithm, config, random_state=rng)
    values = parameter_values_for(algorithm, dataset, config)

    # Internal scores through CVCP (no refit: the refits per parameter value
    # below double as the final models).
    search = CVCP(
        estimator,
        values,
        n_folds=config.n_folds,
        refit=False,
        random_state=rng,
        n_jobs=config.n_jobs,
        backend=config.backend,
    )
    if scenario == "labels":
        search.fit(dataset.X, labeled_objects=side.labeled_objects)
    else:
        search.fit(dataset.X, constraints=side.constraints)
    internal_scores = [evaluation.mean_score for evaluation in search.cv_results_.evaluations]

    # External quality of every parameter value with all side information.
    training = side.training_constraints()
    exclude = side.involved_objects
    external_scores: list[float] = []
    silhouettes: list[float] = []
    for value in values:
        model = estimator.clone(**{estimator.tuned_parameter: value})
        if "random_state" in model.get_params():
            model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
        model.fit(dataset.X, constraints=training)
        external_scores.append(
            overall_f_measure(dataset.y, model.labels_, exclude=exclude)
        )
        silhouettes.append(silhouette_score(dataset.X, model.labels_))

    cvcp_index = int(np.argmax(internal_scores))
    silhouette_index = int(np.argmax(silhouettes))

    return TrialResult(
        algorithm=algorithm,
        scenario=scenario,
        amount=amount,
        parameter_values=list(values),
        internal_scores=internal_scores,
        external_scores=external_scores,
        cvcp_value=int(values[cvcp_index]),
        cvcp_quality=float(external_scores[cvcp_index]),
        expected_quality=expected_quality(external_scores),
        silhouette_value=int(values[silhouette_index]),
        silhouette_quality=float(external_scores[silhouette_index]),
        correlation=_pearson(internal_scores, external_scores),
    )


@dataclass
class _TrialTask:
    """Payload of one trial submitted through the execution engine.

    Must stay picklable for the process backend; the child generator is
    derived up-front, so trials are order-independent.
    """

    dataset: Dataset
    algorithm: AlgorithmName
    scenario: ScenarioName
    amount: float
    config: ExperimentConfig
    random_state: np.random.Generator


def _run_trial_task(task: _TrialTask) -> TrialResult:
    return run_trial(
        task.dataset, task.algorithm, task.scenario, task.amount,
        config=task.config, random_state=task.random_state,
    )


def run_trials(
    dataset: Dataset,
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    n_trials: int,
    *,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    parallelize: Literal["grid", "trials"] = "grid",
) -> list[TrialResult]:
    """Run ``n_trials`` independent trials, each with its own side information.

    ``parallelize`` chooses where the execution engine is applied:

    * ``"grid"`` (default) — every trial runs in submission order and the
      engine parallelises the (parameter × fold) grid inside its CVCP;
    * ``"trials"`` — whole trials are submitted through the engine (each
      with a serial inner grid to avoid nested pools), which amortises the
      per-task overhead better when trials are plentiful.

    Both placements return bit-identical results for a fixed seed: every
    trial's generator is derived up-front and results keep trial order.
    """
    if parallelize not in ("grid", "trials"):
        raise ValueError(
            f"parallelize must be 'grid' or 'trials', got {parallelize!r}"
        )
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    rng = check_random_state(random_state)
    children = spawn_rng(rng, n_trials)
    if parallelize == "trials" and config.backend != "serial":
        inner = config.with_overrides(backend="serial")
        tasks = [
            _TrialTask(dataset, algorithm, scenario, amount, inner, child)
            for child in children
        ]
        return get_executor(config.backend, config.n_jobs).run(_run_trial_task, tasks)
    return [
        run_trial(dataset, algorithm, scenario, amount, config=config, random_state=child)
        for child in children
    ]


def _pearson(first: Sequence[float], second: Sequence[float]) -> float:
    """Pearson correlation, 0 when either side has no variance."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.size < 2 or first.std() == 0.0 or second.std() == 0.0:
        return 0.0
    return float(np.corrcoef(first, second)[0, 1])
