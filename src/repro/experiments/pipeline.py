"""Declarative experiment pipelines: TOML/JSON specs driving the full stack.

A *pipeline spec* is a small declarative config file (TOML or JSON) that
names everything one batch experiment needs — the data sets, the algorithm
and scenario, the amounts of side information, the CVCP/trial parameters,
the execution engine and the artifact-store location:

.. code-block:: toml

    [experiment]
    name = "quickstart-iris"
    kind = "comparison"          # comparison|correlation|curves|trials|ablation|robustness|online
    algorithm = "fosc"           # fosc|mpck
    scenario = "labels"          # labels|constraints
    amounts = [0.10]
    datasets = ["Iris"]
    seed = 20140324

    [parameters]
    n_trials = 2
    n_folds = 3
    minpts_range = [3, 6, 9]

    [oracle]
    name = "noisy"               # perfect|noisy|budgeted|active
    flip_probability = 0.1

    [execution]
    backend = "serial"           # serial|thread|process
    distance_backend = "dense"   # dense|blockwise|memmap

    [artifacts]
    root = ".repro-artifacts"

The optional ``[dataset]`` table selects the distance metric every resolved
data set is evaluated under (``metric = "euclidean"|"cosine"|"precomputed"``)
and — for ``"precomputed"`` — the ``path`` of an ``.npz`` archive carrying
the user-supplied distance/similarity ``matrix`` and its ``labels``
(``form = "distance"|"similarity"`` selects the orientation; relative paths
resolve against the config file's directory).  The matrix is loaded and
validated at config-validation time, so a malformed file is a listed
problem — not a traceback deep inside the trial loop.

The ``[oracle]`` table selects the supervision source for every trial (see
:mod:`repro.constraints.oracles`); the ``robustness`` kind instead sweeps
the noisy oracle's flip rate and accepts ``flip_rates``/``repair`` keys.

:func:`load_pipeline_spec` parses and validates a file (collecting *all*
problems, not just the first), and :func:`run_pipeline` executes it through
the artifact store: constraint generation, CVCP parameter selection, trials,
significance testing and report emission.  Results are persisted per trial,
so interrupting and re-invoking a pipeline resumes from the completed cells
and a second identical invocation is served entirely from cache — with a
byte-identical ``summary.json``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

try:
    import tomllib
except ModuleNotFoundError:  # Python 3.10: stdlib tomllib arrived in 3.11
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

from repro.constraints.oracles import ConstraintOracle, PerfectOracle, make_oracle, oracle_names
from repro.core.executor import ExecutionSpec
from repro.datasets.base import DATASET_METRICS, Dataset
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.datasets.text import PRECOMPUTED_FORMS, load_precomputed_dataset
from repro.experiments.ablation import (
    closure_leakage_ablation,
    fold_count_ablation,
    scorer_ablation,
)
from repro.experiments.artifacts import ArtifactStore, trial_config_fingerprint
from repro.experiments.comparison import comparison_table
from repro.experiments.config import (
    CONSTRAINT_FRACTIONS,
    LABEL_FRACTIONS,
    QUICK_CONFIG,
    ExperimentConfig,
)
from repro.experiments.correlation import correlation_table
from repro.experiments.figures import parameter_curves
from repro.experiments.fleet import FleetSettings
from repro.experiments.reporting import (
    format_comparison_table,
    format_correlation_table,
    format_curves,
    format_robustness_table,
    format_table,
    render_report,
    write_report,
)
from repro.experiments.online import StreamSpec, replay_constraint_stream
from repro.experiments.robustness import DEFAULT_FLIP_RATES, noise_robustness_table
from repro.experiments.runner import run_trials
from repro.serve.schemas import ServeSettings
from repro.utils.specs import SpecError, unknown_key_problems

#: Experiment kinds a pipeline can run, mapped to the paper's artefacts.
PIPELINE_KINDS: tuple[str, ...] = (
    "comparison",
    "correlation",
    "curves",
    "trials",
    "ablation",
    "robustness",
    "online",
)

ALGORITHMS: tuple[str, ...] = ("fosc", "mpck")
SCENARIOS: tuple[str, ...] = ("labels", "constraints")
REPORT_FORMATS: tuple[str, ...] = ("txt", "json")

#: Exception class for TOML syntax errors (an empty tuple when TOML
#: support is unavailable, keeping ``except`` clauses valid).
_TOML_DECODE_ERROR = tomllib.TOMLDecodeError if tomllib is not None else ()

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_PARAMETER_KEYS: tuple[str, ...] = (
    "n_trials",
    "n_folds",
    "n_aloi_datasets",
    "max_k",
    "mpck_n_init",
    "mpck_max_iter",
    "minpts_range",
)


class ConfigError(SpecError):
    """A pipeline spec failed validation; ``problems`` lists every issue.

    Subclasses :class:`repro.utils.specs.SpecError` (and therefore
    ``ValueError``): pipeline configs are one more ``from_spec`` surface,
    and callers that catch ``SpecError`` handle them uniformly.
    """

    def __init__(self, source: str, problems: list[str]) -> None:
        super().__init__(source, problems, label="pipeline config")


@dataclass
class PipelineSpec:
    """A validated pipeline description, ready for :func:`run_pipeline`."""

    name: str
    kind: str
    algorithm: str
    scenario: str
    amounts: tuple[float, ...]
    datasets: tuple[str, ...]
    config: ExperimentConfig
    artifacts_root: Path
    report_formats: tuple[str, ...] = ("txt", "json")
    parallelize: str = "grid"
    #: Supervision source driving every trial (``[oracle]`` config table).
    oracle: ConstraintOracle = PerfectOracle()
    #: Flip rates swept by the ``robustness`` kind (ignored elsewhere).
    flip_rates: tuple[float, ...] = DEFAULT_FLIP_RATES
    #: Closure-consistency repair for the ``robustness`` sweep's oracle.
    oracle_repair: bool = False
    #: Constraint-stream replay knobs for ``kind = "online"`` (``[stream]``).
    stream: StreamSpec = StreamSpec()
    #: Work-stealing knobs for ``repro run --worker`` (``[fleet]`` table).
    fleet: FleetSettings = FleetSettings()
    #: HTTP-layer knobs for ``repro serve`` (``[serve]`` table).
    serve: ServeSettings = ServeSettings()
    #: Source file of a user-supplied distance/similarity matrix
    #: (``[dataset] path``, resolved against the config directory).
    dataset_path: Path | None = None
    #: Orientation of ``dataset_path`` (``"distance"`` or ``"similarity"``).
    dataset_form: str = "distance"
    #: The loaded, validated precomputed data set — carried on the spec so
    #: concurrent pipelines (the serve layer) never mutate a shared
    #: registry.  Excluded from ``==`` (holds arrays).
    precomputed: Dataset | None = field(default=None, compare=False, repr=False)
    source: Path | None = None

    def with_overrides(self, **overrides) -> "PipelineSpec":
        """Return a copy with the given fields replaced (CLI flag overrides)."""
        return replace(self, **overrides)

    def to_spec(self) -> dict:
        """The spec as a JSON/TOML-ready config mapping.

        The inverse of :func:`pipeline_spec_from_mapping`: for every
        validated spec, ``pipeline_spec_from_mapping(spec.to_spec())``
        rebuilds an equal spec (modulo ``source``, which names where a
        spec was *loaded from* and has no place in the mapping).  Tables
        a kind forbids (``[oracle]`` for ablations, ``experiment.scenario``
        for ablations and online replays, ``experiment.algorithm`` for
        robustness sweeps, ``[stream]`` for everything but online replays)
        are omitted rather than emitted-and-rejected.
        """
        experiment: dict = {"name": self.name, "kind": self.kind}
        if self.kind != "robustness":
            experiment["algorithm"] = self.algorithm
        if self.kind not in ("ablation", "online"):
            experiment["scenario"] = self.scenario
        experiment["amounts"] = [float(amount) for amount in self.amounts]
        if self.dataset_path is None:
            # A [dataset] path supplies the data itself; emitting the
            # derived name would be rejected on the way back in.
            experiment["datasets"] = list(self.datasets)
        experiment["seed"] = self.config.seed
        parameters: dict = {key: getattr(self.config, key) for key in _PARAMETER_KEYS}
        parameters["minpts_range"] = list(self.config.minpts_range)
        spec: dict = {"experiment": experiment, "parameters": parameters}
        if self.kind == "robustness":
            spec["oracle"] = {
                "flip_rates": [float(rate) for rate in self.flip_rates],
                "repair": self.oracle_repair,
            }
        elif self.kind != "ablation":
            spec["oracle"] = self.oracle.to_spec()
        dataset_table: dict = {}
        if self.config.metric is not None:
            dataset_table["metric"] = self.config.metric
        if self.dataset_path is not None:
            dataset_table["path"] = str(self.dataset_path)
            if self.dataset_form != "distance":
                dataset_table["form"] = self.dataset_form
            if self.precomputed is not None and self.precomputed.name != self.dataset_path.stem:
                dataset_table["name"] = self.precomputed.name
        if dataset_table:
            spec["dataset"] = dataset_table
        execution = self.config.execution_spec().to_spec()
        # The metric travels in [dataset], not [execution].
        execution.pop("metric", None)
        if self.parallelize != "grid":
            execution["parallelize"] = self.parallelize
        if execution:
            spec["execution"] = execution
        spec["artifacts"] = {"root": str(self.artifacts_root)}
        if self.kind == "online":
            spec["stream"] = self.stream.to_spec()
        spec["report"] = {"formats": list(self.report_formats)}
        spec["fleet"] = self.fleet.to_spec()
        spec["serve"] = self.serve.to_spec()
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping) -> "PipelineSpec":
        """Validate a config mapping into a spec; raises :class:`ConfigError`."""
        return pipeline_spec_from_mapping(spec)


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    spec: PipelineSpec
    sections: list[tuple[str, str]]
    summary: dict
    report_text: str
    report_paths: list[Path] = field(default_factory=list)
    stats: dict = field(default_factory=dict)


def _parse_file(path: Path) -> dict:
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise ConfigError(
                str(path),
                ["TOML configs need Python >= 3.11 or the 'tomli' package; use a .json config instead"],
            )
        with path.open("rb") as handle:
            return tomllib.load(handle)
    if path.suffix.lower() == ".json":
        with path.open("r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if not isinstance(loaded, dict):
            raise ConfigError(str(path), ["top level must be a JSON object"])
        return loaded
    raise ConfigError(str(path), [f"unsupported config extension {path.suffix!r} (use .toml or .json)"])


def _check_enum(problems: list[str], table: str, key: str, value: object, allowed: tuple[str, ...]):
    if not isinstance(value, str) or value not in allowed:
        problems.append(f"{table}.{key}: must be one of {', '.join(allowed)}; got {value!r}")
        return None
    return value


def _check_positive_int(problems: list[str], table: str, key: str, value: object) -> int | None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        problems.append(f"{table}.{key}: must be a positive integer, got {value!r}")
        return None
    return value


def validate_pipeline_mapping(
    raw: dict, source: str, *, base_dir: Path | None = None
) -> tuple[PipelineSpec | None, list[str]]:
    """Validate a parsed config mapping; returns ``(spec, problems)``.

    On any problem the spec is ``None`` and ``problems`` holds one message
    per issue found (unknown tables/keys, wrong types, out-of-range values,
    unknown data sets, ...).  ``base_dir`` anchors relative ``dataset.path``
    values (the config file's directory for file-loaded specs).
    """
    problems: list[str] = []

    known_tables = (
        "experiment", "parameters", "dataset", "oracle", "execution", "artifacts",
        "report", "stream", "fleet", "serve",
    )
    for table in raw:
        if table not in known_tables:
            problems.append(f"unknown table [{table}] (expected one of {', '.join(known_tables)})")
    for table in known_tables:
        if table in raw and not isinstance(raw[table], dict):
            problems.append(f"[{table}] must be a table/object, got {type(raw[table]).__name__}")

    experiment = raw.get("experiment")
    if not isinstance(experiment, dict):
        problems.append("missing required [experiment] table")
        experiment = {}

    known_experiment_keys = ("name", "kind", "algorithm", "scenario", "amounts", "datasets", "seed")
    for key in experiment:
        if key not in known_experiment_keys:
            problems.append(f"experiment.{key}: unknown key")

    name = experiment.get("name")
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        problems.append(
            "experiment.name: required; must be letters/digits/._- "
            f"(used as the report directory name), got {name!r}"
        )
        name = None

    kind = _check_enum(problems, "experiment", "kind", experiment.get("kind", None), PIPELINE_KINDS)
    algorithm = _check_enum(
        problems, "experiment", "algorithm", experiment.get("algorithm", "fosc"), ALGORITHMS
    )
    if kind == "robustness" and "algorithm" in experiment:
        # The robustness sweep always reports every algorithm so the
        # acceptance comparison is side by side; a single-algorithm setting
        # would silently drop half the table.
        problems.append(
            'experiment.algorithm: not configurable for kind="robustness" — the sweep'
            " runs every algorithm; remove the key"
        )
    if kind == "online" and algorithm == "mpck":
        # The online kind replays constraint deltas through the cached,
        # constraint-independent FOSC tree structures; MPCKMeans refits its
        # metric on every constraint set and has no structure phase to reuse.
        problems.append(
            'experiment.algorithm: kind="online" replays constraint streams through'
            ' the cached FOSC tree structures; MPCKMeans has no'
            ' constraint-independent structure phase — use algorithm = "fosc"'
        )
    scenario = _check_enum(
        problems, "experiment", "scenario", experiment.get("scenario", "labels"), SCENARIOS
    )
    if kind == "ablation" and "scenario" in experiment:
        # Each ablation fixes its own scenario (closure-leakage is inherently
        # constraint-based; fold-count and scorer are label-based), so an
        # explicit setting would be silently misleading.
        problems.append(
            'experiment.scenario: not configurable for kind="ablation" — each ablation'
            " fixes its own scenario; remove the key"
        )
    if kind == "online":
        if "scenario" in experiment:
            problems.append(
                'experiment.scenario: not configurable for kind="online" — a stream'
                " is inherently pairwise constraints; remove the key"
            )
        scenario = "constraints"

    seed = experiment.get("seed", 20140324)
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        problems.append(f"experiment.seed: must be a non-negative integer, got {seed!r}")
        seed = 0

    default_amounts = LABEL_FRACTIONS if scenario == "labels" else CONSTRAINT_FRACTIONS
    amounts_raw = experiment.get("amounts", list(default_amounts))
    amounts: list[float] = []
    if not isinstance(amounts_raw, list) or not amounts_raw:
        problems.append(f"experiment.amounts: must be a non-empty list of fractions, got {amounts_raw!r}")
    else:
        for value in amounts_raw:
            if isinstance(value, bool) or not isinstance(value, (int, float)) or not 0 < value <= 1:
                problems.append(f"experiment.amounts: each amount must be in (0, 1], got {value!r}")
            else:
                amounts.append(float(value))

    canonical_by_lower = {known.lower(): known for known in DATASET_NAMES}
    datasets_raw = experiment.get("datasets", ["Iris"])
    datasets: list[str] = []
    if not isinstance(datasets_raw, list) or not datasets_raw:
        problems.append(f"experiment.datasets: must be a non-empty list of names, got {datasets_raw!r}")
    else:
        for value in datasets_raw:
            if not isinstance(value, str) or value.lower() not in canonical_by_lower:
                problems.append(
                    f"experiment.datasets: unknown data set {value!r} "
                    f"(available: {', '.join(DATASET_NAMES)})"
                )
            elif canonical_by_lower[value.lower()] in datasets:
                problems.append(f"experiment.datasets: duplicate data set {value!r}")
            else:
                datasets.append(canonical_by_lower[value.lower()])

    dataset_table = raw.get("dataset", {})
    metric: str | None = None
    dataset_path: Path | None = None
    dataset_form = "distance"
    precomputed_dataset: Dataset | None = None
    if isinstance(dataset_table, dict) and dataset_table:
        known_dataset_keys = ("metric", "path", "form", "name")
        for key in dataset_table:
            if key not in known_dataset_keys:
                problems.append(
                    f"dataset.{key}: unknown key (expected {', '.join(known_dataset_keys)})"
                )
        if "metric" in dataset_table:
            metric = _check_enum(
                problems, "dataset", "metric", dataset_table["metric"], DATASET_METRICS
            )
        if "form" in dataset_table:
            dataset_form = (
                _check_enum(problems, "dataset", "form", dataset_table["form"], PRECOMPUTED_FORMS)
                or "distance"
            )
        raw_path = dataset_table.get("path")
        if raw_path is not None and (not isinstance(raw_path, str) or not raw_path):
            problems.append(f"dataset.path: must be a non-empty path string, got {raw_path!r}")
            raw_path = None
        dataset_name = dataset_table.get("name")
        if dataset_name is not None and (
            not isinstance(dataset_name, str) or not _NAME_PATTERN.match(dataset_name)
        ):
            problems.append(f"dataset.name: must be letters/digits/._-, got {dataset_name!r}")
            dataset_name = None
        if metric == "precomputed" and "path" not in dataset_table:
            problems.append(
                'dataset.path: required when dataset.metric = "precomputed"'
                " (the .npz archive supplying the matrix and labels)"
            )
        if "path" in dataset_table and metric != "precomputed":
            problems.append(
                'dataset.path: only meaningful with dataset.metric = "precomputed";'
                " remove the key or set the metric"
            )
            raw_path = None
        for key in ("form", "name"):
            if key in dataset_table and "path" not in dataset_table:
                problems.append(
                    f"dataset.{key}: only meaningful together with dataset.path; remove the key"
                )
        if "path" in dataset_table and "datasets" in experiment:
            problems.append(
                "experiment.datasets: not configurable when dataset.path supplies"
                " the data; remove the key"
            )
        if raw_path is not None and metric == "precomputed":
            dataset_path = Path(raw_path)
            if not dataset_path.is_absolute() and base_dir is not None:
                dataset_path = base_dir / dataset_path
            try:
                precomputed_dataset = load_precomputed_dataset(
                    dataset_path, form=dataset_form, name=dataset_name
                )
            except (OSError, ValueError, KeyError) as exc:
                problems.append(f"dataset.path: {exc}")

    parameters = raw.get("parameters", {})
    overrides: dict[str, object] = {}
    if isinstance(parameters, dict):
        for key in parameters:
            if key not in _PARAMETER_KEYS:
                problems.append(f"parameters.{key}: unknown key (expected {', '.join(_PARAMETER_KEYS)})")
        for key in _PARAMETER_KEYS:
            if key not in parameters:
                continue
            value = parameters[key]
            if key == "minpts_range":
                ok = (
                    isinstance(value, list)
                    and value != []
                    and all(isinstance(v, int) and not isinstance(v, bool) and v > 0 for v in value)
                )
                if not ok:
                    problems.append(
                        f"parameters.minpts_range: must be a non-empty list of positive"
                        f" integers, got {value!r}"
                    )
                else:
                    overrides["minpts_range"] = tuple(value)
            else:
                checked = _check_positive_int(problems, "parameters", key, value)
                if checked is not None:
                    overrides[key] = checked

    oracle_table = raw.get("oracle", {})
    oracle: ConstraintOracle = PerfectOracle()
    flip_rates: tuple[float, ...] = DEFAULT_FLIP_RATES
    oracle_repair = False
    if isinstance(oracle_table, dict) and oracle_table:
        if kind == "ablation":
            # Each ablation fixes its own side-information setup, so an
            # oracle setting would be silently ignored.
            problems.append(
                'oracle: not configurable for kind="ablation"; remove the table'
            )
        elif kind == "robustness":
            # The robustness kind sweeps the noisy oracle itself; it is
            # configured by the sweep parameters, not an oracle name.
            allowed = ("flip_rates", "repair")
            for key in oracle_table:
                if key not in allowed:
                    problems.append(
                        f'oracle.{key}: unknown key for kind="robustness" '
                        f"(expected {', '.join(allowed)})"
                    )
            if "flip_rates" in oracle_table:
                value = oracle_table["flip_rates"]
                ok = (
                    isinstance(value, list)
                    and value != []
                    and all(
                        isinstance(v, (int, float)) and not isinstance(v, bool) and 0 <= v <= 1
                        for v in value
                    )
                )
                if not ok:
                    problems.append(
                        f"oracle.flip_rates: must be a non-empty list of rates in [0, 1],"
                        f" got {value!r}"
                    )
                else:
                    flip_rates = tuple(float(v) for v in value)
            if "repair" in oracle_table:
                value = oracle_table["repair"]
                if not isinstance(value, bool):
                    problems.append(f"oracle.repair: must be a boolean, got {value!r}")
                else:
                    oracle_repair = value
        else:
            oracle_name = oracle_table.get("name", "perfect")
            if not isinstance(oracle_name, str) or oracle_name not in oracle_names():
                problems.append(
                    f"oracle.name: must be one of {', '.join(oracle_names())}, got {oracle_name!r}"
                )
            else:
                params = {key: value for key, value in oracle_table.items() if key != "name"}
                try:
                    oracle = make_oracle(oracle_name, **params)
                except (ValueError, TypeError) as exc:
                    # make_oracle lists every unknown parameter in one
                    # message, so nothing is swallowed here.
                    problems.append(f"oracle: {exc}")

    execution = raw.get("execution", {})
    execution_spec = ExecutionSpec()
    parallelize = "grid"
    if isinstance(execution, dict):
        # Unknown keys are checked here (not in ExecutionSpec.from_spec)
        # because the table also carries the pipeline-level parallelize key.
        problems.extend(
            unknown_key_problems(
                execution,
                ("backend", "n_jobs", "parallelize", "distance_backend", "epsilon", "k_neighbors"),
                "execution",
            )
        )
        engine_keys = ("backend", "n_jobs", "distance_backend", "epsilon", "k_neighbors")
        try:
            execution_spec = ExecutionSpec.from_spec(
                {key: execution[key] for key in engine_keys if key in execution}
            )
        except SpecError as exc:
            problems.extend(exc.problems)
        if "parallelize" in execution:
            checked = _check_enum(
                problems, "execution", "parallelize", execution["parallelize"], ("grid", "trials")
            )
            parallelize = checked or parallelize
            if kind in ("curves", "ablation", "online"):
                problems.append(
                    f"execution.parallelize: has no effect for kind={kind!r} "
                    "(single-trial work); remove the key"
                )

    # The sparse neighbors tier cannot materialise the full distance matrix,
    # which MPCKMeans' metric-learning updates require — reject the
    # combination here (a clear problem line) instead of letting the run
    # traceback deep inside the trial loop.
    if execution_spec.distance_backend == "neighbors":
        if algorithm == "mpck":
            problems.append(
                'execution.distance_backend: "neighbors" cannot drive '
                'algorithm = "mpck" (MPCKMeans needs the full distance matrix); '
                "use an exact tier (dense, blockwise, memmap)"
            )
        if kind == "robustness":
            problems.append(
                'execution.distance_backend: "neighbors" cannot drive '
                'kind = "robustness" (the robustness sweep runs every '
                "algorithm, including MPCKMeans, which needs the full "
                "distance matrix); use an exact tier (dense, blockwise, memmap)"
            )

    # Non-Euclidean metrics have the same shape of incompatibilities:
    # MPCKMeans learns per-cluster Euclidean metrics, and the neighbors
    # tier's KD-tree indexes Euclidean space only.  Report them as config
    # problems here, not runtime errors inside the trial loop.
    if metric is not None and metric != "euclidean":
        if algorithm == "mpck" and kind != "robustness":
            problems.append(
                f'dataset.metric: algorithm = "mpck" learns per-cluster Euclidean'
                f" metrics and cannot run under metric = {metric!r};"
                ' use algorithm = "fosc"'
            )
        if kind == "robustness":
            problems.append(
                f'dataset.metric: kind = "robustness" sweeps every algorithm,'
                f" including MPCKMeans, which needs Euclidean geometry;"
                f" metric = {metric!r} is not supported"
            )
        if execution_spec.distance_backend == "neighbors":
            problems.append(
                f'dataset.metric: distance_backend = "neighbors" supports'
                f' metric = "euclidean" only (KD-tree index), got {metric!r};'
                " use an exact tier (dense, blockwise, memmap)"
            )
    if metric == "precomputed" and kind in ("comparison", "correlation"):
        problems.append(
            f"dataset.metric: kind = {kind!r} resolves data sets through the"
            ' registry; a precomputed matrix drives kinds "curves", "trials",'
            ' "ablation" or "online"'
        )

    artifacts = raw.get("artifacts", {})
    artifacts_root = ".repro-artifacts"
    if isinstance(artifacts, dict):
        for key in artifacts:
            if key != "root":
                problems.append(f"artifacts.{key}: unknown key (expected root)")
        if "root" in artifacts:
            value = artifacts["root"]
            if not isinstance(value, str) or not value:
                problems.append(f"artifacts.root: must be a non-empty path string, got {value!r}")
            else:
                artifacts_root = value

    stream_table = raw.get("stream", {})
    stream_spec = StreamSpec()
    if isinstance(stream_table, dict) and stream_table:
        if kind is not None and kind != "online":
            problems.append(
                f'stream: only kind="online" replays a constraint stream; '
                f"remove the table (kind is {kind!r})"
            )
        try:
            stream_spec = StreamSpec.from_spec(stream_table)
        except SpecError as exc:
            problems.extend(exc.problems)

    fleet_table = raw.get("fleet", {})
    fleet_settings = FleetSettings()
    if isinstance(fleet_table, dict) and fleet_table:
        try:
            fleet_settings = FleetSettings.from_spec(fleet_table)
        except SpecError as exc:
            problems.extend(exc.problems)

    serve_table = raw.get("serve", {})
    serve_settings = ServeSettings()
    if isinstance(serve_table, dict) and serve_table:
        try:
            serve_settings = ServeSettings.from_spec(serve_table)
        except SpecError as exc:
            problems.extend(exc.problems)

    report = raw.get("report", {})
    report_formats: tuple[str, ...] = REPORT_FORMATS
    if isinstance(report, dict):
        for key in report:
            if key != "formats":
                problems.append(f"report.{key}: unknown key (expected formats)")
        if "formats" in report:
            value = report["formats"]
            ok = (
                isinstance(value, list)
                and value != []
                and all(isinstance(v, str) and v in REPORT_FORMATS for v in value)
            )
            if not ok:
                problems.append(
                    f"report.formats: must be a non-empty list drawn from"
                    f" {', '.join(REPORT_FORMATS)}, got {value!r}"
                )
            else:
                report_formats = tuple(value)

    if problems:
        return None, problems

    # Unspecified [parameters] fall back to the repo-wide quick profile —
    # a minimal config must cost seconds, not paper-scale hours; paper
    # scale is an explicit opt-in (see examples/paper_comparison_full.toml).
    config = QUICK_CONFIG.with_overrides(seed=seed, datasets=tuple(datasets), **overrides)
    if scenario == "labels":
        config = config.with_overrides(label_fractions=tuple(amounts))
    else:
        config = config.with_overrides(constraint_fractions=tuple(amounts))
    if precomputed_dataset is not None:
        datasets = [precomputed_dataset.name]
        config = config.with_overrides(datasets=tuple(datasets))
    config = config.with_execution(
        backend=execution_spec.backend or "serial",
        n_jobs=execution_spec.n_jobs,
        distance_backend=execution_spec.distance_backend,
        epsilon=execution_spec.epsilon,
        k_neighbors=execution_spec.k_neighbors,
        metric=metric,
    )

    spec = PipelineSpec(
        name=name,
        kind=kind,
        algorithm=algorithm,
        scenario=scenario,
        amounts=tuple(amounts),
        datasets=tuple(datasets),
        config=config,
        artifacts_root=Path(artifacts_root),
        report_formats=report_formats,
        parallelize=parallelize,
        oracle=oracle,
        flip_rates=flip_rates,
        oracle_repair=oracle_repair,
        stream=stream_spec,
        fleet=fleet_settings,
        serve=serve_settings,
        dataset_path=dataset_path,
        dataset_form=dataset_form,
        precomputed=precomputed_dataset,
        source=None,
    )
    return spec, []


def pipeline_spec_from_mapping(
    raw: Mapping, *, source: str = "<mapping>", base_dir: Path | None = None
) -> PipelineSpec:
    """Validate an in-memory config mapping into a :class:`PipelineSpec`.

    The programmatic twin of :func:`load_pipeline_spec` — the serve layer
    and :func:`repro.api.load_spec` feed it mappings that never lived in
    a file.  Raises :class:`ConfigError` listing every problem.
    ``base_dir`` anchors relative ``dataset.path`` values.
    """
    if not isinstance(raw, Mapping):
        raise ConfigError(source, [f"top level must be a mapping/object, got {type(raw).__name__}"])
    spec, problems = validate_pipeline_mapping(dict(raw), source, base_dir=base_dir)
    if spec is None:
        raise ConfigError(source, problems)
    return spec


def load_pipeline_spec(path: str | Path) -> PipelineSpec:
    """Parse and validate a TOML/JSON pipeline config file.

    Raises :class:`ConfigError` (listing every problem) on invalid input,
    ``OSError`` when the file cannot be read.
    """
    path = Path(path)
    try:
        raw = _parse_file(path)
    except _TOML_DECODE_ERROR as exc:
        raise ConfigError(str(path), [f"TOML parse error: {exc}"]) from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(str(path), [f"JSON parse error: {exc}"]) from exc
    except UnicodeDecodeError as exc:
        # Raised by both parsers for bytes that are not valid UTF-8 and is
        # not a JSONDecodeError/TOMLDecodeError subclass.
        raise ConfigError(str(path), [f"config is not valid UTF-8: {exc}"]) from exc
    spec, problems = validate_pipeline_mapping(raw, str(path), base_dir=path.parent)
    if spec is None:
        raise ConfigError(str(path), problems)
    return spec.with_overrides(source=path)


def validate_pipeline_file(path: str | Path) -> list[str]:
    """All validation problems of a config file (empty list = valid)."""
    try:
        load_pipeline_spec(path)
    except ConfigError as exc:
        return exc.problems
    except OSError as exc:
        return [f"cannot read config: {exc}"]
    return []


def _format_amount(amount: float) -> str:
    return f"{amount:g}"


def _resolve_dataset(spec: PipelineSpec, name: str) -> Dataset:
    """One data set for a kind that resolves its inputs locally.

    A spec carrying a precomputed matrix *is* the data set (there is
    exactly one); everything else goes through the registry with the
    spec's metric override.
    """
    if spec.precomputed is not None:
        return spec.precomputed
    return get_dataset(name, random_state=spec.config.seed, metric=spec.config.metric)


def _comparison_summary_row(row) -> dict:
    summary = {
        "cvcp_mean": row.cvcp_mean,
        "cvcp_std": row.cvcp_std,
        "expected_mean": row.expected_mean,
        "expected_std": row.expected_std,
        "winner": row.winner,
        "winner_significant": row.winner_significant,
        "cvcp_values": list(row.cvcp_values),
    }
    if row.silhouette:
        summary["silhouette_mean"] = row.silhouette_mean
        summary["silhouette_std"] = row.silhouette_std
    return summary


def _run_comparison(spec: PipelineSpec, store: ArtifactStore) -> tuple[list[tuple[str, str]], dict]:
    sections: list[tuple[str, str]] = []
    results: dict = {}
    for amount in spec.amounts:
        table = comparison_table(
            spec.algorithm,
            spec.scenario,
            amount,
            config=spec.config,
            store=store,
            parallelize=spec.parallelize,
            oracle=spec.oracle,
        )
        heading = f"Comparison, {int(round(amount * 100))}% side information"
        sections.append((heading, format_comparison_table(table)))
        results[_format_amount(amount)] = {
            row.dataset: _comparison_summary_row(row) for row in table.rows
        }
    return sections, results


def _run_correlation(spec: PipelineSpec, store: ArtifactStore) -> tuple[list[tuple[str, str]], dict]:
    table = correlation_table(
        spec.algorithm,
        spec.scenario,
        config=spec.config,
        store=store,
        parallelize=spec.parallelize,
        oracle=spec.oracle,
    )
    sections = [("Internal/external correlation", format_correlation_table(table))]
    results = {
        _format_amount(amount): {name: table.values[amount][name] for name in table.datasets}
        for amount in table.amounts
    }
    return sections, results


def _run_curves(spec: PipelineSpec, store: ArtifactStore) -> tuple[list[tuple[str, str]], dict]:
    sections: list[tuple[str, str]] = []
    results: dict = {}
    for name in spec.datasets:
        dataset = _resolve_dataset(spec, name)
        per_amount: dict = {}
        for amount in spec.amounts:
            curves = parameter_curves(
                spec.algorithm,
                spec.scenario,
                amount=amount,
                dataset=dataset,
                config=spec.config,
                store=store,
                oracle=spec.oracle,
            )
            heading = f"Curves, {name}, {int(round(amount * 100))}% side information"
            sections.append((heading, format_curves(curves)))
            per_amount[_format_amount(amount)] = {
                "parameter_name": curves.parameter_name,
                "parameter_values": list(curves.parameter_values),
                "internal_scores": list(curves.internal_scores),
                "external_scores": list(curves.external_scores),
                "correlation": curves.correlation,
            }
        results[name] = per_amount
    return sections, results


def _run_trials_kind(spec: PipelineSpec, store: ArtifactStore) -> tuple[list[tuple[str, str]], dict]:
    sections: list[tuple[str, str]] = []
    results: dict = {}
    headers = ["trial", "cvcp_value", "cvcp_quality", "expected_quality", "correlation"]
    for name in spec.datasets:
        dataset = _resolve_dataset(spec, name)
        per_amount: dict = {}
        for amount in spec.amounts:
            trials = run_trials(
                dataset,
                spec.algorithm,
                spec.scenario,
                amount,
                spec.config.n_trials,
                config=spec.config,
                random_state=spec.config.seed,
                parallelize=spec.parallelize,
                store=store,
                oracle=spec.oracle,
            )
            rows = [
                [index, trial.cvcp_value, trial.cvcp_quality, trial.expected_quality, trial.correlation]
                for index, trial in enumerate(trials)
            ]
            heading = f"Trials, {name}, {int(round(amount * 100))}% side information"
            sections.append((heading, format_table(headers, rows)))
            per_amount[_format_amount(amount)] = [trial.to_dict() for trial in trials]
        results[name] = per_amount
    return sections, results


def _run_ablation(spec: PipelineSpec, store: ArtifactStore) -> tuple[list[tuple[str, str]], dict]:
    sections: list[tuple[str, str]] = []
    results: dict = {}
    for name in spec.datasets:
        dataset = _resolve_dataset(spec, name)
        per_amount: dict = {}
        for amount in spec.amounts:
            ablations = [
                closure_leakage_ablation(
                    dataset, algorithm=spec.algorithm, amount=amount, config=spec.config, store=store
                ),
                fold_count_ablation(
                    dataset, algorithm=spec.algorithm, amount=amount, config=spec.config, store=store
                ),
                scorer_ablation(
                    dataset, algorithm=spec.algorithm, amount=amount, config=spec.config, store=store
                ),
            ]
            tag = f"{name}, {int(round(amount * 100))}% side information"
            per_amount[_format_amount(amount)] = {
                ablation.name: dict(ablation.measurements) for ablation in ablations
            }
            for ablation in ablations:
                heading = f"Ablation: {ablation.name} ({tag})"
                sections.append((heading, format_table(["measurement", "value"], ablation.as_rows())))
        results[name] = per_amount
    return sections, results


def _run_robustness(spec: PipelineSpec, store: ArtifactStore) -> tuple[list[tuple[str, str]], dict]:
    """Noise-robustness sweep: selection accuracy vs flip rate, per algorithm.

    Every registered algorithm is swept so the resulting
    ``summary.json`` carries side-by-side selection-accuracy tables.
    """
    sections: list[tuple[str, str]] = []
    results: dict = {}
    for algorithm in ALGORITHMS:
        per_algorithm: dict = {}
        for amount in spec.amounts:
            table = noise_robustness_table(
                algorithm,
                spec.scenario,
                amount,
                flip_rates=spec.flip_rates,
                repair=spec.oracle_repair,
                config=spec.config,
                store=store,
                parallelize=spec.parallelize,
            )
            heading = (
                f"Noise robustness, {algorithm}, "
                f"{int(round(amount * 100))}% side information"
            )
            sections.append((heading, format_robustness_table(table)))
            per_algorithm[_format_amount(amount)] = {
                name: {
                    _format_amount(row.flip_rate): row.as_summary()
                    for row in table.rows_for(name)
                }
                for name in table.datasets
            }
        results[algorithm] = per_algorithm
    return sections, results


def _run_online(spec: PipelineSpec, store: ArtifactStore) -> tuple[list[tuple[str, str]], dict]:
    """Constraint-stream replay: selection stability vs queries, per delta.

    Every delta re-runs CVCP on the accumulated constraint prefix
    (bit-identical to a cold run on that set); the shared ``"structure"``
    artifacts make the re-selection an extraction-only pass, and the
    per-step ``"online"`` artifacts make a killed replay resume
    byte-identically.
    """
    sections: list[tuple[str, str]] = []
    results: dict = {}
    headers = ["step", "queries", "selected", "changed", "agrees_with_final"]
    for name in spec.datasets:
        dataset = _resolve_dataset(spec, name)
        per_amount: dict = {}
        for amount in spec.amounts:
            replay = replay_constraint_stream(
                dataset,
                amount,
                config=spec.config,
                stream=spec.stream,
                oracle=spec.oracle,
                random_state=spec.config.seed,
                store=store,
            )
            summary = replay.as_summary()
            rows = [
                [
                    step["step"],
                    step["queries"],
                    step["value"],
                    str(step["changed"]).lower(),
                    str(step["agrees_with_final"]).lower(),
                ]
                for step in summary["steps"]
            ]
            heading = (
                f"Online replay, {name}, {int(round(amount * 100))}% constraint stream "
                f"({spec.stream.n_deltas} deltas, {spec.stream.order} order)"
            )
            sections.append((heading, format_table(headers, rows)))
            per_amount[_format_amount(amount)] = summary
        results[name] = per_amount
    return sections, results


_KIND_RUNNERS = {
    "comparison": _run_comparison,
    "correlation": _run_correlation,
    "curves": _run_curves,
    "trials": _run_trials_kind,
    "ablation": _run_ablation,
    "robustness": _run_robustness,
    "online": _run_online,
}


def run_pipeline(
    spec: PipelineSpec,
    *,
    store: ArtifactStore | None = None,
    backend: str | None = None,
    n_jobs: int | None = None,
    distance_backend: str | None = None,
    epsilon: float | None = None,
    k_neighbors: int | None = None,
    write_reports: bool = True,
) -> PipelineResult:
    """Execute a pipeline spec through the artifact store.

    ``backend``/``n_jobs``/``distance_backend`` override the spec's
    execution engine and distance-matrix storage tier (results are
    bit-identical across execution backends and across the *exact*
    distance tiers, so overriding those never invalidates cached
    artifacts; the approximate ``neighbors`` tier — tuned with
    ``epsilon``/``k_neighbors`` — keys its own artifacts).  With
    ``write_reports`` the rendered report and the deterministic
    ``summary.json`` are persisted under ``<artifacts root>/reports/<name>/``.
    """
    if (
        backend is not None or n_jobs is not None or distance_backend is not None
        or epsilon is not None or k_neighbors is not None
    ):
        spec = spec.with_overrides(
            config=spec.config.with_execution(
                backend=backend, n_jobs=n_jobs, distance_backend=distance_backend,
                epsilon=epsilon, k_neighbors=k_neighbors,
            )
        )
    if store is None:
        store = ArtifactStore(spec.artifacts_root)
    store.reset_stats()

    sections, results = _KIND_RUNNERS[spec.kind](spec, store)

    summary = {
        "name": spec.name,
        "kind": spec.kind,
        "algorithm": spec.algorithm,
        "scenario": spec.scenario,
        "seed": spec.config.seed,
        "amounts": [float(amount) for amount in spec.amounts],
        "datasets": list(spec.datasets),
        "oracle": spec.oracle.spec(),
        "config_fingerprint": trial_config_fingerprint(spec.config),
        "results": results,
    }
    if spec.kind == "robustness":
        summary["flip_rates"] = sorted({0.0} | {float(rate) for rate in spec.flip_rates})
        summary["oracle_repair"] = spec.oracle_repair
    if spec.kind == "online":
        summary["stream"] = spec.stream.to_spec()
    title = f"{spec.name} — {spec.kind} pipeline ({spec.algorithm}, {spec.scenario} scenario)"
    report_text = render_report(title, sections)

    report_paths: list[Path] = []
    if write_reports:
        report_paths = write_report(
            store, spec.name, report_text, summary, formats=spec.report_formats
        )
    return PipelineResult(
        spec=spec,
        sections=sections,
        summary=summary,
        report_text=report_text,
        report_paths=report_paths,
        stats=dict(store.stats.as_dict(), by_kind=store.stats_by_kind()),
    )
