"""Noise-robustness experiments: how much annotator error can CVCP absorb?

The paper evaluates CVCP under a perfect oracle.  This extension sweeps a
per-query flip rate through :class:`~repro.constraints.oracles.NoisyOracle`
and measures, per algorithm and data set,

* **selection accuracy** — the fraction of trials in which CVCP under the
  noisy oracle selects the *same* parameter value it selects under the
  perfect oracle at the same trial seed (flip rate 0 is the baseline, so
  its accuracy is 1 by construction);
* **selection quality** — the mean external Overall F-Measure of the
  selected parameter, which shows how much of the noise-induced selection
  drift actually costs clustering quality.

Trials at different flip rates share their trial seeds *and* their random
streams (the noisy oracle advances its generator by the same number of
draws at every rate, and rate 0 runs through the noisy oracle too), so the
comparison is strictly paired: folds, estimator seeds and refit seeds are
identical across rates and only the corrupted answers differ.  Each
(algorithm, data set, flip rate) cell is cached independently in the
artifact store — the oracle spec is part of every trial key — so
re-running a sweep with one extra rate reuses every already-computed rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constraints.oracles import ConstraintOracle, NoisyOracle
from repro.datasets.registry import get_dataset
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import AlgorithmName, ScenarioName, TrialResult, run_trials
from repro.utils.rng import RandomStateLike, check_random_state

#: Flip rates swept when the caller does not specify any.
DEFAULT_FLIP_RATES: tuple[float, ...] = (0.0, 0.1, 0.25)


@dataclass
class RobustnessRow:
    """One (data set, flip rate) cell of a noise-robustness table."""

    dataset: str
    flip_rate: float
    #: Per-trial parameter selections under this flip rate, trial order.
    selected_values: list[int] = field(default_factory=list)
    #: Per-trial selections of the rate-0 baseline (same trial seeds).
    baseline_values: list[int] = field(default_factory=list)
    #: Per-trial external quality of the selected parameter.
    qualities: list[float] = field(default_factory=list)

    @property
    def selection_accuracy(self) -> float:
        """Fraction of trials agreeing with the perfect-oracle selection."""
        if not self.selected_values:
            return float("nan")
        matches = sum(
            1 for noisy, clean in zip(self.selected_values, self.baseline_values) if noisy == clean
        )
        return matches / len(self.selected_values)

    @property
    def quality_mean(self) -> float:
        return float(np.mean(self.qualities)) if self.qualities else float("nan")

    @property
    def quality_std(self) -> float:
        return float(np.std(self.qualities, ddof=1)) if len(self.qualities) > 1 else 0.0

    def as_summary(self) -> dict:
        """JSON-ready summary of this cell (used by ``summary.json``)."""
        return {
            "flip_rate": float(self.flip_rate),
            "selection_accuracy": self.selection_accuracy,
            "cvcp_quality_mean": self.quality_mean,
            "cvcp_quality_std": self.quality_std,
            "selected_values": list(self.selected_values),
        }


@dataclass
class NoiseRobustnessTable:
    """Selection accuracy and quality vs. flip rate for one algorithm."""

    algorithm: AlgorithmName
    scenario: ScenarioName
    amount: float
    repair: bool
    flip_rates: list[float]
    datasets: list[str]
    rows: list[RobustnessRow] = field(default_factory=list)

    def rows_for(self, dataset: str) -> list[RobustnessRow]:
        """The rows of one data set, in ascending flip-rate order."""
        return [row for row in self.rows if row.dataset == dataset]


def _oracle_for(flip_rate: float, repair: bool) -> ConstraintOracle:
    """Every arm — including the rate-0 baseline — uses the noisy oracle.

    ``NoisyOracle`` advances the random stream by the same number of draws
    at every flip probability, so trials at different rates share their
    folds, estimator seeds and refit seeds and differ *only* in the
    corrupted answers.  Using ``PerfectOracle`` for the baseline would
    consume fewer draws and silently attribute rng-stream divergence to
    noise.
    """
    return NoisyOracle(flip_probability=flip_rate, repair=repair)


def noise_robustness_table(
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    *,
    flip_rates: tuple[float, ...] | list[float] = DEFAULT_FLIP_RATES,
    repair: bool = False,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    store: ArtifactStore | None = None,
    parallelize: str = "grid",
) -> NoiseRobustnessTable:
    """Sweep the oracle flip rate and measure CVCP selection robustness.

    Parameters
    ----------
    algorithm / scenario / amount:
        The trial configuration whose robustness is measured, exactly as in
        :func:`repro.experiments.runner.run_trials`.
    flip_rates:
        Per-query corruption probabilities to sweep.  Rate ``0.0`` (the
        perfect-oracle baseline every accuracy is measured against) is
        always included, whether or not it is listed.
    repair:
        Whether the noisy oracle repairs closure consistency after
        flipping (see
        :func:`repro.constraints.oracles.repair_closure_consistency`).
    config / random_state / store / parallelize:
        As in the other experiment drivers.  Every data set draws one trial
        seed that is shared across all flip rates, which makes the accuracy
        comparison paired per trial.
    """
    config = config or default_config()
    rng = check_random_state(random_state if random_state is not None else config.seed)
    rates = sorted({0.0} | {float(rate) for rate in flip_rates})
    for rate in rates:
        if not 0 <= rate <= 1:
            raise ValueError(f"flip rates must be in [0, 1], got {rate!r}")

    table = NoiseRobustnessTable(
        algorithm=algorithm,
        scenario=scenario,
        amount=amount,
        repair=bool(repair),
        flip_rates=rates,
        datasets=list(config.datasets),
    )
    for name in config.datasets:
        dataset = get_dataset(name, random_state=int(rng.integers(0, 2**31 - 1)))
        trial_seed = int(rng.integers(0, 2**31 - 1))
        baseline: list[TrialResult] | None = None
        for rate in rates:
            trials = run_trials(
                dataset, algorithm, scenario, amount, config.n_trials,
                config=config, random_state=trial_seed,
                oracle=_oracle_for(rate, repair),
                store=store, parallelize=parallelize,
            )
            if baseline is None:
                baseline = trials
            table.rows.append(
                RobustnessRow(
                    dataset=name,
                    flip_rate=rate,
                    selected_values=[trial.cvcp_value for trial in trials],
                    baseline_values=[trial.cvcp_value for trial in baseline],
                    qualities=[trial.cvcp_quality for trial in trials],
                )
            )
    return table
