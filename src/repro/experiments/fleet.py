"""Fleet-scale work stealing: many workers, one artifact store, zero scheduler.

The CVCP evaluation grid is embarrassingly parallel: every *(trial × cell)*
unit is keyed by a content address (see
:mod:`repro.experiments.artifacts`) and its result is bit-identical no
matter which process computes it, because per-cell seed derivation is
position-based.  That makes the artifact store itself a sufficient
coordination substrate — this module adds only the thin claim/steal layer
on top:

* **Leases** — a worker claims a unit by creating
  ``<root>/fleet/leases/<digest>.lease`` with ``O_CREAT | O_EXCL`` (atomic
  on POSIX and NFSv3+); while computing, a heartbeat thread refreshes the
  lease mtime.  A lease whose mtime is older than the TTL is *stale* and
  may be reclaimed by any worker: the stealer atomically ``rename``\\ s the
  stale lease to a unique per-stealer name (exactly one concurrent
  renamer succeeds) and then claims afresh.
* **Idempotent completion** — a unit is *done* when its trial artifact
  exists.  Leases are purely an anti-duplication optimisation: in the
  worst interleavings (a SIGKILL between refreshes, clocks drifting
  between machines) work may be duplicated, but results are never wrong,
  because every write is an atomic rename of content-addressed JSON.
* **Worker registry** — each worker maintains
  ``<root>/fleet/workers/<worker_id>.json`` (atomic replace; the file
  mtime doubles as the liveness signal for ``repro status`` and the
  dashboard).

:func:`enumerate_units` replicates, per pipeline kind, the exact
random-stream draw order of the experiment drivers
(:mod:`~repro.experiments.comparison`, :mod:`~repro.experiments.correlation`,
:mod:`~repro.experiments.robustness`, :func:`~repro.experiments.runner.run_trials`),
so the set of unit keys a worker steals over is precisely the set of trial
artifacts a single-process :func:`~repro.experiments.pipeline.run_pipeline`
would write.  After the steal loop drains, every worker runs the pipeline
normally — entirely from cache — and therefore emits a byte-identical
``summary.json``.

The ``curves`` and ``ablation`` kinds do single-trial/figure work with no
per-trial units; for them the steal loop is empty and every worker simply
runs the (idempotent, store-backed) pipeline.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.constraints.oracles import ConstraintOracle, NoisyOracle
from repro.datasets.registry import get_dataset, get_dataset_collection
from repro.experiments.artifacts import ArtifactStore, key_digest
from repro.experiments.runner import run_trial, trial_artifact_key
from repro.utils.rng import spawn_seeds
from repro.utils.specs import SpecError, check_spec_mapping, unknown_key_problems

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datasets.base import Dataset
    from repro.experiments.pipeline import PipelineResult, PipelineSpec

#: Environment override for the worker identity (tests, orchestrators).
WORKER_ID_ENV_VAR = "REPRO_WORKER_ID"

#: Subdirectory of the artifact-store root holding all fleet state.
FLEET_DIRNAME = "fleet"

DEFAULT_LEASE_TTL_S = 60.0
DEFAULT_POLL_INTERVAL_S = 0.5


@dataclass(frozen=True)
class FleetSettings:
    """The ``[fleet]`` pipeline-config table.

    Attributes
    ----------
    lease_ttl_s:
        Seconds without a heartbeat after which a lease counts as stale
        and its unit may be reclaimed.  Must comfortably exceed the
        heartbeat interval (TTL / 4) plus worst-case filesystem latency.
    poll_interval_s:
        How long a worker sleeps after a full pass over the remaining
        units makes no progress (everything leased by others).
    """

    lease_ttl_s: float = DEFAULT_LEASE_TTL_S
    poll_interval_s: float = DEFAULT_POLL_INTERVAL_S

    def with_overrides(self, **overrides: float) -> "FleetSettings":
        """A copy with the given fields replaced (CLI flag overrides)."""
        return replace(self, **{key: value for key, value in overrides.items() if value is not None})

    def to_spec(self) -> dict:
        """JSON/TOML-ready ``[fleet]`` table (the shared spec protocol)."""
        return {"lease_ttl_s": self.lease_ttl_s, "poll_interval_s": self.poll_interval_s}

    @classmethod
    def from_spec(cls, spec: dict) -> "FleetSettings":
        """Validate a ``[fleet]`` table mapping into settings.

        Collects every problem before raising
        :class:`~repro.utils.specs.SpecError`.
        """
        spec = check_spec_mapping(spec, "fleet")
        known = ("lease_ttl_s", "poll_interval_s")
        problems = unknown_key_problems(spec, known, "fleet")
        kwargs: dict[str, float] = {}
        for key in known:
            if key not in spec:
                continue
            value = spec[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"fleet.{key}: must be a positive number of seconds, got {value!r}")
            else:
                kwargs[key] = float(value)
        if problems:
            raise SpecError("fleet", problems)
        return cls(**kwargs)


def default_worker_id() -> str:
    """A unique worker identity: env override, or host-pid-nonce."""
    configured = os.environ.get(WORKER_ID_ENV_VAR, "").strip()
    if configured:
        return configured
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class FleetStats:
    """What one worker's steal loop did."""

    #: Units acquired through a fresh ``O_EXCL`` claim and computed.
    claimed: int = 0
    #: Units acquired by reclaiming another worker's stale lease.
    stolen: int = 0
    #: Units found already completed (by this run or an earlier one).
    already_done: int = 0
    #: Idle passes (every remaining unit was leased by a live worker).
    waits: int = 0

    @property
    def completed(self) -> int:
        """Units this worker computed (claimed + stolen)."""
        return self.claimed + self.stolen

    def as_dict(self) -> dict[str, int]:
        return {
            "claimed": self.claimed,
            "stolen": self.stolen,
            "completed": self.completed,
            "already_done": self.already_done,
            "waits": self.waits,
        }


class LeaseManager:
    """Atomic lease files under ``<root>/fleet/leases``.

    Claiming uses ``O_CREAT | O_EXCL`` so exactly one concurrent claimer
    wins; stealing a stale lease uses ``rename`` to a unique name so
    exactly one concurrent stealer wins.  Staleness is judged from the
    lease file's mtime: a heartbeat is an ``os.utime`` refresh, and mtimes
    in the future (clock skew between machines sharing a store) count as
    freshly refreshed rather than negative-age.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        worker_id: str,
        *,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> None:
        self.root = Path(root)
        self.worker_id = str(worker_id)
        self.ttl_s = float(ttl_s)
        self.leases_dir = self.root / FLEET_DIRNAME / "leases"

    # ------------------------------------------------------------------
    def lease_path(self, digest: str) -> Path:
        return self.leases_dir / f"{digest}.lease"

    def claim(self, digest: str) -> bool:
        """Try to acquire the lease for ``digest``; never blocks."""
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.lease_path(digest), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        payload = {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "digest": digest,
        }
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True))
        return True

    def refresh(self, digest: str) -> bool:
        """Heartbeat: bump the lease mtime; False if the lease vanished."""
        try:
            os.utime(self.lease_path(digest))
        except OSError:
            return False
        return True

    def release(self, digest: str) -> bool:
        """Drop the lease (done or failed); False if already gone."""
        try:
            self.lease_path(digest).unlink()
        except OSError:
            return False
        return True

    def lease_age_s(self, digest: str) -> float | None:
        """Seconds since the last heartbeat, or ``None`` when unleased.

        Clamped at zero: an mtime in the future (another machine's clock
        runs ahead) reads as *just refreshed*, so clock skew can delay a
        reclaim but never triggers a premature one.
        """
        try:
            mtime = self.lease_path(digest).stat().st_mtime
        except OSError:
            return None
        return max(0.0, time.time() - mtime)

    def is_stale(self, digest: str) -> bool:
        age = self.lease_age_s(digest)
        return age is not None and age > self.ttl_s

    def steal(self, digest: str) -> bool:
        """Reclaim a stale lease; exactly one concurrent stealer wins.

        The decider is the atomic ``rename`` of the stale lease file to a
        name unique to this stealer: every loser either fails the rename
        or finds the lease already gone.  The winner then claims afresh.
        A worker that was merely *slow* (refreshed between our staleness
        check and the rename) loses its lease and may duplicate work —
        its heartbeat re-claims on the next beat — but completion stays
        idempotent, so results are unaffected.
        """
        if not self.is_stale(digest):
            return False
        retired = self.leases_dir / f"{digest}.stale-{self.worker_id}-{uuid.uuid4().hex[:8]}"
        if not self._retire_if_stale(self.lease_path(digest), retired):
            return False
        retired.unlink(missing_ok=True)
        return self.claim(digest)

    def _retire_if_stale(self, lease: Path, retired: Path) -> bool:
        """Atomically move ``lease`` aside iff it is still stale.

        The rename is the race decider, but it grabs whatever file sits at
        the lease path *now* — a concurrent winner may already have
        re-claimed, leaving a fresh lease there.  So staleness is verified
        on the grabbed file (rename preserves mtime) and a fresh grab is
        put back where it came from.
        """
        try:
            os.rename(lease, retired)
        except OSError:
            return False
        try:
            age = max(time.time() - retired.stat().st_mtime, 0.0)
        except OSError:
            return False
        if age <= self.ttl_s:
            try:
                os.rename(retired, lease)
            except OSError:
                retired.unlink(missing_ok=True)
            return False
        return True

    def sweep_orphans(self) -> int:
        """Drop every stale lease and stealing leftover; returns the count.

        Run at worker startup so a store littered by a crashed fleet
        starts clean instead of waiting out per-unit steals.
        """
        removed = 0
        if not self.leases_dir.is_dir():
            return 0
        for path in list(self.leases_dir.iterdir()):
            if path.suffix == ".lease":
                digest = path.stem
                if not self.is_stale(digest):
                    continue
                retired = self.leases_dir / f"{digest}.stale-{self.worker_id}-{uuid.uuid4().hex[:8]}"
                if not self._retire_if_stale(path, retired):
                    continue
                retired.unlink(missing_ok=True)
                removed += 1
            elif ".stale-" in path.name:
                # A stealer killed between its rename and unlink.
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def read_lease(self, digest: str) -> dict | None:
        """The claim payload of a held lease (best effort; ``None`` if gone)."""
        try:
            return json.loads(self.lease_path(digest).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def list_leases(self) -> dict[str, dict]:
        """Every held lease: ``{digest: {worker, age_s, stale}}``."""
        leases: dict[str, dict] = {}
        if not self.leases_dir.is_dir():
            return leases
        for path in sorted(self.leases_dir.glob("*.lease")):
            digest = path.stem
            age = self.lease_age_s(digest)
            if age is None:
                continue
            payload = self.read_lease(digest) or {}
            leases[digest] = {
                "worker": payload.get("worker", "?"),
                "age_s": age,
                "stale": age > self.ttl_s,
            }
        return leases

    @contextmanager
    def holding(self, digest: str) -> Iterator[None]:
        """Run a unit's computation under a heartbeat on its lease.

        The background thread refreshes the mtime every TTL/4 seconds; if
        the lease vanished (swept or stolen while we were slow), it
        re-claims best-effort so observers see the unit as in-flight.
        """
        stop = threading.Event()
        interval = max(0.05, self.ttl_s / 4.0)

        def beat() -> None:
            while not stop.wait(interval):
                if not self.refresh(digest):
                    self.claim(digest)

        thread = threading.Thread(target=beat, name=f"lease-heartbeat-{digest[:8]}", daemon=True)
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join()


# ----------------------------------------------------------------------
# Unit enumeration


@dataclass(frozen=True, eq=False)
class TrialUnit:
    """One stealable unit: a single keyed trial of the pipeline's grid."""

    dataset: "Dataset"
    dataset_name: str
    algorithm: str
    scenario: str
    amount: float
    trial_seed: int
    oracle: ConstraintOracle | None
    key: dict
    digest: str


def enumerate_units(spec: "PipelineSpec") -> list[TrialUnit]:
    """All keyed trial units a pipeline run will need, deduplicated.

    Replicates the exact random-stream draw order of the corresponding
    experiment driver — one ``rng.integers`` draw per data-set seed, one
    per ``run_trials`` batch seed, in driver iteration order — so the
    returned keys are precisely the trial artifacts the single-process
    pipeline writes (``tests/test_experiments_fleet.py`` locks this in by
    diffing against a real run's store).  Kinds without per-trial units
    (``curves``, ``ablation``) return an empty list.
    """
    config = spec.config
    units: list[TrialUnit] = []
    seen: set[str] = set()
    single_cache: dict[tuple[str, int], "Dataset"] = {}
    collection_cache: dict[tuple[str, int], list] = {}

    def single(name: str, seed: int) -> "Dataset":
        if (name, seed) not in single_cache:
            single_cache[(name, seed)] = get_dataset(name, random_state=seed)
        return single_cache[(name, seed)]

    def collection(name: str, seed: int) -> list:
        # Mirrors ``_trial_sets``/``_datasets_for``: the ALOI column is a
        # collection draw; every other name is a single data set.
        if (name, seed) not in collection_cache:
            if name.lower() == "aloi":
                members = list(
                    get_dataset_collection(
                        "ALOI", n_datasets=config.n_aloi_datasets, random_state=seed
                    )
                )
            else:
                members = [single(name, seed)]
            collection_cache[(name, seed)] = members
        return collection_cache[(name, seed)]

    def add(dataset: "Dataset", name: str, algorithm: str, amount: float, batch_seed: int,
            oracle: ConstraintOracle | None) -> None:
        for trial_seed in spawn_seeds(np.random.default_rng(batch_seed), config.n_trials):
            key = trial_artifact_key(
                config, dataset, algorithm, spec.scenario, amount, int(trial_seed), oracle
            )
            digest = key_digest("trial", key)
            if digest in seen:
                continue
            seen.add(digest)
            units.append(
                TrialUnit(
                    dataset=dataset,
                    dataset_name=name,
                    algorithm=algorithm,
                    scenario=spec.scenario,
                    amount=float(amount),
                    trial_seed=int(trial_seed),
                    oracle=oracle,
                    key=key,
                    digest=digest,
                )
            )

    def draw(rng: np.random.Generator) -> int:
        return int(rng.integers(0, 2**31 - 1))

    if spec.kind == "comparison":
        # ``_run_comparison`` calls ``comparison_table`` once per amount,
        # each with a fresh generator from the config seed.
        for amount in spec.amounts:
            rng = np.random.default_rng(config.seed)
            for name in config.datasets:
                for dataset in collection(name, draw(rng)):
                    add(dataset, name, spec.algorithm, amount, draw(rng), spec.oracle)
    elif spec.kind == "correlation":
        # ``correlation_table`` runs once, one generator across the whole
        # (amount × data set) table, amounts taken from the config.
        rng = np.random.default_rng(config.seed)
        amounts = (
            list(config.label_fractions)
            if spec.scenario == "labels"
            else list(config.constraint_fractions)
        )
        for amount in amounts:
            for name in config.datasets:
                for dataset in collection(name, draw(rng)):
                    add(dataset, name, spec.algorithm, amount, draw(rng), spec.oracle)
    elif spec.kind == "trials":
        # ``_run_trials_kind``: dataset and batch seeds are the config seed.
        for name in spec.datasets:
            dataset = single(name, config.seed)
            for amount in spec.amounts:
                add(dataset, name, spec.algorithm, amount, config.seed, spec.oracle)
    elif spec.kind == "robustness":
        # ``_run_robustness`` sweeps every algorithm; each
        # ``noise_robustness_table`` call starts a fresh generator, draws a
        # data-set seed and one batch seed shared across all flip rates.
        from repro.experiments.pipeline import ALGORITHMS

        rates = sorted({0.0} | {float(rate) for rate in spec.flip_rates})
        for algorithm in ALGORITHMS:
            for amount in spec.amounts:
                rng = np.random.default_rng(config.seed)
                for name in config.datasets:
                    dataset = single(name, draw(rng))
                    batch_seed = draw(rng)
                    for rate in rates:
                        oracle = NoisyOracle(flip_probability=rate, repair=spec.oracle_repair)
                        add(dataset, name, algorithm, amount, batch_seed, oracle)
    return units


# ----------------------------------------------------------------------
# The steal loop


def work_steal(
    digests: Sequence[str],
    *,
    manager: LeaseManager,
    is_done: Callable[[str], bool],
    compute: Callable[[str], None],
    poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
    stats: FleetStats | None = None,
    on_unit: Callable[[str, str], None] | None = None,
) -> FleetStats:
    """Drain a set of units cooperatively: claim, steal stale, poll.

    Each pass walks the remaining units — starting at an offset derived
    from the worker id, so concurrent workers fan out instead of herding —
    and for each one: skip if done, claim if unleased, steal if the lease
    is stale, otherwise leave it for the holder.  A pass that makes no
    progress sleeps ``poll_interval_s`` (some other worker is computing
    the stragglers; its units come back to us if its lease expires).
    ``on_unit(digest, outcome)`` is called after every resolved unit with
    outcome ``claimed``/``stolen``/``done``.
    """
    stats = stats if stats is not None else FleetStats()
    pending = list(digests)
    if pending:
        seed = int.from_bytes(hashlib.sha256(manager.worker_id.encode("utf-8")).digest()[:4], "big")
        offset = seed % len(pending)
        pending = pending[offset:] + pending[:offset]
    while pending:
        progressed = False
        remaining: list[str] = []
        for digest in pending:
            if is_done(digest):
                stats.already_done += 1
                progressed = True
                if on_unit is not None:
                    on_unit(digest, "done")
                continue
            if manager.claim(digest):
                outcome = "claimed"
            elif manager.steal(digest):
                outcome = "stolen"
            else:
                remaining.append(digest)
                continue
            try:
                with manager.holding(digest):
                    compute(digest)
            finally:
                manager.release(digest)
            if outcome == "claimed":
                stats.claimed += 1
            else:
                stats.stolen += 1
            progressed = True
            if on_unit is not None:
                on_unit(digest, outcome)
        pending = remaining
        if pending and not progressed:
            stats.waits += 1
            time.sleep(poll_interval_s)
    return stats


# ----------------------------------------------------------------------
# Worker registry


def worker_record_path(root: str | os.PathLike[str], worker_id: str) -> Path:
    return Path(root) / FLEET_DIRNAME / "workers" / f"{worker_id}.json"


def write_worker_record(
    root: str | os.PathLike[str],
    worker_id: str,
    *,
    phase: str,
    stats: FleetStats,
    n_units: int,
    store_stats: dict | None = None,
) -> Path:
    """Atomically publish a worker's liveness/progress record.

    The file mtime is the liveness signal; the payload carries the steal
    and cache counters the status view and dashboard aggregate.
    """
    path = worker_record_path(root, worker_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "worker": worker_id,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "phase": phase,
        "n_units": int(n_units),
        "stats": stats.as_dict(),
        "store": dict(store_stats or {}),
    }
    tmp = path.with_name(f"{path.name}.tmp-{uuid.uuid4().hex[:8]}")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_worker_records(root: str | os.PathLike[str], *, ttl_s: float = DEFAULT_LEASE_TTL_S) -> list[dict]:
    """Every published worker record, annotated with age and liveness."""
    workers_dir = Path(root) / FLEET_DIRNAME / "workers"
    records: list[dict] = []
    if not workers_dir.is_dir():
        return records
    now = time.time()
    for path in sorted(workers_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            mtime = path.stat().st_mtime
        except (OSError, json.JSONDecodeError):
            continue
        age = max(0.0, now - mtime)
        payload["age_s"] = age
        # A worker that reported "done" is finished, not dead; only a
        # mid-run worker whose heartbeats stopped counts as lost.
        payload["alive"] = payload.get("phase") == "done" or age <= ttl_s
        records.append(payload)
    return records


# ----------------------------------------------------------------------
# The worker entry point


@dataclass
class WorkerRunReport:
    """What one ``repro run --worker`` process did, start to finish."""

    worker_id: str
    n_units: int
    swept: int
    stats: FleetStats
    result: "PipelineResult"


def run_worker(
    spec: "PipelineSpec",
    *,
    store: ArtifactStore | None = None,
    settings: FleetSettings | None = None,
    worker_id: str | None = None,
    log: Callable[[str], None] | None = None,
) -> WorkerRunReport:
    """Run one fleet worker over a pipeline spec, end to end.

    Sweeps orphaned leases, enumerates the stealable units, drains them
    through :func:`work_steal` (computing each via the store-backed
    :func:`~repro.experiments.runner.run_trial`, so a stolen half-finished
    trial resumes from its persisted cells), then runs the full pipeline —
    served entirely from cache — to produce the same reports and
    byte-identical ``summary.json`` as a single-process run.
    """
    from repro.experiments.pipeline import run_pipeline

    settings = settings or getattr(spec, "fleet", None) or FleetSettings()
    store = store if store is not None else ArtifactStore(spec.artifacts_root)
    worker_id = worker_id or default_worker_id()
    emit = log if log is not None else (lambda message: None)

    manager = LeaseManager(store.root, worker_id, ttl_s=settings.lease_ttl_s)
    swept = manager.sweep_orphans()
    if swept:
        emit(f"swept {swept} orphaned lease file(s)")
    units = enumerate_units(spec)
    by_digest = {unit.digest: unit for unit in units}
    emit(f"worker {worker_id}: {len(units)} stealable unit(s) for kind={spec.kind!r}")

    stats = FleetStats()
    write_worker_record(store.root, worker_id, phase="stealing", stats=stats, n_units=len(units))

    def unit_done(digest: str) -> bool:
        return store.path_for("trial", by_digest[digest].key).is_file()

    def compute(digest: str) -> None:
        unit = by_digest[digest]
        run_trial(
            unit.dataset,
            unit.algorithm,
            unit.scenario,
            unit.amount,
            config=spec.config,
            random_state=unit.trial_seed,
            store=store,
            oracle=unit.oracle,
        )

    def publish(digest: str, outcome: str) -> None:
        write_worker_record(
            store.root,
            worker_id,
            phase="stealing",
            stats=stats,
            n_units=len(units),
            store_stats=store.stats.as_dict(),
        )

    work_steal(
        [unit.digest for unit in units],
        manager=manager,
        is_done=unit_done,
        compute=compute,
        poll_interval_s=settings.poll_interval_s,
        stats=stats,
        on_unit=publish,
    )
    emit(
        f"worker {worker_id}: {stats.claimed} claimed, {stats.stolen} stolen, "
        f"{stats.already_done} already done, {stats.waits} idle wait(s)"
    )

    write_worker_record(
        store.root,
        worker_id,
        phase="reporting",
        stats=stats,
        n_units=len(units),
        store_stats=store.stats.as_dict(),
    )
    result = run_pipeline(spec, store=store)
    write_worker_record(
        store.root,
        worker_id,
        phase="done",
        stats=stats,
        n_units=len(units),
        store_stats=store.stats.as_dict(),
    )
    return WorkerRunReport(
        worker_id=worker_id,
        n_units=len(units),
        swept=swept,
        stats=stats,
        result=result,
    )


# ----------------------------------------------------------------------
# Status


@dataclass
class FleetStatus:
    """A point-in-time view of one pipeline's fleet progress."""

    name: str
    kind: str
    total_units: int
    done: int
    leased: int
    stale: int
    workers: list[dict]
    trial_artifacts: int
    cell_artifacts: int

    @property
    def remaining(self) -> int:
        return max(0, self.total_units - self.done)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "total_units": self.total_units,
            "done": self.done,
            "remaining": self.remaining,
            "leased": self.leased,
            "stale": self.stale,
            "workers": list(self.workers),
            "trial_artifacts": self.trial_artifacts,
            "cell_artifacts": self.cell_artifacts,
        }


def fleet_status(spec: "PipelineSpec", store: ArtifactStore | None = None) -> FleetStatus:
    """Measure grid completion, lease health and worker liveness."""
    store = store if store is not None else ArtifactStore(spec.artifacts_root)
    settings = getattr(spec, "fleet", None) or FleetSettings()
    units = enumerate_units(spec)
    done = sum(1 for unit in units if store.path_for("trial", unit.key).is_file())
    manager = LeaseManager(store.root, "status", ttl_s=settings.lease_ttl_s)
    leases = manager.list_leases()
    stale = sum(1 for lease in leases.values() if lease["stale"])
    return FleetStatus(
        name=spec.name,
        kind=spec.kind,
        total_units=len(units),
        done=done,
        leased=len(leases) - stale,
        stale=stale,
        workers=read_worker_records(store.root, ttl_s=settings.lease_ttl_s),
        trial_artifacts=store.count("trial"),
        cell_artifacts=store.count("cell"),
    )


def format_fleet_status(status: FleetStatus) -> str:
    """Terminal rendering of a :class:`FleetStatus` (``repro status``)."""
    lines = [f"{status.name} ({status.kind})"]
    if status.total_units:
        percent = 100.0 * status.done / status.total_units
        lines.append(
            f"  units: {status.done}/{status.total_units} done ({percent:.0f}%), "
            f"{status.leased} leased, {status.stale} stale lease(s)"
        )
    else:
        lines.append(
            f"  units: no stealable trial units for kind={status.kind!r} "
            "(workers run the pipeline idempotently)"
        )
    lines.append(f"  store: {status.trial_artifacts} trial, {status.cell_artifacts} cell artifact(s)")
    if status.workers:
        for record in status.workers:
            stats = record.get("stats", {})
            liveness = "alive" if record.get("alive") else "LOST"
            lines.append(
                f"  worker {record.get('worker', '?')}: {record.get('phase', '?')} "
                f"[{liveness}, {record.get('age_s', 0.0):.0f}s ago] "
                f"{stats.get('claimed', 0)} claimed, {stats.get('stolen', 0)} stolen, "
                f"{stats.get('already_done', 0)} reused"
            )
    else:
        lines.append("  workers: none registered")
    return "\n".join(lines)
