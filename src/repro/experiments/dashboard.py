"""Static-HTML quality dashboard over bench baselines and fleet state.

``repro dashboard`` renders one self-contained HTML file (inline CSS +
SVG, no external assets, no JavaScript) aggregating:

* **Bench trajectory** — the committed ``BENCH_*.json`` baselines
  (parallel backends, kernel speedups, scale tiers, fleet speedups) as
  one bar panel per bench, with per-row floors where the gate has them;
* **Fleet state** — per-grid completion, per-worker liveness and steal
  counters, lease health and cache hit/miss rates read from an artifact
  store's ``fleet/`` registry (when ``--artifacts-root`` is given);
* **Selection-accuracy drift** — robustness ``summary.json`` reports
  plotted as accuracy-vs-flip-rate lines per algorithm.

Every chart ships a table view (the accessibility fallback and the
mitigation for light-surface series colors), native ``<title>`` hover
tooltips, and a light/dark palette validated for color-vision-deficiency
separation.  Sections whose inputs are absent are omitted, so the same
command works in CI (bench files only) and beside a live fleet.
"""

from __future__ import annotations

import html
import json
import math
import os
import time
from pathlib import Path

from repro.experiments.artifacts import ArtifactStore
from repro.experiments.fleet import DEFAULT_LEASE_TTL_S, LeaseManager, read_worker_records

#: Fixed-order categorical slots (validated light *and* dark; see the
#: palette block in :data:`_CSS` — identity is never color-alone because
#: every panel direct-labels its rows and ships a table view).
_SERIES_CLASSES = ("s1", "s2", "s3")

_CHART_W = 640
_GUTTER = 170


# ----------------------------------------------------------------------
# Collectors


def load_bench_panels(bench_dir: str | os.PathLike[str]) -> list[dict]:
    """One bar-panel description per recognised ``BENCH_*.json`` file.

    Each panel is ``{title, unit, note, rows: [(label, value, floor)]}``
    where ``floor`` is the gated minimum for that row (``None`` when the
    bench has no per-row floor).  Unreadable or unrecognised files are
    skipped — the dashboard reports what exists, it does not gate.
    """
    panels: list[dict] = []
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        for builder in (
            _panel_parallel,
            _panel_kernels,
            _panel_scale,
            _panel_fleet,
            _panel_online,
            _panel_text,
        ):
            panel = builder(record, path.name)
            if panel is not None:
                panels.append(panel)
    return panels


def _panel_parallel(record: dict, filename: str) -> dict | None:
    section = record.get("bench_parallel_backends")
    if not isinstance(section, dict) or not isinstance(section.get("mean_s"), dict):
        return None
    rows = [(backend, float(wall), None) for backend, wall in sorted(section["mean_s"].items())]
    return {
        "title": f"Executor backends — grid wall-clock ({filename})",
        "unit": "s",
        "note": section.get("grid", ""),
        "rows": rows,
    }


def _panel_kernels(record: dict, filename: str) -> dict | None:
    section = record.get("bench_kernels")
    if not isinstance(section, dict) or not isinstance(section.get("speedup"), dict):
        return None
    sizes = section.get("sizes", {})
    largest = max(sizes, key=sizes.get) if isinstance(sizes, dict) and sizes else None
    floors = section.get("speedup_floor", {})
    rows = []
    for kernel, per_size in sorted(section["speedup"].items()):
        if not isinstance(per_size, dict) or not per_size:
            continue
        size = largest if largest in per_size else sorted(per_size)[0]
        rows.append((f"{kernel} ({size})", float(per_size[size]), floors.get(kernel)))
    if not rows:
        return None
    return {
        "title": f"Kernel speedup vs reference loops ({filename})",
        "unit": "x",
        "note": section.get("grid", ""),
        "rows": rows,
    }


def _panel_scale(record: dict, filename: str) -> dict | None:
    section = record.get("bench_scale")
    if not isinstance(section, dict) or not isinstance(section.get("wall_s"), dict):
        return None
    rows = []
    for backend, per_size in sorted(section["wall_s"].items()):
        if not isinstance(per_size, dict):
            continue
        for size, wall in sorted(per_size.items()):
            rows.append((f"{backend} / {size}", float(wall), None))
    if not rows:
        return None
    return {
        "title": f"Distance-backend scale tiers — wall-clock ({filename})",
        "unit": "s",
        "note": section.get("grid", ""),
        "rows": rows,
    }


def _panel_fleet(record: dict, filename: str) -> dict | None:
    section = record.get("bench_fleet")
    if not isinstance(section, dict) or not isinstance(section.get("speedup"), dict):
        return None
    floors = section.get("floors", {})
    rows = [
        (f"{count} workers", float(speedup), floors.get(count))
        for count, speedup in sorted(section["speedup"].items(), key=lambda item: int(item[0]))
    ]
    if not rows:
        return None
    return {
        "title": f"Fleet work-stealing speedup vs 1 worker ({filename})",
        "unit": "x",
        "note": section.get("grid", ""),
        "rows": rows,
    }


def _panel_online(record: dict, filename: str) -> dict | None:
    section = record.get("bench_online")
    if not isinstance(section, dict) or not isinstance(section.get("deltas"), list):
        return None
    floors = section.get("floors", {})
    rows = []
    for delta in section["deltas"]:
        if not isinstance(delta, dict) or "speedup" not in delta:
            continue
        rows.append((f"delta {delta.get('step')}", float(delta["speedup"]), None))
    aggregate = section.get("aggregate", {})
    if isinstance(aggregate, dict) and "speedup" in aggregate:
        rows.append(("steady-state", float(aggregate["speedup"]), floors.get("speedup")))
    if not rows:
        return None
    settings = section.get("settings", {})
    note = ""
    if isinstance(settings, dict) and settings:
        note = (
            f"{settings.get('dataset', '?')}, {settings.get('n_deltas', '?')} deltas, "
            f"incremental re-selection vs cold accumulated replay"
        )
    return {
        "title": f"Incremental CVCP speedup vs cold replay ({filename})",
        "unit": "x",
        "note": note,
        "rows": rows,
    }


def _panel_text(record: dict, filename: str) -> dict | None:
    section = record.get("bench_text")
    if not isinstance(section, dict) or not isinstance(section.get("timings"), dict):
        return None
    floors = section.get("floors", {})
    rows = [
        (f"{name.removesuffix('_s').replace('_', ' ')} (ms)", float(wall) * 1e3, None)
        for name, wall in sorted(section["timings"].items())
    ]
    quality = section.get("quality", {})
    if isinstance(quality, dict) and "ari" in quality:
        rows.append(("planted-topic ARI", float(quality["ari"]), floors.get("ari")))
    memory = section.get("memory", {})
    if isinstance(memory, dict) and "ratio" in memory:
        rows.append(("dense/CSR peak-memory ratio", float(memory["ratio"]), floors.get("memory_ratio")))
    if not rows:
        return None
    settings = section.get("settings", {})
    note = ""
    if isinstance(settings, dict) and settings:
        note = (
            f"{settings.get('n_documents', '?')} docs x "
            f"{settings.get('vocabulary_size', '?')} terms, "
            f"density {settings.get('density', 0.0):.3f}; parity asserted before timing"
        )
    return {
        "title": f"Sparse text workload — cosine + precomputed ({filename})",
        "unit": "",
        "note": note,
        "rows": rows,
    }


def collect_fleet_state(artifacts_root: str | os.PathLike[str]) -> dict | None:
    """Worker registry, lease health, completion and cache totals of a store."""
    root = Path(artifacts_root)
    if not root.is_dir():
        return None
    store = ArtifactStore(root)
    workers = read_worker_records(root, ttl_s=DEFAULT_LEASE_TTL_S)
    leases = LeaseManager(root, "dashboard").list_leases()
    n_units = max((record.get("n_units", 0) for record in workers), default=0)
    trial_count = store.count("trial")
    cache = {"hits": 0, "misses": 0, "writes": 0}
    steals = {"claimed": 0, "stolen": 0, "already_done": 0, "waits": 0}
    for record in workers:
        for name in cache:
            cache[name] += record.get("store", {}).get(name, 0)
        for name in steals:
            steals[name] += record.get("stats", {}).get(name, 0)
    return {
        "workers": workers,
        "leases": leases,
        "stale_leases": sum(1 for lease in leases.values() if lease["stale"]),
        "n_units": n_units,
        "done_units": min(trial_count, n_units) if n_units else trial_count,
        "trial_artifacts": trial_count,
        "cell_artifacts": store.count("cell"),
        "cache": cache,
        "steals": steals,
    }


def collect_drift(artifacts_root: str | os.PathLike[str]) -> list[dict]:
    """Selection-accuracy-vs-flip-rate series from robustness summaries.

    Returns one entry per robustness report found under
    ``<root>/reports/*/summary.json``:
    ``{report, series: {algorithm: [(flip_rate, mean_accuracy)]}}`` with
    the accuracy averaged across data sets and side-information amounts.
    """
    drifts: list[dict] = []
    for path in sorted(Path(artifacts_root).glob("reports/*/summary.json")):
        try:
            summary = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if summary.get("kind") != "robustness":
            continue
        series: dict[str, list[tuple[float, float]]] = {}
        for algorithm, per_amount in sorted(summary.get("results", {}).items()):
            accumulator: dict[float, list[float]] = {}
            for per_dataset in per_amount.values():
                for per_rate in per_dataset.values():
                    for rate, cell in per_rate.items():
                        accuracy = cell.get("selection_accuracy")
                        if accuracy is not None:
                            accumulator.setdefault(float(rate), []).append(float(accuracy))
            if accumulator:
                series[algorithm] = [
                    (rate, sum(values) / len(values)) for rate, values in sorted(accumulator.items())
                ]
        if series:
            drifts.append({"report": summary.get("name", path.parent.name), "series": series})
    return drifts


# ----------------------------------------------------------------------
# SVG building blocks


def _nice_step(span: float) -> float:
    if span <= 0:
        return 1.0
    raw = span / 4.0
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for multiple in (1.0, 2.0, 5.0, 10.0):
        if raw <= multiple * magnitude:
            return multiple * magnitude
    return 10.0 * magnitude


def _fmt(value: float) -> str:
    return f"{value:g}" if value < 100 else f"{value:,.0f}"


def _hbar_path(x: float, y: float, width: float, height: float) -> str:
    # 4px rounded data-end, square at the baseline (left edge).
    radius = min(4.0, width, height / 2.0)
    return (
        f"M{x:.1f},{y:.1f} h{width - radius:.1f} "
        f"a{radius:.1f},{radius:.1f} 0 0 1 {radius:.1f},{radius:.1f} "
        f"v{height - 2 * radius:.1f} "
        f"a{radius:.1f},{radius:.1f} 0 0 1 {-radius:.1f},{radius:.1f} "
        f"h{-(width - radius):.1f} z"
    )


def _svg_bar_panel(rows: list[tuple[str, float, float | None]], unit: str) -> str:
    """Horizontal bar chart: 18px bars, rounded data-ends, floor ticks."""
    bar_h, row_h, top, bottom = 18, 26, 8, 26
    plot_w = _CHART_W - _GUTTER - 56
    height = top + row_h * len(rows) + bottom
    max_value = max((value for _, value, _ in rows), default=1.0)
    max_value = max(max_value, max((floor or 0.0 for _, _, floor in rows), default=0.0), 1e-9)
    step = _nice_step(max_value)
    axis_max = step * math.ceil(max_value / step)
    scale = plot_w / axis_max

    parts = [
        f'<svg viewBox="0 0 {_CHART_W} {height}" role="img" '
        f'font-family="system-ui, sans-serif" font-size="12">'
    ]
    tick = step
    while tick <= axis_max + 1e-9:
        x = _GUTTER + tick * scale
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" y2="{height - bottom}" class="grid"/>'
            f'<text x="{x:.1f}" y="{height - 8}" text-anchor="middle" class="muted">'
            f"{_fmt(tick)}{unit}</text>"
        )
        tick += step
    parts.append(
        f'<line x1="{_GUTTER}" y1="{top}" x2="{_GUTTER}" y2="{height - bottom}" class="axis"/>'
    )
    for index, (label, value, floor) in enumerate(rows):
        y = top + index * row_h + (row_h - bar_h) / 2
        width = max(1.0, value * scale)
        series = _SERIES_CLASSES[index % len(_SERIES_CLASSES)]
        tooltip = f"{label}: {value:.2f}{unit}"
        if floor is not None:
            tooltip += f" (floor {floor:g}{unit})"
        parts.append("<g>")
        parts.append(f"<title>{html.escape(tooltip)}</title>")
        parts.append(
            f'<text x="{_GUTTER - 8}" y="{y + bar_h - 5}" text-anchor="end" class="ink">'
            f"{html.escape(label)}</text>"
        )
        parts.append(f'<path d="{_hbar_path(_GUTTER, y, width, bar_h)}" class="{series}"/>')
        parts.append(
            f'<text x="{_GUTTER + width + 6}" y="{y + bar_h - 5}" class="ink">'
            f"{value:.2f}{unit}</text>"
        )
        if floor is not None:
            x = _GUTTER + floor * scale
            parts.append(
                f'<line x1="{x:.1f}" y1="{y - 2}" x2="{x:.1f}" y2="{y + bar_h + 2}" class="floor"/>'
            )
        parts.append("</g>")
    parts.append("</svg>")
    return "".join(parts)


def _svg_line_panel(series: dict[str, list[tuple[float, float]]]) -> str:
    """Accuracy-vs-rate lines: 2px strokes, ringed 4.5px markers, end labels."""
    top, bottom, right = 12, 34, 96
    height, plot_h = 240, 240 - 12 - 34
    plot_w = _CHART_W - _GUTTER // 2 - right
    left = _GUTTER // 2
    xs = sorted({x for points in series.values() for x, _ in points})
    x_max = max(xs) if xs else 1.0
    x_scale = plot_w / x_max if x_max else plot_w

    def sx(x: float) -> float:
        return left + x * x_scale

    def sy(y: float) -> float:
        return top + (1.0 - y) * plot_h

    parts = [
        f'<svg viewBox="0 0 {_CHART_W} {height}" role="img" '
        f'font-family="system-ui, sans-serif" font-size="12">'
    ]
    for value in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = sy(value)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}" class="grid"/>'
            f'<text x="{left - 8}" y="{y + 4:.1f}" text-anchor="end" class="muted">{value:g}</text>'
        )
    for x in xs:
        parts.append(
            f'<text x="{sx(x):.1f}" y="{height - 14}" text-anchor="middle" class="muted">{x:g}</text>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.1f}" y="{height - 1}" text-anchor="middle" class="muted">'
        "constraint flip rate</text>"
    )
    for index, (name, points) in enumerate(sorted(series.items())):
        stroke = _SERIES_CLASSES[index % len(_SERIES_CLASSES)]
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
        parts.append(
            f'<polyline points="{coords}" fill="none" class="{stroke}-line" '
            'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
        for x, y in points:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4.5" class="{stroke} ring">'
                f"<title>{html.escape(name)} @ {x:g}: {y:.3f}</title></circle>"
            )
        if points:
            x, y = points[-1]
            parts.append(
                f'<text x="{sx(x) + 10:.1f}" y="{sy(y) + 4:.1f}" class="ink">'
                f"{html.escape(name)}</text>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _svg_meter(fraction: float) -> str:
    """Completion meter: sequential fill over a lighter track of the same hue."""
    fraction = min(1.0, max(0.0, fraction))
    width, height = _CHART_W - 32, 18
    fill_w = width * fraction
    parts = [
        f'<svg viewBox="0 0 {_CHART_W} 28" role="img">',
        f"<title>grid completion {fraction:.0%}</title>",
        f'<rect x="16" y="5" width="{width}" height="{height}" rx="4" class="track"/>',
    ]
    if fill_w >= 1:
        parts.append(f'<path d="{_hbar_path(16, 5, fill_w, height)}" class="fill"/>')
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# HTML assembly

_CSS = """
:root { color-scheme: light dark; }
body.viz-root {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink-1: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --status-good: #0ca30c; --status-critical: #d03b3b;
  --seq-track: #cde2fb; --seq-fill: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --seq-track: #0d366b; --seq-fill: #3987e5;
  }
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; font-size: 13px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 16px 16px 10px; margin: 0 auto 16px; max-width: 680px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; max-width: 680px; margin: 0 auto 16px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 10px 14px; min-width: 112px;
}
.tile .label { font-size: 12px; color: var(--ink-2); }
.tile .value { font-size: 24px; font-weight: 600; }
.hero { font-size: 48px; font-weight: 600; line-height: 1.1; }
.note { color: var(--muted); font-size: 12px; margin: 6px 0 0; }
svg { display: block; width: 100%; height: auto; }
svg .grid { stroke: var(--gridline); stroke-width: 1; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .floor { stroke: var(--ink-2); stroke-width: 1.5; }
svg .muted { fill: var(--muted); }
svg .ink { fill: var(--ink-1); }
svg .s1 { fill: var(--series-1); } svg .s1-line { stroke: var(--series-1); }
svg .s2 { fill: var(--series-2); } svg .s2-line { stroke: var(--series-2); }
svg .s3 { fill: var(--series-3); } svg .s3-line { stroke: var(--series-3); }
svg .ring { stroke: var(--surface-1); stroke-width: 2; }
svg .track { fill: var(--seq-track); } svg .fill { fill: var(--seq-fill); }
table { border-collapse: collapse; font-size: 13px; width: 100%; margin-top: 8px; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--gridline); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
details summary { color: var(--ink-2); font-size: 12px; cursor: pointer; margin-top: 6px; }
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--ink-2); margin: 0 0 6px; }
.legend .chip { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 5px; }
.status-ok { color: var(--status-good); font-weight: 600; }
.status-lost { color: var(--status-critical); font-weight: 600; }
footer { max-width: 680px; margin: 20px auto 0; color: var(--muted); font-size: 12px; }
"""


def _bench_section(panels: list[dict]) -> list[str]:
    blocks: list[str] = []
    for panel in panels:
        rows = panel["rows"]
        unit = panel["unit"]
        table_rows = "".join(
            f"<tr><td>{html.escape(label)}</td><td class='num'>{value:.3f}{unit}</td>"
            f"<td class='num'>{f'{floor:g}{unit}' if floor is not None else '-'}</td></tr>"
            for label, value, floor in rows
        )
        blocks.append(
            "<section class='panel'>"
            f"<h2>{html.escape(panel['title'])}</h2>"
            + _svg_bar_panel(rows, unit)
            + (f"<p class='note'>{html.escape(panel['note'])}</p>" if panel["note"] else "")
            + "<details><summary>table view</summary><table>"
            "<tr><th>row</th><th class='num'>value</th><th class='num'>floor</th></tr>"
            f"{table_rows}</table></details></section>"
        )
    return blocks


def _fleet_section(state: dict) -> list[str]:
    cache = state["cache"]
    steals = state["steals"]
    requests = cache["hits"] + cache["misses"]
    hit_rate = f"{cache['hits'] / requests:.0%}" if requests else "n/a"
    alive = sum(1 for worker in state["workers"] if worker.get("alive"))
    fraction = state["done_units"] / state["n_units"] if state["n_units"] else 0.0

    tiles = [
        ("grid completion", f"{fraction:.0%}" if state["n_units"] else "n/a", True),
        ("workers alive", f"{alive}/{len(state['workers'])}", False),
        ("cache hit rate", hit_rate, False),
        ("units stolen", str(steals["stolen"]), False),
        ("trial artifacts", f"{state['trial_artifacts']:,}", False),
        ("cell artifacts", f"{state['cell_artifacts']:,}", False),
        ("stale leases", str(state["stale_leases"]), False),
    ]
    tile_html = "".join(
        f"<div class='tile'><div class='label'>{html.escape(label)}</div>"
        f"<div class='{'hero' if hero else 'value'}'>{html.escape(value)}</div></div>"
        for label, value, hero in tiles
    )
    blocks = [f"<section class='tiles'>{tile_html}</section>"]

    if state["n_units"]:
        blocks.append(
            "<section class='panel'><h2>Grid completion "
            f"({state['done_units']}/{state['n_units']} stealable units)</h2>"
            + _svg_meter(fraction)
            + "</section>"
        )

    worker_rows = []
    for record in sorted(state["workers"], key=lambda r: r.get("worker", "")):
        stats = record.get("stats", {})
        store_stats = record.get("store", {})
        alive_cell = (
            "<span class='status-ok'>&#9679; alive</span>"
            if record.get("alive")
            else "<span class='status-lost'>&#10007; LOST</span>"
        )
        worker_rows.append(
            f"<tr><td>{html.escape(str(record.get('worker', '?')))}</td>"
            f"<td>{html.escape(str(record.get('phase', '?')))}</td>"
            f"<td>{alive_cell}</td>"
            f"<td class='num'>{record.get('age_s', 0.0):.0f}s</td>"
            f"<td class='num'>{stats.get('claimed', 0)}</td>"
            f"<td class='num'>{stats.get('stolen', 0)}</td>"
            f"<td class='num'>{stats.get('already_done', 0)}</td>"
            f"<td class='num'>{store_stats.get('hits', 0)}</td>"
            f"<td class='num'>{store_stats.get('misses', 0)}</td></tr>"
        )
    if worker_rows:
        blocks.append(
            "<section class='panel'><h2>Worker liveness</h2><table>"
            "<tr><th>worker</th><th>phase</th><th>status</th><th class='num'>last seen</th>"
            "<th class='num'>claimed</th><th class='num'>stolen</th><th class='num'>reused</th>"
            "<th class='num'>hits</th><th class='num'>misses</th></tr>"
            + "".join(worker_rows)
            + "</table></section>"
        )
    return blocks


def _drift_section(drifts: list[dict]) -> list[str]:
    blocks: list[str] = []
    for drift in drifts:
        series = drift["series"]
        legend = "".join(
            f"<span><span class='chip' style='background: var(--series-{index + 1})'></span>"
            f"{html.escape(name)}</span>"
            for index, name in enumerate(sorted(series))
        )
        table_rows = "".join(
            f"<tr><td>{html.escape(name)}</td><td class='num'>{rate:g}</td>"
            f"<td class='num'>{accuracy:.3f}</td></tr>"
            for name in sorted(series)
            for rate, accuracy in series[name]
        )
        blocks.append(
            "<section class='panel'>"
            f"<h2>Selection-accuracy drift — {html.escape(drift['report'])}</h2>"
            f"<div class='legend'>{legend}</div>"
            + _svg_line_panel(series)
            + "<details><summary>table view</summary><table>"
            "<tr><th>algorithm</th><th class='num'>flip rate</th>"
            "<th class='num'>selection accuracy</th></tr>"
            f"{table_rows}</table></details></section>"
        )
    return blocks


def render_dashboard(
    *,
    bench_dir: str | os.PathLike[str] = ".",
    artifacts_root: str | os.PathLike[str] | None = None,
) -> str:
    """The full dashboard as one self-contained HTML document."""
    panels = load_bench_panels(bench_dir)
    state = collect_fleet_state(artifacts_root) if artifacts_root else None
    drifts = collect_drift(artifacts_root) if artifacts_root else []

    body: list[str] = []
    if state is not None:
        body.extend(_fleet_section(state))
    body.extend(_drift_section(drifts))
    body.extend(_bench_section(panels))
    if not body:
        body.append(
            "<section class='panel'><h2>Nothing to report</h2>"
            "<p class='note'>No BENCH_*.json files in the bench directory and no "
            "artifact store given — run from the repository root or pass "
            "--bench-dir / --artifacts-root.</p></section>"
        )

    generated = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    return (
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>"
        "<title>repro quality dashboard</title>"
        f"<style>{_CSS}</style></head><body class='viz-root'>"
        "<header><h1>repro quality dashboard</h1>"
        "<p class='sub'>CVCP reproduction (Pourrajabi et al., EDBT 2014) &middot; "
        f"generated {generated}</p></header>"
        + "".join(body)
        + "<footer>Bars cap at their gated floor markers where a bench enforces one; "
        "every chart has a table view; colors follow a CVD-validated fixed-order "
        "palette in both light and dark mode.</footer></body></html>"
    )


def write_dashboard(
    out: str | os.PathLike[str],
    *,
    bench_dir: str | os.PathLike[str] = ".",
    artifacts_root: str | os.PathLike[str] | None = None,
) -> Path:
    """Render the dashboard and write it to ``out``; returns the path."""
    path = Path(out)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_dashboard(bench_dir=bench_dir, artifacts_root=artifacts_root),
        encoding="utf-8",
    )
    return path
