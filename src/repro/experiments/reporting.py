"""Plain-text rendering and artifact-store emission of experiment results.

The benchmark harness prints the regenerated tables/figures with these
helpers so the output can be compared side by side with the paper (see
EXPERIMENTS.md); the pipeline CLI additionally persists rendered reports
and machine-readable summaries through the artifact store
(:func:`render_report` / :func:`write_report`).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.experiments.artifacts import ArtifactStore
from repro.experiments.comparison import ComparisonTable
from repro.experiments.correlation import CorrelationTable
from repro.experiments.figures import ParameterCurves
from repro.experiments.robustness import NoiseRobustnessTable


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.4f}",
    title: str | None = None,
) -> str:
    """Render ``rows`` as a fixed-width text table."""
    def _render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_correlation_table(table: CorrelationTable, *, title: str | None = None) -> str:
    """Render a Tables 1–4 style correlation table."""
    headers = ["Percent", *table.datasets]
    rows = [
        [f"{int(round(amount * 100))}", *table.row(amount)]
        for amount in table.amounts
    ]
    default_title = (
        f"{table.algorithm.upper()} ({table.scenario} scenario) — "
        "correlation of internal scores with Overall F-Measure"
    )
    return format_table(headers, rows, title=title or default_title)


def format_comparison_table(table: ComparisonTable, *, title: str | None = None) -> str:
    """Render a Tables 5–16 style comparison table."""
    has_silhouette = any(row.silhouette for row in table.rows)
    headers = ["Data set", "CVCP mean", "Exp mean"]
    if has_silhouette:
        headers.append("Silh mean")
    headers += ["CVCP std", "Exp std"]
    if has_silhouette:
        headers.append("Silh std")
    headers += ["winner", "significant"]

    rows: list[list[object]] = []
    for row in table.rows:
        cells: list[object] = [row.dataset, row.cvcp_mean, row.expected_mean]
        if has_silhouette:
            cells.append(row.silhouette_mean)
        cells += [row.cvcp_std, row.expected_std]
        if has_silhouette:
            cells.append(row.silhouette_std)
        cells += [row.winner, "yes" if row.winner_significant else "no"]
        rows.append(cells)

    default_title = (
        f"{table.algorithm.upper()} ({table.scenario} scenario) — average performance using "
        f"{int(round(table.amount * 100))}% of side information"
    )
    return format_table(headers, rows, title=title or default_title)


def format_curves(curves: ParameterCurves, *, title: str | None = None) -> str:
    """Render a Figures 5–8 style curve as a value table."""
    headers = [curves.parameter_name, "internal (CVCP)", "external (Overall F)"]
    rows = [[value, internal, external] for value, internal, external in curves.as_series()]
    default_title = (
        f"{curves.algorithm.upper()} ({curves.scenario} scenario) — curves, "
        f"correlation coefficient = {curves.correlation:.4f}"
    )
    return format_table(headers, rows, title=title or default_title)


def format_robustness_table(table: NoiseRobustnessTable, *, title: str | None = None) -> str:
    """Render a noise-robustness sweep as selection-accuracy-vs-flip-rate rows.

    One row per (data set, flip rate): the fraction of trials whose CVCP
    selection matches the perfect-oracle baseline at the same trial seed,
    and the mean/std external quality of the selected parameter.
    """
    headers = ["Data set", "flip rate", "selection accuracy", "CVCP mean", "CVCP std"]
    rows = [
        [row.dataset, row.flip_rate, row.selection_accuracy, row.quality_mean, row.quality_std]
        for row in table.rows
    ]
    repair_note = "with closure repair" if table.repair else "no repair"
    default_title = (
        f"{table.algorithm.upper()} ({table.scenario} scenario, "
        f"{int(round(table.amount * 100))}% side information) — "
        f"selection robustness under a noisy oracle ({repair_note})"
    )
    return format_table(headers, rows, title=title or default_title)


def format_boxplot_summary(distribution: dict[str, list[float]], *, title: str | None = None) -> str:
    """Summarise the Figures 9–12 distributions as quartile rows."""
    headers = ["box", "min", "q1", "median", "q3", "max", "mean"]
    rows = []
    for label, values in distribution.items():
        array = np.asarray(values, dtype=np.float64)
        rows.append([
            label,
            float(array.min()),
            float(np.percentile(array, 25)),
            float(np.median(array)),
            float(np.percentile(array, 75)),
            float(array.max()),
            float(array.mean()),
        ])
    return format_table(headers, rows, title=title or "Quality distributions on the ALOI collection")


def render_report(title: str, sections: Sequence[tuple[str, str]]) -> str:
    """Join rendered sections into one report document.

    ``sections`` is a list of ``(heading, body)`` pairs, typically the
    output of the ``format_*`` helpers above.
    """
    lines = [title, "=" * len(title), ""]
    for heading, body in sections:
        lines.append(heading)
        lines.append("-" * len(heading))
        lines.append(body)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    store: ArtifactStore,
    name: str,
    text: str,
    summary: dict,
    *,
    formats: Sequence[str] = ("txt", "json"),
) -> list[Path]:
    """Persist a rendered report through the artifact store.

    Writes ``report.txt`` (the human-readable document) and/or
    ``summary.json`` (a deterministic machine-readable summary: sorted
    keys, no timestamps — re-running an identical pipeline produces a
    byte-identical file, which is how resume correctness is asserted)
    into ``<store root>/reports/<name>/``.
    """
    paths: list[Path] = []
    directory = store.report_dir(name)
    for fmt in formats:
        if fmt == "txt":
            path = directory / "report.txt"
            _write_atomic(path, text)
        elif fmt == "json":
            path = directory / "summary.json"
            _write_atomic(path, json.dumps(summary, sort_keys=True, indent=2) + "\n")
        else:
            raise ValueError(f"unknown report format {fmt!r}; expected 'txt' or 'json'")
        paths.append(path)
    return paths


def _write_atomic(path: Path, text: str) -> None:
    """Write-and-rename so concurrent readers never see a torn report.

    The serve layer streams report files while identical jobs may be
    rewriting them; rename-into-place makes every read observe one
    complete version (the same discipline the artifact store uses).
    """
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
