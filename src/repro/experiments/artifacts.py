"""Content-addressed, resumable artifact store for experiment results.

Every expensive unit of experimental work — one trial of one algorithm on
one data set with one amount of side information, or one ablation run — is
persisted as a small JSON *artifact* keyed by the exact inputs that
determine its result:

* a fingerprint of the :class:`~repro.experiments.config.ExperimentConfig`
  fields that influence a single trial (fold count, parameter ranges,
  estimator budgets — *not* the execution backend, which is bit-identical
  by construction);
* a fingerprint of the data set content (name, feature matrix, labels);
* the algorithm, scenario and amount of side information;
* the trial's derived seed (every per-value, per-fold grid cell inside the
  trial derives deterministically from it, so the seed pins the whole
  ``value_index × fold`` grid).

Interrupted or re-run grids therefore skip completed cells: the experiment
drivers ask the store before computing and write through it after, and the
store counts hits/misses so a resumed run can report exactly how much work
it reused.

Layout on disk (all writes are atomic rename-into-place)::

    <root>/
        <kind>/<digest[:2]>/<digest>.json   # one artifact per key
        reports/<name>/                     # rendered reports (see reporting)
        fleet/leases/<digest>.lease         # work-stealing leases (see fleet)
        fleet/workers/<worker_id>.json      # worker liveness registry

where ``digest`` is the SHA-256 of the canonical JSON encoding of the key,
i.e. the store is content-addressed by *key*, and artifact payloads
round-trip exactly (Python's JSON float encoding is shortest-roundtrip, so
cached results are bit-identical to freshly computed ones).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.utils.cache import array_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datasets.base import Dataset
    from repro.experiments.config import ExperimentConfig

#: Bumped whenever the artifact schema changes incompatibly; part of every
#: key, so stale artifacts from older schemas simply never hit.
SCHEMA_VERSION = 1

#: ``ExperimentConfig`` fields that change the outcome of a *single* trial.
#: Everything else (trial counts, data-set lists, side-information menus,
#: the execution engine) only selects *which* trials run, so excluding it
#: lets e.g. an ``n_trials`` bump reuse every already-computed trial.
TRIAL_CONFIG_FIELDS: tuple[str, ...] = (
    "n_folds",
    "minpts_range",
    "max_k",
    "mpck_n_init",
    "mpck_max_iter",
)


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding used for key hashing and summaries."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def key_digest(kind: str, key: dict[str, Any]) -> str:
    """SHA-256 content address of an artifact key."""
    record = {"schema": SCHEMA_VERSION, "kind": kind, "key": key}
    return hashlib.sha256(canonical_json(record).encode("utf-8")).hexdigest()


def trial_config_fingerprint(config: "ExperimentConfig") -> str:
    """Fingerprint of the config fields that determine a single trial."""
    fields = {name: getattr(config, name) for name in TRIAL_CONFIG_FIELDS}
    for name, value in fields.items():
        if isinstance(value, tuple):
            fields[name] = list(value)
    return hashlib.sha256(canonical_json(fields).encode("utf-8")).hexdigest()


def dataset_fingerprint(dataset: "Dataset") -> str:
    """Content fingerprint of a data set (name, features, labels, metric).

    The metric joins the fingerprint only when it is not the historical
    Euclidean default, so every pre-existing euclidean artifact keeps its
    key.  A ``metric="precomputed"`` data set is content-addressed through
    its matrix bytes — change one entry of a user-supplied matrix and every
    trial fingerprint changes with it (no stale artifact can be served).
    """
    parts = f"{dataset.name}|{array_fingerprint(dataset.X)}|{array_fingerprint(dataset.y)}"
    metric = getattr(dataset, "metric", "euclidean")
    if metric != "euclidean":
        parts += f"|metric={metric}"
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class StoreStats:
    """Hit/miss/write accounting of one store instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


class ArtifactStore:
    """Content-addressed JSON store with resume semantics.

    Parameters
    ----------
    root:
        Directory holding the artifacts; created on first write.
    refresh:
        When true, every lookup misses (but writes still land), forcing a
        recomputation that overwrites stale artifacts in place.
    on_event:
        Optional observer called as ``on_event(event, kind)`` with
        ``event`` one of ``"hit"``/``"miss"``/``"write"`` after the
        corresponding store operation.  The serve layer streams per-cell
        job progress through this hook.  Called from whatever thread
        performed the operation, and must not raise — an observer
        exception would masquerade as a store failure mid-trial.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        refresh: bool = False,
        on_event: Callable[[str, str], None] | None = None,
    ) -> None:
        self.root = Path(root)
        self.refresh = bool(refresh)
        self.on_event = on_event
        self.stats = StoreStats()
        self._stats_by_kind: dict[str, StoreStats] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: dict[str, Any]) -> Path:
        """Where the artifact for ``key`` lives (whether or not it exists)."""
        digest = key_digest(kind, key)
        return self.root / kind / digest[:2] / f"{digest}.json"

    def get(self, kind: str, key: dict[str, Any]) -> Any | None:
        """Return the stored payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(kind, key)
        if self.refresh or not path.is_file():
            self._count(misses=1, kind=kind)
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # A truncated artifact (e.g. a hard kill mid-write on a
            # filesystem without atomic rename) counts as absent.
            self._count(misses=1, kind=kind)
            return None
        if record.get("schema") != SCHEMA_VERSION or record.get("kind") != kind:
            self._count(misses=1, kind=kind)
            return None
        self._count(hits=1, kind=kind)
        return record["payload"]

    def contains(self, kind: str, key: dict[str, Any]) -> bool:
        """Whether an artifact for ``key`` exists, counted as a hit/miss.

        A cheap existence probe (no read, no JSON parse) for callers that
        already hold the decoded value in a process-local memo but still
        want the per-kind accounting to record the reuse — the structure
        cache's warm path.  ``refresh`` mode reports absence, like
        :meth:`get`.
        """
        if not self.refresh and self.path_for(kind, key).is_file():
            self._count(hits=1, kind=kind)
            return True
        self._count(misses=1, kind=kind)
        return False

    def put(self, kind: str, key: dict[str, Any], payload: Any) -> Path:
        """Persist ``payload`` under ``key`` atomically and return its path."""
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": SCHEMA_VERSION, "kind": kind, "key": key, "payload": payload}
        text = json.dumps(record, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count(writes=1, kind=kind)
        return path

    def delete(self, kind: str, key: dict[str, Any]) -> bool:
        """Remove the artifact for ``key``; returns whether it existed."""
        path = self.path_for(kind, key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def count(self, kind: str | None = None) -> int:
        """Number of stored artifacts (of one kind, or overall)."""
        if not self.root.is_dir():
            return 0
        if kind is not None:
            kinds = [kind]
        else:
            # "reports" holds rendered output and "fleet" holds worker
            # leases/registry files — neither is a content-addressed kind.
            kinds = [
                e.name
                for e in self.root.iterdir()
                if e.is_dir() and e.name not in ("reports", "fleet")
            ]
        total = 0
        for name in kinds:
            total += sum(1 for _ in (self.root / name).glob("*/*.json"))
        return total

    def report_dir(self, name: str) -> Path:
        """Directory for rendered reports of the pipeline run ``name``."""
        path = self.root / "reports" / name
        path.mkdir(parents=True, exist_ok=True)
        return path

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = StoreStats()
            self._stats_by_kind = {}

    def stats_for(self, kind: str) -> StoreStats:
        """Hit/miss/write accounting restricted to one artifact kind.

        Kinds never asked for return all-zero stats.  The structure-cache
        regression tests read this to prove e.g. that two runs differing
        only in oracle spec share their ``"structure"`` artifacts.
        """
        with self._lock:
            stats = self._stats_by_kind.get(kind)
            return (
                StoreStats(hits=stats.hits, misses=stats.misses, writes=stats.writes)
                if stats is not None
                else StoreStats()
            )

    def stats_by_kind(self) -> dict[str, dict[str, int]]:
        """Per-kind hit/miss/write counters as plain nested dicts."""
        with self._lock:
            return {
                kind: stats.as_dict()
                for kind, stats in sorted(self._stats_by_kind.items())
            }

    def describe_stats(self) -> str:
        """Human summary printed by the CLI after every run.

        The headline line aggregates every kind; one indented line per kind
        follows whenever more than one kind saw traffic, so shared
        ``"structure"`` reuse never masks (or inflates) trial-level resume
        accounting.
        """
        stats = self.stats
        lines = [
            f"artifact store: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.writes} written (root: {self.root})"
        ]
        by_kind = {kind: c for kind, c in self.stats_by_kind().items() if kind}
        if len(by_kind) > 1:
            for kind, counters in by_kind.items():
                lines.append(
                    f"  {kind}: {counters['hits']} hits, "
                    f"{counters['misses']} misses, {counters['writes']} written"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _count(
        self, *, hits: int = 0, misses: int = 0, writes: int = 0, kind: str = ""
    ) -> None:
        with self._lock:
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.writes += writes
            per_kind = self._stats_by_kind.setdefault(kind, StoreStats())
            per_kind.hits += hits
            per_kind.misses += misses
            per_kind.writes += writes
        if self.on_event is not None:
            event = "hit" if hits else ("write" if writes else "miss")
            self.on_event(event, kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={str(self.root)!r}, refresh={self.refresh})"
