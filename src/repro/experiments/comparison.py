"""Quality-comparison experiments (Tables 5–16 and Figures 9–12).

For every data set and amount of side information the mean and standard
deviation (over trials) of the external Overall F-Measure is reported for

* **CVCP** — the parameter selected by cross-validated constraint
  classification,
* **Expected** — the average over the whole parameter range (guessing),
* **Silhouette** — the parameter with the best Silhouette coefficient
  (reported for MPCKMeans, as in the paper).

The winner of each row is flagged when its advantage is statistically
significant under a paired t-test at α = 0.05, mirroring the bold entries
of the paper's tables.  :func:`aloi_distribution` returns the raw per-trial
quality values on the ALOI collection, i.e. the data behind the box plots
of Figures 9–12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constraints.oracles import ConstraintOracle
from repro.datasets.registry import get_dataset, get_dataset_collection
from repro.evaluation.significance import paired_t_test
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import AlgorithmName, ScenarioName, TrialResult, run_trials
from repro.utils.rng import RandomStateLike, check_random_state


@dataclass
class ComparisonRow:
    """One data-set row of a comparison table.

    ``cvcp``, ``expected`` and ``silhouette`` hold the per-trial external
    qualities; means/stds and the significance flag are derived properties.
    """

    dataset: str
    cvcp: list[float]
    expected: list[float]
    silhouette: list[float] = field(default_factory=list)
    #: CVCP-selected parameter value per trial (MinPts or k), in trial
    #: order — what the resumable pipeline compares across re-runs to
    #: prove cached artifacts reproduce the original selections.
    cvcp_values: list[int] = field(default_factory=list)

    @property
    def cvcp_mean(self) -> float:
        return float(np.mean(self.cvcp))

    @property
    def cvcp_std(self) -> float:
        return float(np.std(self.cvcp, ddof=1)) if len(self.cvcp) > 1 else 0.0

    @property
    def expected_mean(self) -> float:
        return float(np.mean(self.expected))

    @property
    def expected_std(self) -> float:
        return float(np.std(self.expected, ddof=1)) if len(self.expected) > 1 else 0.0

    @property
    def silhouette_mean(self) -> float:
        return float(np.mean(self.silhouette)) if self.silhouette else float("nan")

    @property
    def silhouette_std(self) -> float:
        return float(np.std(self.silhouette, ddof=1)) if len(self.silhouette) > 1 else 0.0

    @property
    def methods(self) -> dict[str, list[float]]:
        named = {"CVCP": self.cvcp, "Expected": self.expected}
        if self.silhouette:
            named["Silhouette"] = self.silhouette
        return named

    @property
    def winner(self) -> str:
        """Name of the method with the best mean quality."""
        named = self.methods
        return max(named, key=lambda name: float(np.mean(named[name])))

    @property
    def winner_significant(self) -> bool:
        """Whether the winner beats every alternative at α = 0.05 (paired t-test)."""
        named = self.methods
        winner = self.winner
        winning_scores = named[winner]
        if len(winning_scores) < 2:
            return False
        for name, scores in named.items():
            if name == winner:
                continue
            result = paired_t_test(winning_scores, scores)
            if not result.significant() or result.mean_difference <= 0:
                return False
        return True


@dataclass
class ComparisonTable:
    """One of Tables 5–16."""

    algorithm: AlgorithmName
    scenario: ScenarioName
    amount: float
    rows: list[ComparisonRow] = field(default_factory=list)

    def row_for(self, dataset: str) -> ComparisonRow:
        for row in self.rows:
            if row.dataset == dataset:
                return row
        raise KeyError(f"no row for data set {dataset!r}")


def _trial_sets(
    name: str,
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    config: ExperimentConfig,
    rng: np.random.Generator,
    store: ArtifactStore | None = None,
    parallelize: str = "grid",
    oracle: ConstraintOracle | None = None,
) -> list[TrialResult]:
    if name.lower() == "aloi":
        datasets = get_dataset_collection(
            "ALOI", n_datasets=config.n_aloi_datasets,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
    else:
        datasets = [get_dataset(name, random_state=int(rng.integers(0, 2**31 - 1)))]
    trials: list[TrialResult] = []
    for dataset in datasets:
        trials.extend(
            run_trials(
                dataset, algorithm, scenario, amount, config.n_trials,
                config=config, random_state=int(rng.integers(0, 2**31 - 1)),
                store=store, parallelize=parallelize, oracle=oracle,
            )
        )
    return trials


def comparison_table(
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    amount: float,
    *,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    include_silhouette: bool | None = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    store: ArtifactStore | None = None,
    parallelize: str = "grid",
    oracle: ConstraintOracle | None = None,
) -> ComparisonTable:
    """Compute one comparison table.

    Paper mapping (label scenario): Tables 5/6/7 are
    ``("fosc", "labels", 0.05/0.10/0.20)``, Tables 8/9/10 are
    ``("mpck", "labels", ...)``; constraint scenario: Tables 11/12/13 are
    ``("fosc", "constraints", 0.10/0.20/0.50)`` and Tables 14/15/16 are
    ``("mpck", "constraints", ...)``.  ``n_jobs``/``backend`` override the
    execution engine of ``config``; with a ``store``, per-trial artifacts
    are reused and written through (see :mod:`repro.experiments.artifacts`).
    """
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    rng = check_random_state(random_state if random_state is not None else config.seed)
    if include_silhouette is None:
        include_silhouette = algorithm == "mpck"

    table = ComparisonTable(algorithm=algorithm, scenario=scenario, amount=amount)
    for name in config.datasets:
        trials = _trial_sets(
            name, algorithm, scenario, amount, config, rng, store, parallelize, oracle
        )
        table.rows.append(
            ComparisonRow(
                dataset=name,
                cvcp=[trial.cvcp_quality for trial in trials],
                expected=[trial.expected_quality for trial in trials],
                silhouette=(
                    [trial.silhouette_quality for trial in trials]
                    if include_silhouette else []
                ),
                cvcp_values=[trial.cvcp_value for trial in trials],
            )
        )
    return table


def aloi_distribution(
    algorithm: AlgorithmName,
    scenario: ScenarioName,
    *,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    include_silhouette: bool | None = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    store: ArtifactStore | None = None,
    parallelize: str = "grid",
    oracle: ConstraintOracle | None = None,
) -> dict[str, list[float]]:
    """Per-trial quality distributions on the ALOI collection (Figures 9–12).

    Returns a mapping from box label (e.g. ``"CVCP-10"``, ``"Exp-10"``,
    ``"Sil-10"``) to the list of Overall F-Measure values whose distribution
    the corresponding box plot shows.  ``n_jobs``/``backend`` override the
    execution engine of ``config``.
    """
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    rng = check_random_state(random_state if random_state is not None else config.seed)
    if include_silhouette is None:
        include_silhouette = algorithm == "mpck"
    amounts = (
        list(config.label_fractions) if scenario == "labels"
        else list(config.constraint_fractions)
    )

    distribution: dict[str, list[float]] = {}
    for amount in amounts:
        trials = _trial_sets(
            "ALOI", algorithm, scenario, amount, config, rng, store, parallelize, oracle
        )
        tag = int(round(amount * 100))
        distribution[f"CVCP-{tag}"] = [trial.cvcp_quality for trial in trials]
        distribution[f"Exp-{tag}"] = [trial.expected_quality for trial in trials]
        if include_silhouette:
            distribution[f"Sil-{tag}"] = [trial.silhouette_quality for trial in trials]
    return distribution
