"""Experiment harness reproducing the paper's evaluation (Section 4).

* :mod:`repro.experiments.config` — the paper's parameter ranges, side
  information amounts and reference values, plus the scaled-down defaults
  the benchmarks use.
* :mod:`repro.experiments.runner` — single-trial drivers: run one
  algorithm on one data set with one amount of side information, returning
  internal scores, external scores, and the CVCP / Expected / Silhouette
  selections.
* :mod:`repro.experiments.correlation` — Tables 1–4 (correlation of
  internal scores with the Overall F-Measure).
* :mod:`repro.experiments.comparison` — Tables 5–16 and Figures 9–12
  (CVCP vs Expected vs Silhouette performance).
* :mod:`repro.experiments.figures` — Figures 5–8 (score curves over the
  parameter range for a representative ALOI data set).
* :mod:`repro.experiments.robustness` — noise-robustness sweeps: CVCP
  selection accuracy and quality as the oracle flip rate grows.
* :mod:`repro.experiments.ablation` — extra design-choice ablations.
* :mod:`repro.experiments.reporting` — plain-text table rendering and
  report emission through the artifact store.
* :mod:`repro.experiments.artifacts` — content-addressed, resumable
  artifact store persisting per-trial results.
* :mod:`repro.experiments.pipeline` — declarative TOML/JSON pipeline specs
  and the driver behind the ``repro`` CLI.
* :mod:`repro.experiments.fleet` — work-stealing fleet orchestration:
  lease files over the artifact store, unit enumeration, worker registry
  and the ``repro run --worker`` / ``repro status`` machinery.
* :mod:`repro.experiments.dashboard` — the static-HTML quality dashboard
  behind ``repro dashboard``.
"""

from repro.experiments.artifacts import (
    ArtifactStore,
    StoreStats,
    dataset_fingerprint,
    trial_config_fingerprint,
)

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_CONFIG,
    QUICK_CONFIG,
    default_config,
    k_range_for_dataset,
    MINPTS_RANGE,
    LABEL_FRACTIONS,
    CONSTRAINT_FRACTIONS,
)
from repro.experiments.pipeline import (
    ConfigError,
    PipelineResult,
    PipelineSpec,
    load_pipeline_spec,
    pipeline_spec_from_mapping,
    run_pipeline,
    validate_pipeline_file,
)
from repro.experiments.runner import (
    TrialResult,
    run_trial,
    run_trials,
    make_side_information,
    algorithm_factory,
    trial_artifact_key,
)
from repro.experiments.correlation import correlation_table, CorrelationTable
from repro.experiments.comparison import (
    comparison_table,
    ComparisonRow,
    ComparisonTable,
    aloi_distribution,
)
from repro.experiments.figures import parameter_curves, ParameterCurves
from repro.experiments.robustness import (
    NoiseRobustnessTable,
    RobustnessRow,
    noise_robustness_table,
)
from repro.experiments.ablation import (
    closure_leakage_ablation,
    fold_count_ablation,
    scorer_ablation,
)
from repro.experiments.dashboard import render_dashboard, write_dashboard
from repro.experiments.fleet import (
    FleetSettings,
    FleetStats,
    FleetStatus,
    LeaseManager,
    TrialUnit,
    WorkerRunReport,
    enumerate_units,
    fleet_status,
    format_fleet_status,
    run_worker,
    work_steal,
)
from repro.experiments.reporting import (
    format_table,
    format_correlation_table,
    format_comparison_table,
    format_boxplot_summary,
    format_robustness_table,
    render_report,
    write_report,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "dataset_fingerprint",
    "trial_config_fingerprint",
    "ConfigError",
    "PipelineResult",
    "PipelineSpec",
    "load_pipeline_spec",
    "pipeline_spec_from_mapping",
    "run_pipeline",
    "validate_pipeline_file",
    "trial_artifact_key",
    "render_report",
    "write_report",
    "ExperimentConfig",
    "PAPER_CONFIG",
    "QUICK_CONFIG",
    "default_config",
    "k_range_for_dataset",
    "MINPTS_RANGE",
    "LABEL_FRACTIONS",
    "CONSTRAINT_FRACTIONS",
    "TrialResult",
    "run_trial",
    "run_trials",
    "make_side_information",
    "algorithm_factory",
    "correlation_table",
    "CorrelationTable",
    "comparison_table",
    "ComparisonRow",
    "ComparisonTable",
    "aloi_distribution",
    "parameter_curves",
    "ParameterCurves",
    "NoiseRobustnessTable",
    "RobustnessRow",
    "noise_robustness_table",
    "closure_leakage_ablation",
    "fold_count_ablation",
    "scorer_ablation",
    "format_table",
    "format_correlation_table",
    "format_comparison_table",
    "format_boxplot_summary",
    "format_robustness_table",
    "FleetSettings",
    "FleetStats",
    "FleetStatus",
    "LeaseManager",
    "TrialUnit",
    "WorkerRunReport",
    "enumerate_units",
    "fleet_status",
    "format_fleet_status",
    "run_worker",
    "work_steal",
    "render_dashboard",
    "write_dashboard",
]
