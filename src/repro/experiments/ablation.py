"""Design-choice ablations (beyond the paper's reported experiments).

The paper motivates three design decisions that are easy to get wrong when
re-implementing CVCP; each ablation quantifies the effect of reversing one
of them:

* :func:`closure_leakage_ablation` — split *constraints* naively instead of
  splitting *objects* and re-closing per side (Section 3.1 / Figure 2).  The
  naive split leaks derived constraints into the test fold, so its internal
  scores are inflated relative to the leak-free protocol.
* :func:`fold_count_ablation` — how the number of folds affects the quality
  of the parameter CVCP selects.
* :func:`scorer_ablation` — class-averaged F-measure versus plain constraint
  accuracy as the internal score (Section 3.2 argues for the F-measure
  because the two constraint classes are usually very imbalanced).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.closure import transitive_closure
from repro.constraints.constraint import ConstraintSet
from repro.core.cvcp import CVCP
from repro.core.folds import CVCPFold
from repro.core.scoring import score_partition
from repro.datasets.base import Dataset
from repro.evaluation.external import overall_f_measure
from repro.experiments.artifacts import ArtifactStore, dataset_fingerprint, trial_config_fingerprint
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import (
    AlgorithmName,
    algorithm_factory,
    make_side_information,
    parameter_values_for,
)
from repro.utils.rng import RandomStateLike, check_random_state


@dataclass
class AblationResult:
    """A named collection of comparable measurements."""

    name: str
    measurements: dict[str, float]

    def as_rows(self) -> list[tuple[str, float]]:
        return sorted(self.measurements.items())


def _keyable_seed(random_state: RandomStateLike, config: ExperimentConfig) -> int | None:
    """Integer seed usable as an artifact key, or ``None`` for generators.

    A generator's state cannot be serialised into a stable key, so ablations
    handed one always recompute; the common paths (no seed, which falls back
    to ``config.seed``, or an explicit integer) are cacheable.
    """
    if random_state is None:
        return int(config.seed)
    if isinstance(random_state, (int, np.integer)):
        return int(random_state)
    return None


def _ablation_key(
    name: str,
    dataset: Dataset,
    config: ExperimentConfig,
    algorithm: AlgorithmName,
    amount: float,
    seed: int,
    extra: dict,
) -> dict:
    key = {
        "ablation": name,
        "config": trial_config_fingerprint(config),
        "dataset": dataset_fingerprint(dataset),
        "algorithm": str(algorithm),
        "amount": float(amount),
        "seed": int(seed),
    }
    key.update(extra)
    return key


def _cached_ablation(store: ArtifactStore | None, key: dict | None, compute) -> AblationResult:
    """Serve an ablation from the store when possible, else compute and persist."""
    if store is not None and key is not None:
        cached = store.get("ablation", key)
        if cached is not None:
            return AblationResult(name=cached["name"], measurements=dict(cached["measurements"]))
    result = compute()
    if store is not None and key is not None:
        store.put("ablation", key, {"name": result.name, "measurements": result.measurements})
    return result


def _naive_constraint_folds(
    constraints: ConstraintSet, n_folds: int, rng: np.random.Generator
) -> list[CVCPFold]:
    """Fold construction that splits constraints instead of objects.

    This is the flawed protocol Section 3.1 warns about: the transitive
    closure of the training constraints can contain constraints that also
    sit in the test fold, so test information is implicitly available during
    training.
    """
    all_constraints = list(constraints)
    rng.shuffle(all_constraints)
    folds: list[list] = [[] for _ in range(n_folds)]
    for position, constraint in enumerate(all_constraints):
        folds[position % n_folds].append(constraint)

    results = []
    for fold_index in range(n_folds):
        test = ConstraintSet(folds[fold_index])
        training = ConstraintSet(
            c for other in range(n_folds) if other != fold_index for c in folds[other]
        )
        results.append(
            CVCPFold(
                index=fold_index,
                training_constraints=transitive_closure(training, strict=False),
                test_constraints=test,
                training_objects=training.involved_objects(),
                test_objects=test.involved_objects(),
            )
        )
    return results


def closure_leakage_ablation(
    dataset: Dataset,
    *,
    algorithm: AlgorithmName = "fosc",
    amount: float = 0.20,
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    store: ArtifactStore | None = None,
) -> AblationResult:
    """Internal-score inflation of the naive constraint split vs the proper one.

    Returns the mean internal score of the best parameter under the proper
    object-split protocol and under the naive constraint-split protocol.
    The naive protocol's score is expected to be higher (optimistically
    biased) because derived test constraints are implicitly available at
    training time.
    """
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    seed = _keyable_seed(random_state, config)
    key = None
    if seed is not None:
        key = _ablation_key("closure-leakage", dataset, config, algorithm, amount, seed, {})

    def compute() -> AblationResult:
        rng = check_random_state(random_state if random_state is not None else config.seed)

        side = make_side_information(dataset, "constraints", amount, random_state=rng)
        estimator = algorithm_factory(algorithm, config, random_state=rng)
        values = parameter_values_for(algorithm, dataset, config)

        proper = CVCP(estimator, values, n_folds=config.n_folds, refit=False, random_state=rng,
                      execution=config.execution_spec())
        proper.fit(dataset.X, constraints=side.constraints)

        naive_folds = _naive_constraint_folds(
            transitive_closure(side.constraints, strict=False), proper.cv_results_.n_folds, rng
        )
        naive_best = -np.inf
        for value in values:
            fold_scores = []
            for fold in naive_folds:
                model = estimator.clone(**{estimator.tuned_parameter: value})
                if "random_state" in model.get_params():
                    model.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
                model.fit(dataset.X, constraints=fold.training_constraints)
                fold_scores.append(
                    score_partition(model.labels_, fold.test_constraints, scoring="average_f")
                )
            naive_best = max(naive_best, float(np.mean(fold_scores)))

        return AblationResult(
            name="closure-leakage",
            measurements={
                "proper_best_internal_score": float(proper.cv_results_.best_score),
                "naive_best_internal_score": float(naive_best),
                "inflation": float(naive_best - proper.cv_results_.best_score),
            },
        )

    return _cached_ablation(store, key, compute)


def fold_count_ablation(
    dataset: Dataset,
    *,
    algorithm: AlgorithmName = "fosc",
    amount: float = 0.10,
    fold_counts: tuple[int, ...] = (2, 3, 5, 10),
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    store: ArtifactStore | None = None,
) -> AblationResult:
    """External quality of the CVCP-selected parameter for several fold counts."""
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    seed = _keyable_seed(random_state, config)
    key = None
    if seed is not None:
        extra = {"fold_counts": [int(count) for count in fold_counts]}
        key = _ablation_key("fold-count", dataset, config, algorithm, amount, seed, extra)

    def compute() -> AblationResult:
        rng = check_random_state(random_state if random_state is not None else config.seed)

        side = make_side_information(dataset, "labels", amount, random_state=rng)
        estimator = algorithm_factory(algorithm, config, random_state=rng)
        values = parameter_values_for(algorithm, dataset, config)
        exclude = side.involved_objects

        measurements: dict[str, float] = {}
        for n_folds in fold_counts:
            search = CVCP(estimator, values, n_folds=n_folds, refit=True,
                          random_state=int(rng.integers(0, 2**31 - 1)),
                          execution=config.execution_spec())
            search.fit(dataset.X, labeled_objects=side.labeled_objects)
            measurements[f"n_folds={n_folds}"] = overall_f_measure(
                dataset.y, search.labels_, exclude=exclude
            )
        return AblationResult(name="fold-count", measurements=measurements)

    return _cached_ablation(store, key, compute)


def scorer_ablation(
    dataset: Dataset,
    *,
    algorithm: AlgorithmName = "fosc",
    amount: float = 0.10,
    scorers: tuple[str, ...] = ("average_f", "accuracy", "must_link_f"),
    config: ExperimentConfig | None = None,
    random_state: RandomStateLike = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    store: ArtifactStore | None = None,
) -> AblationResult:
    """External quality of the parameter chosen under different internal scorers."""
    config = (config or default_config()).with_execution(backend=backend, n_jobs=n_jobs)
    seed = _keyable_seed(random_state, config)
    key = None
    if seed is not None:
        extra = {"scorers": [str(scoring) for scoring in scorers]}
        key = _ablation_key("internal-scorer", dataset, config, algorithm, amount, seed, extra)

    def compute() -> AblationResult:
        rng = check_random_state(random_state if random_state is not None else config.seed)

        side = make_side_information(dataset, "labels", amount, random_state=rng)
        estimator = algorithm_factory(algorithm, config, random_state=rng)
        values = parameter_values_for(algorithm, dataset, config)
        exclude = side.involved_objects

        measurements: dict[str, float] = {}
        for scoring in scorers:
            search = CVCP(estimator, values, n_folds=config.n_folds, scoring=scoring,
                          refit=True, random_state=int(rng.integers(0, 2**31 - 1)),
                          execution=config.execution_spec())
            search.fit(dataset.X, labeled_objects=side.labeled_objects)
            measurements[scoring] = overall_f_measure(dataset.y, search.labels_, exclude=exclude)
        return AblationResult(name="internal-scorer", measurements=measurements)

    return _cached_ablation(store, key, compute)
