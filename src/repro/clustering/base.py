"""Common interface for clustering algorithms.

All clusterers in this library follow a small, sklearn-like protocol:

* construction takes hyper-parameters only;
* :meth:`BaseClusterer.fit` takes the data matrix and (for semi-supervised
  algorithms) a :class:`~repro.constraints.constraint.ConstraintSet` and/or
  partial labels, and stores the flat partition in ``labels_``;
* :meth:`BaseClusterer.fit_predict` returns the partition directly;
* :meth:`BaseClusterer.get_params` / :meth:`BaseClusterer.set_params` /
  :meth:`BaseClusterer.clone` allow the CVCP driver to re-instantiate an
  estimator with a different parameter value for each grid point.

Noise objects (only produced by the density-based algorithms) are labelled
``-1``; cluster labels are integers ``0..n_clusters-1``.
"""

from __future__ import annotations

import copy
import inspect
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.constraints.constraint import ConstraintSet


@dataclass
class ClusteringResult:
    """A flat clustering together with light metadata.

    Attributes
    ----------
    labels:
        Integer cluster labels per object, ``-1`` meaning noise.
    n_clusters:
        Number of (non-noise) clusters.
    params:
        The hyper-parameters that produced the result.
    meta:
        Free-form algorithm-specific metadata (iterations, objective, ...).
    """

    labels: np.ndarray
    n_clusters: int
    params: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_labels(cls, labels: np.ndarray, params: dict[str, Any] | None = None,
                    meta: dict[str, Any] | None = None) -> "ClusteringResult":
        labels = np.asarray(labels, dtype=np.int64)
        n_clusters = int(np.unique(labels[labels >= 0]).size)
        return cls(labels=labels, n_clusters=n_clusters,
                   params=dict(params or {}), meta=dict(meta or {}))

    @property
    def noise_mask(self) -> np.ndarray:
        """Boolean mask of objects labelled as noise."""
        return self.labels < 0

    @property
    def n_noise(self) -> int:
        return int(np.count_nonzero(self.labels < 0))


class BaseClusterer:
    """Base class providing parameter handling and the fit/predict protocol."""

    #: Name of the hyper-parameter that CVCP sweeps for this algorithm
    #: (e.g. ``"n_clusters"`` for k-means-style algorithms, ``"min_pts"``
    #: for density-based ones).  Subclasses override this.
    tuned_parameter: str = ""

    # -- parameter handling -------------------------------------------------
    @classmethod
    def _param_names(cls) -> list[str]:
        # Memoised per class (signature introspection is pure overhead on
        # the CVCP grid's hot clone/get_params path); ``cls.__dict__`` so a
        # subclass never inherits its parent's cached names.
        cached = cls.__dict__.get("_param_names_cached")
        if cached is None:
            signature = inspect.signature(cls.__init__)
            cached = [
                name
                for name, parameter in signature.parameters.items()
                if name != "self" and parameter.kind != parameter.VAR_KEYWORD
            ]
            cls._param_names_cached = cached
        return cached

    def get_params(self) -> dict[str, Any]:
        """Return the constructor parameters of this estimator."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseClusterer":
        """Set constructor parameters in place and return ``self``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"unknown parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def clone(self, **overrides: Any) -> "BaseClusterer":
        """Fresh, unfitted copy of this estimator with optional overrides."""
        params = self.get_params()
        params.update(overrides)
        return type(self)(**copy.deepcopy(params))

    # -- fitting protocol ---------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "BaseClusterer":
        """Cluster ``X``; semi-supervised algorithms honour the side information.

        Subclasses must implement :meth:`_fit` and set ``labels_``.
        """
        raise NotImplementedError

    def fit_predict(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> np.ndarray:
        """Convenience wrapper: fit and return ``labels_``."""
        self.fit(X, constraints=constraints, seed_labels=seed_labels)
        return self.labels_

    # -- fitted attributes --------------------------------------------------
    labels_: np.ndarray

    @property
    def result_(self) -> ClusteringResult:
        """The last fit as a :class:`ClusteringResult`."""
        if not hasattr(self, "labels_"):
            raise AttributeError(f"{type(self).__name__} has not been fitted yet")
        return ClusteringResult.from_labels(self.labels_, params=self.get_params())

    @property
    def n_clusters_(self) -> int:
        """Number of non-noise clusters found by the last fit."""
        if not hasattr(self, "labels_"):
            raise AttributeError(f"{type(self).__name__} has not been fitted yet")
        labels = np.asarray(self.labels_)
        return int(np.unique(labels[labels >= 0]).size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def relabel_compact(labels: np.ndarray) -> np.ndarray:
    """Re-map cluster labels to the compact range ``0..n_clusters-1``.

    Noise (``-1``) is preserved.  The mapping is order-of-first-appearance,
    which keeps results deterministic.
    """
    labels = np.asarray(labels, dtype=np.int64)
    compact = np.full_like(labels, -1)
    mapping: dict[int, int] = {}
    for position, label in enumerate(labels):
        if label < 0:
            continue
        if label not in mapping:
            mapping[int(label)] = len(mapping)
        compact[position] = mapping[int(label)]
    return compact
