"""OPTICS: Ordering Points To Identify the Clustering Structure.

Ankerst, Breunig, Kriegel & Sander, SIGMOD 1999.  OPTICS produces a linear
ordering of the data together with a *reachability distance* per object; the
valleys of the reachability plot correspond to density-based clusters at all
density levels simultaneously.

In this library OPTICS serves as the density substrate of
:class:`~repro.clustering.fosc.FOSCOpticsDend`: the reachability information
is equivalent (up to the usual MinPts smoothing) to the density hierarchy
built in :mod:`repro.clustering.hierarchy`, and the dendrogram extracted
from it is what FOSC operates on.  A classic flat DBSCAN-style extraction at
a fixed ``eps`` is also provided.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.distances import k_nearest_distances
from repro.clustering.kernels import optics_ordering
from repro.utils.cache import cached_pairwise_distances
from repro.constraints.constraint import ConstraintSet
from repro.utils.rng import RandomStateLike
from repro.utils.validation import check_array_2d, check_positive_int


class OPTICS(BaseClusterer):
    """OPTICS ordering and reachability computation.

    Parameters
    ----------
    min_pts:
        Minimum number of points in the ε-neighbourhood of a core point
        (the object itself counts, matching the convention of the original
        paper and of the CVCP evaluation, where MinPts ranges over
        ``[3, 6, ..., 24]``).
    eps:
        Maximum neighbourhood radius; ``inf`` (default) means the full
        hierarchy is computed, which is what FOSC-OPTICSDend needs.
    metric:
        Distance metric passed to
        :func:`~repro.clustering.distances.pairwise_distances`.
    kernels:
        Kernel implementation for the reachability sweep —
        ``"vectorized"`` (masked array operations, the default) or
        ``"reference"`` (the heap-based loop).  ``None`` consults the
        ``REPRO_KERNELS`` environment variable.  Both produce
        bit-identical orderings and reachabilities; see
        :mod:`repro.clustering.kernels`.
    distance_backend:
        Storage tier for the pairwise-distance matrix — ``"dense"``
        (default), ``"blockwise"``, ``"memmap"`` or ``"neighbors"``;
        ``None`` consults ``REPRO_DISTANCE_BACKEND``.  The exact tiers are
        bit-identical; ``"neighbors"`` runs the sweep over a sparse
        epsilon-bounded k-NN graph instead of the full matrix
        (approximate-by-contract; see :mod:`repro.core.neighbor_graph`).
    epsilon / k_neighbors:
        Neighbour-graph radius and out-degree for the ``"neighbors"``
        tier (``None`` consults ``REPRO_NEIGHBOR_EPSILON`` /
        ``REPRO_NEIGHBOR_K``); ignored by the exact tiers.  ``epsilon``
        bounds the *graph*, while ``eps`` bounds the OPTICS scan — the
        effective radius is their minimum.

    Attributes
    ----------
    ordering_:
        Permutation of ``0..n-1`` in OPTICS visit order.
    reachability_:
        Reachability distance per object (indexed by object, not by
        position in the ordering); the first object of each connected
        component has ``inf``.
    core_distances_:
        Distance to the ``min_pts``-th nearest neighbour per object.
    labels_:
        Flat labels from :meth:`extract_dbscan` when ``eps`` is finite,
        otherwise a single cluster (OPTICS itself is not a flat clusterer).
    """

    tuned_parameter = "min_pts"

    def __init__(
        self,
        min_pts: int = 5,
        *,
        eps: float = np.inf,
        metric: str = "euclidean",
        kernels: str | None = None,
        distance_backend: str | None = None,
        epsilon: float | None = None,
        k_neighbors: int | None = None,
        random_state: RandomStateLike = None,
    ) -> None:
        self.min_pts = min_pts
        self.eps = eps
        self.metric = metric
        self.kernels = kernels
        self.distance_backend = distance_backend
        self.epsilon = epsilon
        self.k_neighbors = k_neighbors
        self.random_state = random_state

    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "OPTICS":
        """Compute the OPTICS ordering of ``X`` (side information is ignored)."""
        X = check_array_2d(X)
        min_pts = check_positive_int(self.min_pts, name="min_pts")
        if min_pts > X.shape[0]:
            raise ValueError(
                f"min_pts={min_pts} exceeds the number of samples {X.shape[0]}"
            )

        from repro.core.distance_backend import get_distance_backend

        backend = get_distance_backend(self.distance_backend)
        if backend.name == "neighbors":
            # Sparse tier: the sweep runs over the epsilon-bounded k-NN
            # graph; no full matrix exists.  Both kernel modes share this
            # one implementation, so parity across modes is structural.
            from repro.core.neighbor_graph import (
                cached_neighbor_graph,
                sparse_optics_ordering,
            )

            graph = cached_neighbor_graph(
                X, metric=self.metric, epsilon=self.epsilon, k_neighbors=self.k_neighbors
            )
            self.core_distances_ = graph.core_distances(min_pts)
            self.ordering_, self.reachability_ = sparse_optics_ordering(
                graph.graph, self.core_distances_, self.eps
            )
            if np.isfinite(self.eps):
                self.labels_ = self.extract_dbscan(self.eps)
            else:
                self.labels_ = np.zeros(X.shape[0], dtype=np.int64)
            self._distances = None
            return self
        distances = cached_pairwise_distances(
            X, metric=self.metric, distance_backend=backend.name
        )
        # Streaming tiers compute core distances block-at-a-time, avoiding
        # the full-matrix copy np.partition makes; results are bit-identical.
        self.core_distances_ = k_nearest_distances(
            distances, min_pts, block_rows=backend.block_rows(X.shape[0])
        )
        # The sweep is one of the four hot kernels; both implementations
        # are bit-identical (see repro.clustering.kernels).  It reads the
        # matrix one row at a time, so memmap-backed storage streams too.
        self.ordering_, self.reachability_ = optics_ordering(
            distances, self.core_distances_, self.eps, kernels=self.kernels
        )
        backend.release(distances)
        if np.isfinite(self.eps):
            self.labels_ = self.extract_dbscan(self.eps)
        else:
            self.labels_ = np.zeros(X.shape[0], dtype=np.int64)
        self._distances = distances
        return self

    # ------------------------------------------------------------------
    def reachability_plot(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ordering, reachability in ordering order)`` for plotting."""
        if not hasattr(self, "ordering_"):
            raise AttributeError("OPTICS has not been fitted yet")
        return self.ordering_, self.reachability_[self.ordering_]

    def extract_dbscan(self, eps: float) -> np.ndarray:
        """Extract a flat DBSCAN-like clustering at radius ``eps``.

        Objects whose reachability exceeds ``eps`` start a new cluster if
        their own core distance is within ``eps`` and are labelled noise
        (``-1``) otherwise.
        """
        if not hasattr(self, "ordering_"):
            raise AttributeError("OPTICS has not been fitted yet")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        labels = np.full(self.reachability_.shape[0], -1, dtype=np.int64)
        current_cluster = -1
        for index in self.ordering_:
            if self.reachability_[index] > eps:
                if self.core_distances_[index] <= eps:
                    current_cluster += 1
                    labels[index] = current_cluster
                else:
                    labels[index] = -1
            else:
                if current_cluster == -1:
                    current_cluster = 0
                labels[index] = current_cluster
        return labels
