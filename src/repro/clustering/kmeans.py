"""Plain k-means (Lloyd's algorithm) with k-means++ seeding.

This is the unsupervised substrate that both constrained variants
(:class:`~repro.clustering.copkmeans.COPKMeans` and
:class:`~repro.clustering.mpckmeans.MPCKMeans`) build on.  It is also used
directly by the Silhouette baseline of Section 4.3 through
:class:`~repro.clustering.mpckmeans.MPCKMeans` with an empty constraint set.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.distances import euclidean_distances
from repro.constraints.constraint import ConstraintSet
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_array_2d, check_positive_int


def kmeans_plus_plus_init(
    X: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007).

    The first center is drawn uniformly; every subsequent center is drawn
    with probability proportional to the squared distance to the closest
    center chosen so far.

    Returns
    -------
    ndarray
        ``(n_clusters, d)`` array of initial centers.
    """
    X = np.asarray(X, dtype=np.float64)
    n_samples = X.shape[0]
    if n_clusters > n_samples:
        raise ValueError(f"n_clusters={n_clusters} exceeds the number of samples {n_samples}")

    centers = np.empty((n_clusters, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(n_samples))
    centers[0] = X[first]
    closest_sq = euclidean_distances(X, centers[:1], squared=True).ravel()

    for position in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with chosen centers; fall back to
            # uniform sampling to keep the seeding well defined.
            index = int(rng.integers(n_samples))
        else:
            probabilities = closest_sq / total
            index = int(rng.choice(n_samples, p=probabilities))
        centers[position] = X[index]
        new_sq = euclidean_distances(X, centers[position:position + 1], squared=True).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


def _assign(X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Assign every point to the nearest center; return (labels, sq distances)."""
    distances = euclidean_distances(X, centers, squared=True)
    labels = np.argmin(distances, axis=1)
    return labels, distances[np.arange(X.shape[0]), labels]


def _update_centers(
    X: np.ndarray,
    labels: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Recompute centroids; re-seed empty clusters from the farthest points."""
    centers = np.empty((n_clusters, X.shape[1]), dtype=np.float64)
    counts = np.bincount(labels, minlength=n_clusters)
    for h in range(n_clusters):
        if counts[h] > 0:
            centers[h] = X[labels == h].mean(axis=0)
    empty = np.flatnonzero(counts == 0)
    if empty.size:
        # Re-seed each empty cluster at the point farthest from its current
        # center; this is the standard remedy and keeps k clusters alive.
        _, closest_sq = _assign(X, centers[counts > 0])
        order = np.argsort(closest_sq)[::-1]
        for rank, h in enumerate(empty):
            centers[h] = X[order[rank % order.size]]
    return centers


class KMeans(BaseClusterer):
    """Lloyd's k-means with k-means++ seeding and multiple restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of random restarts; the run with the lowest inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative tolerance on the decrease of inertia used to declare
        convergence.
    random_state:
        Seed or generator.

    Attributes
    ----------
    labels_:
        Cluster labels of the training data.
    cluster_centers_:
        ``(k, d)`` centroids.
    inertia_:
        Sum of squared distances to the assigned centroid.
    n_iter_:
        Iterations used by the best restart.
    """

    tuned_parameter = "n_clusters"

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        n_init: int = 5,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "KMeans":
        """Cluster ``X``.  ``constraints`` and ``seed_labels`` are ignored."""
        X = check_array_2d(X)
        n_clusters = check_positive_int(self.n_clusters, name="n_clusters")
        check_positive_int(self.n_init, name="n_init")
        check_positive_int(self.max_iter, name="max_iter")
        if n_clusters > X.shape[0]:
            raise ValueError(
                f"n_clusters={n_clusters} exceeds the number of samples {X.shape[0]}"
            )
        rng = check_random_state(self.random_state)

        best_inertia = np.inf
        best_labels: np.ndarray | None = None
        best_centers: np.ndarray | None = None
        best_iterations = 0

        for _ in range(self.n_init):
            labels, centers, inertia, iterations = self._single_run(X, n_clusters, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best_labels = labels
                best_centers = centers
                best_iterations = iterations

        assert best_labels is not None and best_centers is not None
        self.labels_ = best_labels
        self.cluster_centers_ = best_centers
        self.inertia_ = float(best_inertia)
        self.n_iter_ = best_iterations
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest learned centroid."""
        if not hasattr(self, "cluster_centers_"):
            raise AttributeError("KMeans has not been fitted yet")
        X = check_array_2d(X)
        labels, _ = _assign(X, self.cluster_centers_)
        return labels

    # ------------------------------------------------------------------
    def _single_run(
        self,
        X: np.ndarray,
        n_clusters: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        centers = kmeans_plus_plus_init(X, n_clusters, rng)
        previous_inertia = np.inf
        labels = np.zeros(X.shape[0], dtype=np.int64)
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            labels, closest_sq = _assign(X, centers)
            inertia = float(closest_sq.sum())
            centers = _update_centers(X, labels, n_clusters, rng)
            if previous_inertia - inertia <= self.tol * max(previous_inertia, 1e-12):
                previous_inertia = inertia
                break
            previous_inertia = inertia
        labels, closest_sq = _assign(X, centers)
        return labels.astype(np.int64), centers, float(closest_sq.sum()), iteration
