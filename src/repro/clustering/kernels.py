"""Vectorised clustering kernels — the four hot loops of the CVCP stack.

CVCP's cost is dominated by re-clustering every parameter value × fold, so
the per-fit kernels decide how far the paper's scalability argument
(Pourrajabi et al., EDBT 2014) carries.  This module provides two
implementations of each hot kernel:

* a **reference** implementation — the interpreter-bound formulation the
  library shipped with (heaps, dict-based union–find, per-point Python
  loops), kept as the semantic ground truth and as the *before* side of the
  kernel micro-benchmarks;
* a **vectorized** implementation — masked NumPy array operations over the
  memoised distance matrix, array-based union–find, flat parent/lambda
  arrays, and CSR-style neighbour indexing.

The four kernels are:

1. :func:`optics_ordering` — the OPTICS core-distance + reachability
   update sweep (used by :class:`~repro.clustering.optics.OPTICS`);
2. :func:`minimum_spanning_tree` / :func:`single_linkage_tree` — dense
   Prim MST over the mutual-reachability matrix and its conversion into
   scipy-style merge records (used by
   :class:`~repro.clustering.hierarchy.DensityHierarchy`);
3. :func:`condense_tree` + :func:`fosc_extract` — the FOSC condensed-tree
   construction, stability computation and optimal-selection dynamic
   program over flat parent/lambda arrays (used by
   :class:`~repro.clustering.fosc.FOSCOpticsDend`);
4. :func:`mpck_assign` — the MPCK-Means greedy ICM assignment step with
   constraint-violation terms computed through CSR neighbour index arrays
   (used by :class:`~repro.clustering.mpckmeans.MPCKMeans`).

Bit-identical contract
----------------------
Both implementations of every kernel produce **bit-identical** results —
identical orderings, reachabilities, merge records, condensed trees,
selections and labels — not merely approximately equal ones.  This is what
lets the vectorized kernels default on without perturbing any recorded
experiment: argmin tie-breaking is preserved (first occurrence = smallest
index, matching the reference heaps and loops), floating-point reductions
use the same operation sequences on both paths (elementwise products
followed by last-axis sums; ordered :func:`numpy.ufunc.at` accumulation
where the reference accumulates sequentially), and the property-based
parity suite in ``tests/test_clustering_kernels.py`` drives both paths
with adversarial inputs (duplicate points, tied distances, singleton
clusters, empty constraint sets).

Distance-matrix storage
-----------------------
Every kernel that consumes an ``(n, n)`` distance matrix reads it **one row
(or one row block) at a time** and never materialises a full-matrix
temporary: the OPTICS sweep and the Prim MST index single rows per
iteration, and the upstream passes (core distances, mutual reachability)
stream in row blocks under the non-dense distance backends.  The matrices
handed in may therefore be plain in-RAM arrays *or* read-only
``np.memmap`` views from the ``memmap`` distance backend (see
:mod:`repro.core.distance_backend`) — NumPy indexing faults the needed
pages in on demand and the OS can evict them under pressure, which is what
lets the kernels run at ``n`` well past the dense-matrix RAM wall with
bit-identical results.

Kernel selection
----------------
Every dispatch function takes ``kernels="vectorized" | "reference"``
(``None`` consults the ``REPRO_KERNELS`` environment variable and falls
back to ``"vectorized"``).  The clustering estimators expose the same
``kernels=`` constructor parameter, which travels through
:meth:`~repro.clustering.base.BaseClusterer.clone` and pickling, so CVCP
grids and the parallel execution backends compose with either kernel set —
see ``docs/performance.md`` for the tuning guide and
``repro bench kernels`` for the measured speedups.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass

import numpy as np

from repro.utils.disjoint_set import DisjointSet

#: Recognised kernel implementations, in preference order.
KERNEL_MODES = ("vectorized", "reference")

#: Implementation used when neither the ``kernels=`` argument nor the
#: environment variable selects one.
DEFAULT_KERNEL_MODE = "vectorized"

#: Environment variable consulted when ``kernels=None`` (handy for A/B
#: timing whole pipelines without touching code; worker processes inherit
#: it, so the process backend composes with it).
KERNELS_ENV_VAR = "REPRO_KERNELS"


def resolve_kernel_mode(mode: str | None = None) -> str:
    """Resolve a kernel mode from the argument, the environment, or the default.

    Parameters
    ----------
    mode:
        ``"vectorized"``, ``"reference"``, or ``None``.  ``None`` reads the
        ``REPRO_KERNELS`` environment variable and falls back to
        :data:`DEFAULT_KERNEL_MODE` when it is unset or empty.

    Returns
    -------
    str
        One of :data:`KERNEL_MODES`.

    Raises
    ------
    ValueError
        If the argument or the environment variable names an unknown mode.
    """
    origin = "kernels"
    if mode is None:
        mode = os.environ.get(KERNELS_ENV_VAR, "").strip() or DEFAULT_KERNEL_MODE
        origin = KERNELS_ENV_VAR
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"{origin} must be one of {KERNEL_MODES}, got {mode!r}"
        )
    return mode


# ======================================================================
# Kernel 1: OPTICS ordering + reachability
# ======================================================================

def optics_ordering(
    distances: np.ndarray,
    core_distances: np.ndarray,
    eps: float = np.inf,
    *,
    kernels: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """OPTICS visit ordering and reachability distances.

    Parameters
    ----------
    distances:
        ``(n, n)`` pairwise distance matrix.
    core_distances:
        ``(n,)`` core distance per object (``MinPts``-th nearest neighbour).
    eps:
        Maximum neighbourhood radius; ``inf`` computes the full hierarchy.
    kernels:
        Kernel implementation; see :func:`resolve_kernel_mode`.

    Returns
    -------
    tuple
        ``(ordering, reachability)`` — the visit permutation and the
        reachability distance per object (indexed by object).  The first
        object of every connected component keeps ``inf``.
    """
    if resolve_kernel_mode(kernels) == "reference":
        return optics_ordering_reference(distances, core_distances, eps)
    return optics_ordering_vectorized(distances, core_distances, eps)


def optics_ordering_reference(
    distances: np.ndarray, core_distances: np.ndarray, eps: float = np.inf
) -> tuple[np.ndarray, np.ndarray]:
    """Heap-based OPTICS sweep (lazy-deletion priority queue, per-neighbour pushes)."""
    n_samples = distances.shape[0]
    core = np.asarray(core_distances, dtype=np.float64)
    reachability = np.full(n_samples, np.inf)
    processed = np.zeros(n_samples, dtype=bool)
    ordering: list[int] = []

    for start in range(n_samples):
        if processed[start]:
            continue
        # Expand one connected component with a priority queue keyed by
        # the current reachability distance (ties broken by index for
        # determinism).
        heap: list[tuple[float, int]] = [(np.inf, start)]
        while heap:
            current_reach, index = heapq.heappop(heap)
            if processed[index]:
                continue
            processed[index] = True
            ordering.append(index)
            if core[index] > eps:
                continue
            neighbor_distances = distances[index]
            within = np.flatnonzero(~processed & (neighbor_distances <= eps))
            if within.size == 0:
                continue
            new_reach = np.maximum(core[index], neighbor_distances[within])
            improved = new_reach < reachability[within]
            for neighbor, reach in zip(within[improved], new_reach[improved]):
                reachability[neighbor] = reach
                heapq.heappush(heap, (float(reach), int(neighbor)))
    return np.asarray(ordering, dtype=np.int64), reachability


def optics_ordering_vectorized(
    distances: np.ndarray, core_distances: np.ndarray, eps: float = np.inf
) -> tuple[np.ndarray, np.ndarray]:
    """Masked-argmin OPTICS sweep.

    Replaces the priority queue with a dense ``pending`` array over the
    unprocessed objects: the next object is ``argmin(pending)`` (first
    occurrence, i.e. the smallest index on ties — exactly the heap's
    ``(reach, index)`` order), and each expansion updates all improved
    neighbours with one fancy-indexed assignment instead of per-neighbour
    heap pushes.  Reachability values are computed by the same
    ``maximum(core, distance)`` operation as the reference, so the output
    is bit-identical.
    """
    n_samples = distances.shape[0]
    core = np.asarray(core_distances, dtype=np.float64)
    # ``pending`` carries the current reachability of every unprocessed
    # object (processed objects are pinned at +inf so argmin skips them);
    # an object's final reachability is simply its pending value at the
    # moment it is popped, so no separate update pass is needed.
    pending = np.full(n_samples, np.inf)
    reachability = np.full(n_samples, np.inf)
    unprocessed = np.ones(n_samples, dtype=bool)
    ordering = np.empty(n_samples, dtype=np.int64)
    new_reach = np.empty(n_samples)
    improved = np.empty(n_samples, dtype=bool)
    unbounded = bool(np.isinf(eps))

    for step in range(n_samples):
        index = int(np.argmin(pending))
        if not np.isfinite(pending[index]):
            # Nothing reachable is left: start a new component at the
            # smallest unprocessed index, like the reference outer loop.
            index = int(np.argmax(unprocessed))
        reachability[index] = pending[index]
        unprocessed[index] = False
        pending[index] = np.inf
        ordering[step] = index
        if core[index] > eps:
            continue
        row = distances[index]
        np.maximum(core[index], row, out=new_reach)
        np.less(new_reach, pending, out=improved)
        improved &= unprocessed
        if not unbounded:
            improved &= row <= eps
        pending[improved] = new_reach[improved]
    return ordering, reachability


# ======================================================================
# Kernel 2: dense Prim MST + single-linkage merge records
# ======================================================================

def minimum_spanning_tree(
    distances: np.ndarray, *, kernels: str | None = None
) -> np.ndarray:
    """Dense Prim minimum spanning tree.

    Parameters
    ----------
    distances:
        ``(n, n)`` symmetric distance matrix (typically the mutual
        reachability matrix).
    kernels:
        Kernel implementation; see :func:`resolve_kernel_mode`.

    Returns
    -------
    ndarray
        ``(n-1, 3)`` array of edges ``(u, v, weight)`` sorted by weight
        (stable, so tied weights keep discovery order).
    """
    if resolve_kernel_mode(kernels) == "reference":
        return minimum_spanning_tree_reference(distances)
    return minimum_spanning_tree_vectorized(distances)


def minimum_spanning_tree_reference(distances: np.ndarray) -> np.ndarray:
    """Prim MST with an explicit in-tree mask re-applied every iteration."""
    distances = np.asarray(distances, dtype=np.float64)
    n_samples = distances.shape[0]
    if n_samples < 2:
        return np.empty((0, 3), dtype=np.float64)

    in_tree = np.zeros(n_samples, dtype=bool)
    best_distance = np.full(n_samples, np.inf)
    best_source = np.full(n_samples, -1, dtype=np.int64)

    in_tree[0] = True
    best_distance[:] = distances[0]
    best_source[:] = 0
    best_distance[0] = np.inf

    edges = np.empty((n_samples - 1, 3), dtype=np.float64)
    for edge_index in range(n_samples - 1):
        candidate = int(np.argmin(np.where(in_tree, np.inf, best_distance)))
        edges[edge_index] = (best_source[candidate], candidate, best_distance[candidate])
        in_tree[candidate] = True
        improved = ~in_tree & (distances[candidate] < best_distance)
        best_distance[improved] = distances[candidate][improved]
        best_source[improved] = candidate
    order = np.argsort(edges[:, 2], kind="stable")
    return edges[order]


def minimum_spanning_tree_vectorized(distances: np.ndarray) -> np.ndarray:
    """Prim MST over a single masked frontier array.

    In-tree entries are kept at ``+inf`` *inside* the frontier array, so
    the per-iteration ``np.where`` re-mask of the reference disappears and
    each step is one ``argmin`` plus one masked comparison.  Candidate
    selection, tie-breaking and edge weights are bit-identical to
    :func:`minimum_spanning_tree_reference`.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n_samples = distances.shape[0]
    if n_samples < 2:
        return np.empty((0, 3), dtype=np.float64)

    # ``frontier[j]`` is the best known edge weight from the tree to j,
    # with in-tree entries pinned at +inf so argmin skips them.
    frontier = distances[0].astype(np.float64, copy=True)
    frontier[0] = np.inf
    source = np.zeros(n_samples, dtype=np.int64)
    active = np.ones(n_samples, dtype=bool)
    active[0] = False

    edges = np.empty((n_samples - 1, 3), dtype=np.float64)
    for edge_index in range(n_samples - 1):
        candidate = int(np.argmin(frontier))
        edges[edge_index] = (source[candidate], candidate, frontier[candidate])
        active[candidate] = False
        frontier[candidate] = np.inf
        row = distances[candidate]
        improved = (row < frontier) & active
        frontier[improved] = row[improved]
        source[improved] = candidate
    order = np.argsort(edges[:, 2], kind="stable")
    return edges[order]


def single_linkage_tree(
    mst_edges: np.ndarray, n_samples: int, *, kernels: str | None = None
) -> np.ndarray:
    """Convert sorted MST edges into scipy-style single-linkage merge records.

    Parameters
    ----------
    mst_edges:
        ``(n-1, 3)`` MST edges sorted by weight.
    n_samples:
        Number of leaves.
    kernels:
        Kernel implementation; see :func:`resolve_kernel_mode`.

    Returns
    -------
    ndarray
        ``(n-1, 4)`` merge records; row ``m`` records the merge creating
        node ``n_samples + m`` from nodes ``(left, right)`` at ``distance``
        with ``size`` leaves, exactly like
        :func:`scipy.cluster.hierarchy.linkage` output for single linkage.
    """
    if resolve_kernel_mode(kernels) == "reference":
        return single_linkage_tree_reference(mst_edges, n_samples)
    return single_linkage_tree_vectorized(mst_edges, n_samples)


def _check_edge_count(mst_edges: np.ndarray, n_samples: int) -> np.ndarray:
    mst_edges = np.asarray(mst_edges, dtype=np.float64)
    if mst_edges.shape[0] != n_samples - 1:
        raise ValueError(
            f"expected {n_samples - 1} MST edges for {n_samples} samples, got {mst_edges.shape[0]}"
        )
    return mst_edges


def single_linkage_tree_reference(mst_edges: np.ndarray, n_samples: int) -> np.ndarray:
    """Merge loop over a hash-based :class:`~repro.utils.disjoint_set.DisjointSet`."""
    mst_edges = _check_edge_count(mst_edges, n_samples)
    ds = DisjointSet(range(n_samples))
    current_node: dict[int, int] = {index: index for index in range(n_samples)}
    sizes: dict[int, int] = {index: 1 for index in range(n_samples)}
    merges = np.empty((n_samples - 1, 4), dtype=np.float64)

    next_node = n_samples
    for row, (u, v, weight) in enumerate(mst_edges):
        root_u = ds.find(int(u))
        root_v = ds.find(int(v))
        node_u = current_node[root_u]
        node_v = current_node[root_v]
        merged_size = sizes[node_u] + sizes[node_v]
        merges[row] = (node_u, node_v, weight, merged_size)
        new_root = ds.union(root_u, root_v)
        current_node[new_root] = next_node
        sizes[next_node] = merged_size
        next_node += 1
    return merges


def single_linkage_tree_vectorized(mst_edges: np.ndarray, n_samples: int) -> np.ndarray:
    """Merge loop over flat array-based union–find.

    The generic hash-based disjoint set is replaced by integer index lists
    with inline path halving; edge endpoints are bulk-converted once and
    the merge columns are assembled with whole-column array writes.  The
    emitted records only depend on the *groups* (never on which root
    survives a union), so the output is bit-identical to the reference.
    """
    mst_edges = _check_edge_count(mst_edges, n_samples)
    n_edges = n_samples - 1
    if n_edges <= 0:
        return np.empty((0, 4), dtype=np.float64)

    parent = list(range(n_samples))
    node_of = list(range(n_samples))            # union-find root -> dendrogram node
    sizes = [1] * (2 * n_samples - 1)           # dendrogram node -> leaf count
    u_list = mst_edges[:, 0].astype(np.int64).tolist()
    v_list = mst_edges[:, 1].astype(np.int64).tolist()
    left = [0] * n_edges
    right = [0] * n_edges
    merged_sizes = [0] * n_edges

    next_node = n_samples
    for row in range(n_edges):
        x = u_list[row]
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        y = v_list[row]
        while parent[y] != y:
            parent[y] = parent[parent[y]]
            y = parent[y]
        node_u = node_of[x]
        node_v = node_of[y]
        merged = sizes[node_u] + sizes[node_v]
        left[row] = node_u
        right[row] = node_v
        merged_sizes[row] = merged
        parent[y] = x
        node_of[x] = next_node
        sizes[next_node] = merged
        next_node += 1

    merges = np.empty((n_edges, 4), dtype=np.float64)
    merges[:, 0] = left
    merges[:, 1] = right
    merges[:, 2] = mst_edges[:, 2]
    merges[:, 3] = merged_sizes
    return merges


# ======================================================================
# Kernel 3: FOSC condensed tree + optimal extraction over flat arrays
# ======================================================================

@dataclass
class CondensedArrayData:
    """Flat-array representation of a condensed density hierarchy.

    Produced by :func:`condense_tree`; consumed by :func:`stabilities`,
    :func:`labels_for_selection` and :func:`fosc_extract`.  Cluster ``0``
    is the root; children always have larger identifiers than their
    parents (so reversed id order is a valid bottom-up traversal, as in
    the reference :class:`~repro.clustering.hierarchy.CondensedTree`).

    Attributes
    ----------
    n_samples:
        Number of data objects.
    min_cluster_size:
        Minimum size for a split to create new clusters.
    parent:
        ``(k,)`` parent cluster id per cluster (``-1`` for the root).
    birth_lambda:
        ``(k,)`` density level at which each cluster appears.
    split_lambda:
        ``(k,)`` density level at which each cluster splits (``inf`` if
        it never splits).
    children:
        Child cluster ids per cluster, in creation order.
    sizes:
        ``(k,)`` member count per cluster (own fall-outs plus all
        descendants' members).
    point_cluster:
        ``(n,)`` cluster in which each point individually falls out.
    point_lambda:
        ``(n,)`` density level at which each point falls out.
    event_cluster / event_lambda:
        Per-point fall-out records in hierarchy *walk order* — the same
        order in which the reference build fills ``point_lambdas``, which
        is what makes the ordered stability accumulation bit-identical.
    enter / exit:
        DFS pre-order interval per cluster: cluster ``d`` is a
        descendant-or-self of ``c`` iff ``enter[c] <= enter[d] <= exit[c]``.
    """

    n_samples: int
    min_cluster_size: int
    parent: np.ndarray
    birth_lambda: np.ndarray
    split_lambda: np.ndarray
    children: list[list[int]]
    sizes: np.ndarray
    point_cluster: np.ndarray
    point_lambda: np.ndarray
    event_cluster: np.ndarray
    event_lambda: np.ndarray
    enter: np.ndarray
    exit: np.ndarray

    @property
    def n_clusters(self) -> int:
        """Number of condensed clusters, including the root."""
        return self.parent.shape[0]


def _leaf_intervals(
    merges: np.ndarray, n_samples: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Leaf ordering of a single-linkage tree plus per-node leaf intervals.

    Returns ``(leaf_order, start, end)`` such that the leaves of dendrogram
    node ``v`` are exactly ``leaf_order[start[v]:end[v]]``, *in the same
    order* as the reference ``CondensedTree._node_leaves`` stack traversal
    (right subtree first).
    """
    n_nodes = 2 * n_samples - 1
    left = merges[:, 0].astype(np.int64).tolist()
    right = merges[:, 1].astype(np.int64).tolist()
    subtree = [1] * n_nodes
    for node in range(n_samples, n_nodes):
        row = node - n_samples
        subtree[node] = subtree[left[row]] + subtree[right[row]]

    leaf_order = np.empty(n_samples, dtype=np.int64)
    start = np.empty(n_nodes, dtype=np.int64)
    end = np.empty(n_nodes, dtype=np.int64)
    stack: list[tuple[int, int]] = [(n_nodes - 1, 0)]
    while stack:
        node, offset = stack.pop()
        start[node] = offset
        end[node] = offset + subtree[node]
        if node < n_samples:
            leaf_order[offset] = node
        else:
            row = node - n_samples
            # The reference emits the right subtree's leaves first.
            stack.append((right[row], offset))
            stack.append((left[row], offset + subtree[right[row]]))
    return leaf_order, start, end


def condense_tree(
    merges: np.ndarray, n_samples: int, min_cluster_size: int
) -> CondensedArrayData:
    """Condense a single-linkage tree into flat parent/lambda arrays.

    This is the vectorized counterpart of building a
    :class:`~repro.clustering.hierarchy.CondensedTree`: the same top-down
    walk decides which splits are significant (both sides at least
    ``min_cluster_size``), but point fall-outs are recorded as leaf-order
    *intervals* instead of materialising per-cluster Python sets, and the
    per-point lambda/cluster assignment happens in one bulk scatter at the
    end.  Cluster identifiers, birth/split levels and per-point fall-out
    levels are bit-identical to the reference build.
    """
    if min_cluster_size < 2:
        raise ValueError(f"min_cluster_size must be an integer >= 2, got {min_cluster_size}")
    merges = np.asarray(merges, dtype=np.float64)
    n_edges = merges.shape[0]
    point_cluster = np.zeros(n_samples, dtype=np.int64)
    point_lambda = np.full(n_samples, np.inf)

    if n_edges == 0:
        return CondensedArrayData(
            n_samples=n_samples,
            min_cluster_size=min_cluster_size,
            parent=np.array([-1], dtype=np.int64),
            birth_lambda=np.zeros(1),
            split_lambda=np.full(1, np.inf),
            children=[[]],
            sizes=np.array([n_samples], dtype=np.int64),
            point_cluster=point_cluster,
            point_lambda=point_lambda,
            event_cluster=np.zeros(n_samples, dtype=np.int64),
            event_lambda=np.full(n_samples, np.inf),
            enter=np.zeros(1, dtype=np.int64),
            exit=np.zeros(1, dtype=np.int64),
        )

    leaf_order, node_start, node_end = _leaf_intervals(merges, n_samples)
    left_nodes = merges[:, 0].astype(np.int64).tolist()
    right_nodes = merges[:, 1].astype(np.int64).tolist()
    node_sizes = merges[:, 3].astype(np.int64).tolist()
    distances = merges[:, 2]
    with np.errstate(divide="ignore"):
        levels_arr = np.where(distances <= 0.0, np.inf, np.divide(1.0, distances))
    levels = levels_arr.tolist()
    starts = node_start.tolist()
    ends = node_end.tolist()

    parent_ids = [-1]
    births = [0.0]
    splits = [np.inf]
    children: list[list[int]] = [[]]

    # Fall-out events: (cluster, leaf-interval, level), in walk order.
    ev_cluster: list[int] = []
    ev_lo: list[int] = []
    ev_hi: list[int] = []
    ev_level: list[float] = []

    def _size(node: int) -> int:
        return 1 if node < n_samples else node_sizes[node - n_samples]

    root_node = n_samples + n_edges - 1
    stack: list[tuple[int, int]] = [(root_node, 0)]
    while stack:
        node, cluster_id = stack.pop()
        if node < n_samples:
            ev_cluster.append(cluster_id)
            ev_lo.append(starts[node])
            ev_hi.append(ends[node])
            ev_level.append(np.inf)
            continue
        row = node - n_samples
        node_left = left_nodes[row]
        node_right = right_nodes[row]
        level = levels[row]
        big_left = _size(node_left) >= min_cluster_size
        big_right = _size(node_right) >= min_cluster_size

        if big_left and big_right:
            if level < splits[cluster_id]:
                splits[cluster_id] = level
            for child_node in (node_left, node_right):
                child_id = len(parent_ids)
                parent_ids.append(cluster_id)
                births.append(level)
                splits.append(np.inf)
                children[cluster_id].append(child_id)
                children.append([])
                stack.append((child_node, child_id))
        elif big_left or big_right:
            keep, drop = (node_left, node_right) if big_left else (node_right, node_left)
            ev_cluster.append(cluster_id)
            ev_lo.append(starts[drop])
            ev_hi.append(ends[drop])
            ev_level.append(level)
            stack.append((keep, cluster_id))
        else:
            for side in (node_left, node_right):
                ev_cluster.append(cluster_id)
                ev_lo.append(starts[side])
                ev_hi.append(ends[side])
                ev_level.append(level)

    # Expand the interval events into per-point arrays with one scatter.
    ev_cluster_arr = np.asarray(ev_cluster, dtype=np.int64)
    ev_lo_arr = np.asarray(ev_lo, dtype=np.int64)
    ev_hi_arr = np.asarray(ev_hi, dtype=np.int64)
    ev_level_arr = np.asarray(ev_level, dtype=np.float64)
    lengths = ev_hi_arr - ev_lo_arr
    rep = np.repeat(np.arange(ev_cluster_arr.shape[0]), lengths)
    offsets = np.concatenate(([0], np.cumsum(lengths)))[:-1]
    flat = np.arange(int(lengths.sum()), dtype=np.int64) - offsets[rep] + ev_lo_arr[rep]
    points = leaf_order[flat]
    event_cluster = ev_cluster_arr[rep]
    event_lambda = ev_level_arr[rep]
    point_cluster[points] = event_cluster
    point_lambda[points] = event_lambda

    n_clusters = len(parent_ids)
    parent = np.asarray(parent_ids, dtype=np.int64)
    birth_lambda = np.asarray(births, dtype=np.float64)
    split_lambda = np.asarray(splits, dtype=np.float64)

    # Member counts, bottom-up (children have larger ids than parents).
    sizes = np.bincount(point_cluster, minlength=n_clusters).astype(np.int64)
    for cluster_id in range(n_clusters - 1, -1, -1):
        for child_id in children[cluster_id]:
            sizes[cluster_id] += sizes[child_id]

    # DFS pre-order intervals for O(1) descendant-or-self membership tests.
    subtree_count = np.ones(n_clusters, dtype=np.int64)
    for cluster_id in range(n_clusters - 1, -1, -1):
        for child_id in children[cluster_id]:
            subtree_count[cluster_id] += subtree_count[child_id]
    enter = np.empty(n_clusters, dtype=np.int64)
    exit_ = np.empty(n_clusters, dtype=np.int64)
    dfs: list[int] = [0]
    counter = 0
    while dfs:
        cluster_id = dfs.pop()
        enter[cluster_id] = counter
        exit_[cluster_id] = counter + subtree_count[cluster_id] - 1
        counter += 1
        dfs.extend(reversed(children[cluster_id]))

    return CondensedArrayData(
        n_samples=n_samples,
        min_cluster_size=min_cluster_size,
        parent=parent,
        birth_lambda=birth_lambda,
        split_lambda=split_lambda,
        children=children,
        sizes=sizes,
        point_cluster=point_cluster,
        point_lambda=point_lambda,
        event_cluster=event_cluster,
        event_lambda=event_lambda,
        enter=enter,
        exit=exit_,
    )


def stabilities(data: CondensedArrayData) -> np.ndarray:
    """Excess-of-mass stability of every condensed cluster.

    Fall-out contributions are accumulated with :func:`numpy.ufunc.at` in
    hierarchy walk order — the same sequential order in which the
    reference ``CondensedTree.stability`` iterates ``point_lambdas`` — so
    each per-cluster total is the bit-identical floating-point sum.
    """
    totals = np.zeros(data.n_clusters)
    end_levels = data.split_lambda[data.event_cluster]
    capped = np.minimum(data.event_lambda, end_levels)
    contributions = np.where(
        np.isfinite(capped), capped - data.birth_lambda[data.event_cluster], 0.0
    )
    np.add.at(totals, data.event_cluster, contributions)

    # Points passed down to children leave their cluster at the split level.
    n_passed = np.zeros(data.n_clusters, dtype=np.int64)
    for cluster_id, cluster_children in enumerate(data.children):
        for child_id in cluster_children:
            n_passed[cluster_id] += data.sizes[child_id]
    passed_mask = (n_passed > 0) & np.isfinite(data.split_lambda)
    totals[passed_mask] += (
        n_passed[passed_mask] * (data.split_lambda[passed_mask] - data.birth_lambda[passed_mask])
    )
    return totals


def labels_for_selection(data: CondensedArrayData, selected: list[int]) -> np.ndarray:
    """Flat labels for a set of selected clusters; unassigned points are noise.

    Matches ``CondensedTree.labels_for_selection``: flat labels follow the
    sorted order of the selected cluster ids, and later clusters overwrite
    earlier ones (irrelevant for the antichains FOSC produces).
    """
    labels = np.full(data.n_samples, -1, dtype=np.int64)
    point_enter = data.enter[data.point_cluster]
    for flat_label, cluster_id in enumerate(sorted(selected)):
        members = (point_enter >= data.enter[cluster_id]) & (point_enter <= data.exit[cluster_id])
        labels[members] = flat_label
    return labels


def fosc_extract(
    data: CondensedArrayData,
    constraint_i: np.ndarray,
    constraint_j: np.ndarray,
    constraint_is_must: np.ndarray,
    stability_weight: float,
) -> tuple[list[int], np.ndarray, float, bool]:
    """FOSC optimal-selection dynamic program over flat condensed arrays.

    Parameters
    ----------
    data:
        Condensed hierarchy from :func:`condense_tree`.
    constraint_i, constraint_j:
        Constraint endpoint index arrays (may be empty).
    constraint_is_must:
        Boolean array marking must-link constraints.
    stability_weight:
        Weight of the normalised unsupervised stability term.

    Returns
    -------
    tuple
        ``(selected_clusters, labels, objective, used_constraints)`` —
        bit-identical to running the reference
        :class:`~repro.clustering.fosc.FOSC` dynamic program on the
        equivalent :class:`~repro.clustering.hierarchy.CondensedTree`.
    """
    n_constraints = int(constraint_i.shape[0])
    use_constraints = n_constraints > 0
    n_clusters = data.n_clusters

    if n_clusters <= 1:
        # Degenerate hierarchy: everything is one cluster, like the reference.
        return [0], np.zeros(data.n_samples, dtype=np.int64), 0.0, use_constraints

    stability_all = stabilities(data)[1:]
    max_stability = float(stability_all.max()) if stability_all.size else 0.0
    if max_stability <= 0.0:
        max_stability = 1.0
    normalised = stability_all / max_stability

    if use_constraints:
        # Endpoint membership per (constraint, cluster) via DFS intervals.
        enter_i = data.enter[data.point_cluster[constraint_i]][:, None]
        enter_j = data.enter[data.point_cluster[constraint_j]][:, None]
        lo = data.enter[None, 1:]
        hi = data.exit[None, 1:]
        in_i = (enter_i >= lo) & (enter_i <= hi)
        in_j = (enter_j >= lo) & (enter_j <= hi)
        must = constraint_is_must[:, None]
        # Credits are exact multiples of 0.5, so the summation order of the
        # reference loop cannot change the totals.
        must_credit = (must & in_i & in_j).sum(axis=0)
        cannot_credit = (~must & (in_i ^ in_j)).sum(axis=0)
        satisfaction = (must_credit * 1.0 + cannot_credit * 0.5) / n_constraints
        quality = satisfaction + stability_weight * normalised
    else:
        quality = normalised

    # Bottom-up dynamic program (children have larger ids than parents).
    best_value = np.empty(n_clusters)
    keep_node = np.zeros(n_clusters, dtype=bool)
    for cluster_id in range(n_clusters - 1, 0, -1):
        own = quality[cluster_id - 1]
        cluster_children = data.children[cluster_id]
        children_value = sum(best_value[child] for child in cluster_children)
        if cluster_children and children_value > own:
            best_value[cluster_id] = children_value
        else:
            best_value[cluster_id] = own
            keep_node[cluster_id] = True

    selected: list[int] = []
    stack = list(data.children[0])
    total = sum(best_value[child] for child in data.children[0])
    while stack:
        cluster_id = stack.pop()
        if keep_node[cluster_id]:
            selected.append(cluster_id)
        else:
            stack.extend(data.children[cluster_id])
    selected = sorted(selected)

    if not selected:
        # Degenerate hierarchy (no significant split): one cluster, noise
        # for points outside the root — the root always contains every
        # point, so this is the all-zeros labelling of the reference.
        return [0], np.zeros(data.n_samples, dtype=np.int64), float(total), use_constraints

    labels = labels_for_selection(data, selected)
    return selected, labels, float(total), use_constraints


# ======================================================================
# Kernel 4: MPCK-Means greedy ICM assignment
# ======================================================================

def build_neighbor_csr(
    pairs: np.ndarray, n_samples: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style adjacency ``(indptr, indices)`` from an ``(m, 2)`` pair array.

    The per-object neighbour order replicates the append order of the
    reference adjacency lists (pair by pair, ``i``'s entry before ``j``'s),
    so sequential penalty accumulation visits neighbours identically in
    both kernel implementations.
    """
    pairs = np.asarray(pairs, dtype=np.intp)
    if pairs.size == 0:
        return np.zeros(n_samples + 1, dtype=np.intp), np.empty(0, dtype=np.intp)
    n_pairs = pairs.shape[0]
    rows = np.empty(2 * n_pairs, dtype=np.intp)
    cols = np.empty(2 * n_pairs, dtype=np.intp)
    rows[0::2] = pairs[:, 0]
    rows[1::2] = pairs[:, 1]
    cols[0::2] = pairs[:, 1]
    cols[1::2] = pairs[:, 0]
    order = np.argsort(rows, kind="stable")
    indices = cols[order]
    counts = np.bincount(rows, minlength=n_samples)
    indptr = np.zeros(n_samples + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices


def mpck_assign(
    X: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    point_center_distances: np.ndarray,
    log_det: np.ndarray,
    max_sq: np.ndarray,
    must_indptr: np.ndarray,
    must_indices: np.ndarray,
    cannot_indptr: np.ndarray,
    cannot_indices: np.ndarray,
    order: np.ndarray,
    constraint_weight: float,
    *,
    kernels: str | None = None,
) -> np.ndarray:
    """One greedy ICM assignment sweep of MPCK-Means.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix.
    weights:
        ``(k, d)`` per-cluster diagonal metric weights.
    labels:
        ``(n,)`` labels entering the sweep (not modified).
    point_center_distances:
        ``(n, k)`` squared diagonal-metric distances to every centre.
    log_det:
        ``(k,)`` log-determinant normalisation term per metric.
    max_sq:
        ``(k,)`` maximum-distance scale for cannot-link penalties.
    must_indptr, must_indices, cannot_indptr, cannot_indices:
        CSR neighbour arrays from :func:`build_neighbor_csr` over the
        transitive-closure constraint pairs.
    order:
        Permutation in which objects are (conceptually) visited.
    constraint_weight:
        Penalty weight ``w``.
    kernels:
        Kernel implementation; see :func:`resolve_kernel_mode`.

    Returns
    -------
    ndarray
        The updated ``(n,)`` label vector.
    """
    if resolve_kernel_mode(kernels) == "reference":
        return mpck_assign_reference(
            X, weights, labels, point_center_distances, log_det, max_sq,
            must_indptr, must_indices, cannot_indptr, cannot_indices,
            order, constraint_weight,
        )
    return mpck_assign_vectorized(
        X, weights, labels, point_center_distances, log_det, max_sq,
        must_indptr, must_indices, cannot_indptr, cannot_indices,
        order, constraint_weight,
    )


def mpck_assign_reference(
    X: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    point_center_distances: np.ndarray,
    log_det: np.ndarray,
    max_sq: np.ndarray,
    must_indptr: np.ndarray,
    must_indices: np.ndarray,
    cannot_indptr: np.ndarray,
    cannot_indices: np.ndarray,
    order: np.ndarray,
    constraint_weight: float,
) -> np.ndarray:
    """Per-point, per-neighbour, per-cluster Python loop (the ICM baseline)."""
    n_clusters = weights.shape[0]
    w = constraint_weight
    labels = labels.copy()

    for index in order:
        costs = point_center_distances[index] - log_det
        for other in must_indices[must_indptr[index]:must_indptr[index + 1]]:
            other_label = labels[other]
            diff = X[index] - X[other]
            diff_sq = diff * diff
            partner = np.sum(diff_sq * weights[other_label])
            for h in range(n_clusters):
                if h != other_label:
                    # Violated must-link: penalty grows with the distance
                    # between the two points under both involved metrics.
                    pair_distance = 0.5 * (np.sum(diff_sq * weights[h]) + partner)
                    costs[h] += w * pair_distance
        for other in cannot_indices[cannot_indptr[index]:cannot_indptr[index + 1]]:
            other_label = labels[other]
            diff = X[index] - X[other]
            pair_distance = np.sum(diff * diff * weights[other_label])
            # Violated cannot-link: penalty is larger the closer the pair.
            costs[other_label] += w * max(max_sq[other_label] - pair_distance, 0.0)
        labels[index] = int(np.argmin(costs))
    return labels


def mpck_assign_vectorized(
    X: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    point_center_distances: np.ndarray,
    log_det: np.ndarray,
    max_sq: np.ndarray,
    must_indptr: np.ndarray,
    must_indices: np.ndarray,
    cannot_indptr: np.ndarray,
    cannot_indices: np.ndarray,
    order: np.ndarray,
    constraint_weight: float,
) -> np.ndarray:
    """Batched ICM sweep.

    Unconstrained objects read no other object's label and are read by no
    one (only constraint endpoints are ever consulted), so their updates
    commute with every other update in the sweep: they are assigned in one
    batched row-wise ``argmin``.  Constrained objects keep the sequential
    ICM semantics, but each visit computes all neighbour penalties under
    all metrics with one batched product and per-neighbour vector adds —
    the identical scalar operation sequence as the reference, so labels
    are bit-identical.
    """
    w = constraint_weight
    labels = labels.copy()

    base = point_center_distances - log_det[None, :]
    degree = (must_indptr[1:] - must_indptr[:-1]) + (cannot_indptr[1:] - cannot_indptr[:-1])
    constrained = degree > 0
    free = ~constrained
    if free.any():
        labels[free] = np.argmin(base[free], axis=1)
    if not constrained.any():
        return labels

    for index in order[constrained[order]]:
        costs = base[index].copy()
        must_nb = must_indices[must_indptr[index]:must_indptr[index + 1]]
        if must_nb.size:
            diffs = X[index] - X[must_nb]
            diff_sq = diffs * diffs
            # (m, k): squared distance of every violated pair under every
            # candidate metric; the partner term is the gather at the
            # neighbour's current label (same last-axis reduction as the
            # reference's per-metric sums).
            pair_all = (diff_sq[:, None, :] * weights[None, :, :]).sum(axis=2)
            neighbor_labels = labels[must_nb]
            partner = pair_all[np.arange(must_nb.size), neighbor_labels]
            for m in range(must_nb.size):
                term = w * (0.5 * (pair_all[m] + partner[m]))
                term[neighbor_labels[m]] = 0.0
                costs += term
        cannot_nb = cannot_indices[cannot_indptr[index]:cannot_indptr[index + 1]]
        if cannot_nb.size:
            diffs = X[index] - X[cannot_nb]
            neighbor_labels = labels[cannot_nb]
            pair = (diffs * diffs * weights[neighbor_labels]).sum(axis=1)
            contribution = w * np.maximum(max_sq[neighbor_labels] - pair, 0.0)
            np.add.at(costs, neighbor_labels, contribution)
        labels[index] = int(np.argmin(costs))
    return labels
