"""MPCK-Means: metric pairwise constrained k-means.

Bilenko, Basu & Mooney, *Integrating Constraints and Metric Learning in
Semi-Supervised Clustering*, ICML 2004.  This is the partitional
semi-supervised algorithm used throughout the evaluation of the CVCP paper;
its tuned parameter is the number of clusters ``k``.

The algorithm minimises an objective combining

* the (squared) distance of each point to its cluster centroid under a
  learned per-cluster diagonal metric ``A_h`` (with the usual
  ``- log det A_h`` normalisation term),
* a penalty for every violated must-link constraint, proportional to the
  distance between the two points under the involved metrics (far-apart
  must-linked points are worse),
* a penalty for every violated cannot-link constraint, proportional to how
  close the two points are (close cannot-linked points are worse).

Optimisation is EM-style: greedy ICM assignment of points in random order,
then centroid updates, then diagonal metric updates.  Initialisation uses
the must-link neighbourhoods (transitive-closure components) as seed
centroids, topped up with k-means++ when there are fewer neighbourhoods
than clusters.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.kernels import build_neighbor_csr, mpck_assign
from repro.clustering.kmeans import kmeans_plus_plus_init
from repro.constraints.closure import transitive_closure
from repro.constraints.constraint import ConstraintSet
from repro.utils.disjoint_set import DisjointSet
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_array_2d, check_positive_int

_EPS = 1e-12


class MPCKMeans(BaseClusterer):
    """Metric pairwise constrained k-means (MPCK-Means).

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k`` (the parameter CVCP selects).
    constraint_weight:
        Weight ``w`` of every constraint-violation penalty.
    learn_metrics:
        Whether to learn one diagonal metric per cluster (the "M" in MPCK);
        with ``False`` the algorithm degenerates to PCK-Means, i.e. plain
        penalised constrained k-means in the Euclidean metric.
    n_init:
        Number of random restarts; the run with the lowest objective wins.
    max_iter:
        Maximum EM iterations per restart.
    tol:
        Relative objective-improvement tolerance used to declare convergence.
    kernels:
        Kernel implementation for the assignment step — ``"vectorized"``
        (CSR neighbour arrays + batched penalty math, the default) or
        ``"reference"`` (per-point/per-neighbour Python loops); ``None``
        consults ``REPRO_KERNELS``.  Labels are bit-identical either way;
        see :mod:`repro.clustering.kernels`.
    random_state:
        Seed or generator.

    Attributes
    ----------
    labels_:
        Cluster labels of the training data.
    cluster_centers_:
        ``(k, d)`` centroids.
    metric_weights_:
        ``(k, d)`` learned diagonal metric weights (all ones when
        ``learn_metrics=False``).
    objective_:
        Final value of the MPCK objective.
    n_iter_:
        EM iterations used by the best restart.
    """

    tuned_parameter = "n_clusters"

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        constraint_weight: float = 1.0,
        learn_metrics: bool = True,
        n_init: int = 3,
        max_iter: int = 30,
        tol: float = 1e-5,
        kernels: str | None = None,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.constraint_weight = constraint_weight
        self.learn_metrics = learn_metrics
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.kernels = kernels
        self.random_state = random_state

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "MPCKMeans":
        """Cluster ``X`` guided by pairwise constraints.

        ``seed_labels`` (a partial labelling) is accepted for convenience
        and converted to its induced constraints, as described in
        Section 3.1.1 of the CVCP paper.
        """
        X = check_array_2d(X)
        n_clusters = check_positive_int(self.n_clusters, name="n_clusters")
        if n_clusters > X.shape[0]:
            raise ValueError(
                f"n_clusters={n_clusters} exceeds the number of samples {X.shape[0]}"
            )
        if self.constraint_weight < 0:
            raise ValueError(f"constraint_weight must be >= 0, got {self.constraint_weight}")
        rng = check_random_state(self.random_state)

        constraints = constraints if constraints is not None else ConstraintSet()
        if seed_labels:
            from repro.constraints.generation import constraints_from_labels

            constraints = constraints.merged_with(constraints_from_labels(seed_labels))
        closure = transitive_closure(constraints, strict=False)
        must_pairs = closure.must_link_array()
        cannot_pairs = closure.cannot_link_array()

        best: tuple[float, np.ndarray, np.ndarray, np.ndarray, int] | None = None
        for _ in range(self.n_init):
            outcome = self._single_run(X, n_clusters, must_pairs, cannot_pairs, closure, rng)
            if best is None or outcome[0] < best[0]:
                best = outcome

        assert best is not None
        objective, labels, centers, weights, iterations = best
        self.labels_ = labels
        self.cluster_centers_ = centers
        self.metric_weights_ = weights
        self.objective_ = float(objective)
        self.n_iter_ = iterations
        return self

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _single_run(
        self,
        X: np.ndarray,
        n_clusters: int,
        must_pairs: np.ndarray,
        cannot_pairs: np.ndarray,
        closure: ConstraintSet,
        rng: np.random.Generator,
    ) -> tuple[float, np.ndarray, np.ndarray, np.ndarray, int]:
        n_samples, n_features = X.shape
        centers = self._initial_centers(X, n_clusters, closure, rng)
        weights = np.ones((n_clusters, n_features), dtype=np.float64)
        labels = self._nearest_center_labels(X, centers, weights)

        # CSR neighbour views over the closure, shared by every assignment
        # sweep (and by both kernel implementations).
        must_csr = build_neighbor_csr(must_pairs, n_samples)
        cannot_csr = build_neighbor_csr(cannot_pairs, n_samples)

        previous_objective = np.inf
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            labels = self._assign(X, centers, weights, labels, must_csr, cannot_csr, rng)
            centers = self._update_centers(X, labels, centers, n_clusters)
            if self.learn_metrics:
                weights = self._update_metrics(
                    X, labels, centers, n_clusters, must_pairs, cannot_pairs
                )
            objective = self._objective(X, labels, centers, weights, must_pairs, cannot_pairs)
            if previous_objective - objective <= self.tol * max(abs(previous_objective), 1.0):
                previous_objective = objective
                break
            previous_objective = objective

        objective = self._objective(X, labels, centers, weights, must_pairs, cannot_pairs)
        return objective, labels.astype(np.int64), centers, weights, iteration

    def _initial_centers(
        self,
        X: np.ndarray,
        n_clusters: int,
        closure: ConstraintSet,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Seed centroids from must-link neighbourhoods, topped up with k-means++."""
        ds = DisjointSet()
        for constraint in closure.must_links:
            ds.union(constraint.i, constraint.j)
        neighbourhoods = sorted(ds.groups(), key=len, reverse=True)
        seeds = [X[list(group)].mean(axis=0) for group in neighbourhoods[:n_clusters]]
        if len(seeds) < n_clusters:
            extra = kmeans_plus_plus_init(X, n_clusters, rng)
            seeds.extend(extra[len(seeds):n_clusters])
        return np.vstack(seeds)[:n_clusters].astype(np.float64)

    @staticmethod
    def _point_center_distances(
        X: np.ndarray, centers: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Squared diagonal-metric distance of every point to every center."""
        n_clusters = centers.shape[0]
        distances = np.empty((X.shape[0], n_clusters), dtype=np.float64)
        for h in range(n_clusters):
            diff = X - centers[h]
            distances[:, h] = np.einsum("ij,j,ij->i", diff, weights[h], diff)
        np.maximum(distances, 0.0, out=distances)
        return distances

    def _nearest_center_labels(
        self, X: np.ndarray, centers: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        return np.argmin(self._point_center_distances(X, centers, weights), axis=1).astype(np.int64)

    def _pair_penalties(
        self, X: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-cluster maximum penalty scale used for cannot-link violations.

        ``f_CL(i, j) = max_distance_h - d_h(i, j)``: violating a cannot-link
        between nearby points costs more than between distant ones.  The
        per-cluster maximum distance is estimated from the data diameter
        under each metric.
        """
        n_clusters = weights.shape[0]
        spans = X.max(axis=0) - X.min(axis=0)
        max_sq = np.array(
            [float(np.dot(spans * weights[h], spans)) for h in range(n_clusters)],
            dtype=np.float64,
        )
        return max_sq, spans

    def _assign(
        self,
        X: np.ndarray,
        centers: np.ndarray,
        weights: np.ndarray,
        labels: np.ndarray,
        must_csr: tuple[np.ndarray, np.ndarray],
        cannot_csr: tuple[np.ndarray, np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Greedy ICM assignment of points in random order.

        The sweep itself is one of the four hot kernels
        (:func:`~repro.clustering.kernels.mpck_assign`); the shared
        per-sweep quantities (point–centre distances, metric
        log-determinants, cannot-link penalty scales) are computed here so
        both kernel implementations consume identical inputs.
        """
        n_samples = X.shape[0]
        n_clusters = centers.shape[0]

        log_det = np.array(
            [float(np.sum(np.log(np.maximum(weights[h], _EPS)))) for h in range(n_clusters)]
        )
        distances = self._point_center_distances(X, centers, weights)
        max_sq, _ = self._pair_penalties(X, weights)
        order = rng.permutation(n_samples)
        return mpck_assign(
            X,
            weights,
            labels,
            distances,
            log_det,
            max_sq,
            must_csr[0],
            must_csr[1],
            cannot_csr[0],
            cannot_csr[1],
            order,
            self.constraint_weight,
            kernels=self.kernels,
        )

    @staticmethod
    def _update_centers(
        X: np.ndarray, labels: np.ndarray, centers: np.ndarray, n_clusters: int
    ) -> np.ndarray:
        new_centers = centers.copy()
        for h in range(n_clusters):
            members = labels == h
            if np.any(members):
                new_centers[h] = X[members].mean(axis=0)
        return new_centers

    def _update_metrics(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        centers: np.ndarray,
        n_clusters: int,
        must_pairs: np.ndarray,
        cannot_pairs: np.ndarray,
    ) -> np.ndarray:
        """Closed-form update of the per-cluster diagonal metrics.

        For every cluster ``h`` and dimension ``d`` the weight is the cluster
        size divided by the accumulated squared deviation along ``d``
        (within-cluster scatter plus the contributions of violated
        constraints involving the cluster), following Bilenko et al. (2004).
        """
        n_features = X.shape[1]
        w = self.constraint_weight
        spans = X.max(axis=0) - X.min(axis=0)
        span_sq = spans**2

        scatter = np.zeros((n_clusters, n_features), dtype=np.float64)
        counts = np.zeros(n_clusters, dtype=np.float64)
        for h in range(n_clusters):
            members = labels == h
            counts[h] = float(np.count_nonzero(members))
            if counts[h] > 0:
                diff = X[members] - centers[h]
                scatter[h] = np.einsum("ij,ij->j", diff, diff)

        for i, j in must_pairs:
            if labels[i] != labels[j]:
                diff_sq = (X[i] - X[j]) ** 2
                scatter[labels[i]] += 0.5 * w * diff_sq
                scatter[labels[j]] += 0.5 * w * diff_sq
        for i, j in cannot_pairs:
            if labels[i] == labels[j]:
                diff_sq = (X[i] - X[j]) ** 2
                scatter[labels[i]] += w * np.maximum(span_sq - diff_sq, 0.0)

        weights = np.ones((n_clusters, n_features), dtype=np.float64)
        for h in range(n_clusters):
            if counts[h] == 0:
                continue
            denominator = np.maximum(scatter[h], _EPS)
            weights[h] = counts[h] / denominator
            # Guard against degenerate dimensions blowing the metric up.
            weights[h] = np.clip(weights[h], 1e-6, 1e6)
        return weights

    def _objective(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        centers: np.ndarray,
        weights: np.ndarray,
        must_pairs: np.ndarray,
        cannot_pairs: np.ndarray,
    ) -> float:
        n_clusters = centers.shape[0]
        w = self.constraint_weight
        log_det = np.array(
            [float(np.sum(np.log(np.maximum(weights[h], _EPS)))) for h in range(n_clusters)]
        )
        distances = self._point_center_distances(X, centers, weights)
        total = float(distances[np.arange(X.shape[0]), labels].sum())
        total -= float(log_det[labels].sum())

        max_sq, _ = self._pair_penalties(X, weights)
        # Same squared-difference formulation as the assignment kernels
        # (repro.clustering.kernels.mpck_assign), so objective and
        # assignment agree bit-for-bit on every penalty term.
        for i, j in must_pairs:
            if labels[i] != labels[j]:
                diff_sq = (X[i] - X[j]) ** 2
                total += w * 0.5 * (
                    float(np.sum(diff_sq * weights[labels[i]]))
                    + float(np.sum(diff_sq * weights[labels[j]]))
                )
        for i, j in cannot_pairs:
            if labels[i] == labels[j]:
                diff_sq = (X[i] - X[j]) ** 2
                pair_distance = float(np.sum(diff_sq * weights[labels[i]]))
                total += w * max(max_sq[labels[i]] - pair_distance, 0.0)
        return total
