"""Density-based cluster hierarchies (the "OPTICSDend" dendrogram).

The FOSC-OPTICSDend algorithm of the CVCP paper extracts a flat clustering
from the dendrogram induced by OPTICS.  That dendrogram is equivalent to a
single-linkage tree built over the *mutual reachability distance*

    d_mreach(a, b) = max(core_k(a), core_k(b), d(a, b))

with ``core_k`` the distance to the ``MinPts``-th nearest neighbour (this is
the construction used by HDBSCAN*, whose authors are the FOSC authors).  The
module provides:

* :func:`mutual_reachability` — the transformed distance matrix;
* :func:`minimum_spanning_tree` — a dense Prim MST over it;
* :func:`build_single_linkage_tree` — the dendrogram as merge records;
* :class:`CondensedTree` — the hierarchy simplified with a minimum cluster
  size, exposing per-cluster membership, stability and the parent/child
  structure FOSC's dynamic program runs on;
* :class:`DensityHierarchy` — a convenience facade tying the steps together;
* :class:`TreeStructure` / :func:`cached_tree_structure` — the
  constraint-independent *structure phase* of a FOSC fit (core distances,
  MST merge records, condensed tree) as a slim memoised record that
  constraint deltas re-extract from without refitting, optionally backed
  by ``"structure"`` artifacts in an
  :class:`~repro.experiments.artifacts.ArtifactStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering import kernels as _kernels
from repro.clustering.distances import k_nearest_distances
from repro.utils.cache import MemoCache, array_fingerprint, cached_pairwise_distances
from repro.utils.validation import check_array_2d, check_positive_int


def mutual_reachability(
    distances: np.ndarray,
    core_distances: np.ndarray,
    *,
    out: np.ndarray | None = None,
    block_rows: int | None = None,
) -> np.ndarray:
    """Mutual reachability distance matrix.

    Parameters
    ----------
    distances:
        ``(n, n)`` raw distance matrix (in-RAM or memmap).
    core_distances:
        ``(n,)`` core distance per object.
    out:
        Optional ``(n, n)`` float64 output (e.g. a
        :meth:`~repro.core.distance_backend.DistanceBackend.derived_matrix`
        spill) to fill instead of allocating.
    block_rows:
        When given, the transform streams in row blocks with a bounded
        working set instead of materialising full-matrix temporaries.  The
        per-entry operations are identical, so all variants are
        bit-identical.
    """
    core_distances = np.asarray(core_distances, dtype=np.float64)
    if out is None and block_rows is None:
        distances = np.asarray(distances, dtype=np.float64)
        mreach = np.maximum(distances, core_distances[:, None])
        np.maximum(mreach, core_distances[None, :], out=mreach)
        np.fill_diagonal(mreach, 0.0)
        return mreach
    n = core_distances.shape[0]
    if out is None:
        out = np.empty((n, n), dtype=np.float64)
    block = block_rows if block_rows is not None else n
    for start in range(0, n, block):
        stop = min(start + block, n)
        panel = np.maximum(
            np.asarray(distances[start:stop], dtype=np.float64),
            core_distances[start:stop, None],
        )
        np.maximum(panel, core_distances[None, :], out=panel)
        panel[np.arange(stop - start), np.arange(start, stop)] = 0.0
        out[start:stop] = panel
    return out


def minimum_spanning_tree(distances: np.ndarray, *, kernels: str | None = None) -> np.ndarray:
    """Dense Prim minimum spanning tree.

    Parameters
    ----------
    distances:
        ``(n, n)`` symmetric distance matrix.
    kernels:
        Kernel implementation (``"vectorized"``/``"reference"``/``None``);
        both are bit-identical — see :mod:`repro.clustering.kernels`.

    Returns
    -------
    ndarray
        ``(n-1, 3)`` array of edges ``(u, v, weight)`` sorted by weight.
    """
    return _kernels.minimum_spanning_tree(distances, kernels=kernels)


def build_single_linkage_tree(
    mst_edges: np.ndarray, n_samples: int, *, kernels: str | None = None
) -> np.ndarray:
    """Convert sorted MST edges into scipy-style merge records.

    Parameters
    ----------
    mst_edges:
        ``(n-1, 3)`` MST edges sorted by weight.
    n_samples:
        Number of leaves.
    kernels:
        Kernel implementation (``"vectorized"``/``"reference"``/``None``);
        both are bit-identical — see :mod:`repro.clustering.kernels`.

    Returns
    -------
    ndarray
        ``(n-1, 4)`` array; row ``m`` records the merge creating node
        ``n_samples + m`` from nodes ``(left, right)`` at ``distance`` with
        ``size`` leaves, exactly like :func:`scipy.cluster.hierarchy.linkage`
        output for single linkage.
    """
    return _kernels.single_linkage_tree(mst_edges, n_samples, kernels=kernels)


@dataclass
class CondensedCluster:
    """One cluster of the condensed hierarchy.

    Attributes
    ----------
    cluster_id:
        Identifier within the condensed tree (0 is the root).
    parent:
        Identifier of the parent cluster (``-1`` for the root).
    birth_lambda:
        Density level (``1 / distance``) at which the cluster appears.
    children:
        Identifiers of the child clusters (empty for leaves).
    split_lambda:
        Density level at which the cluster splits into its children
        (``inf`` if it never splits).
    point_lambdas:
        ``{point: lambda}`` for points that leave the cluster individually
        (fall out as noise of this cluster) before any split.
    members:
        All points contained in the cluster (its own fall-outs plus every
        point of every descendant cluster).  This is the flat cluster one
        obtains by *selecting* this node.
    """

    cluster_id: int
    parent: int
    birth_lambda: float
    children: list[int] = field(default_factory=list)
    split_lambda: float = np.inf
    point_lambdas: dict[int, float] = field(default_factory=dict)
    members: set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.members)


class CondensedTree:
    """Hierarchy simplified with a minimum cluster size.

    The construction follows HDBSCAN*: walking the single-linkage dendrogram
    from the root towards the leaves, a split is *significant* only when
    both sides contain at least ``min_cluster_size`` points; otherwise the
    smaller side simply "falls out" of the current cluster at that density
    level.  Each significant cluster records its stability
    ``sum_p (lambda_p - lambda_birth)``, the classic excess-of-mass measure
    used for unsupervised extraction.
    """

    def __init__(self, merges: np.ndarray, n_samples: int, min_cluster_size: int) -> None:
        self.n_samples = n_samples
        self.min_cluster_size = check_positive_int(
            min_cluster_size, name="min_cluster_size", minimum=2
        )
        self._merges = np.asarray(merges, dtype=np.float64)
        self.clusters: dict[int, CondensedCluster] = {}
        self._build()

    # -- construction ---------------------------------------------------
    def _node_children(self, node: int) -> tuple[int, int, float]:
        row = self._merges[node - self.n_samples]
        return int(row[0]), int(row[1]), float(row[2])

    def _node_size(self, node: int) -> int:
        if node < self.n_samples:
            return 1
        return int(self._merges[node - self.n_samples][3])

    def _node_leaves(self, node: int) -> list[int]:
        stack = [node]
        leaves: list[int] = []
        while stack:
            current = stack.pop()
            if current < self.n_samples:
                leaves.append(current)
            else:
                left, right, _ = self._node_children(current)
                stack.extend((left, right))
        return leaves

    def _build(self) -> None:
        root_node = self.n_samples + self._merges.shape[0] - 1 if self._merges.shape[0] else 0
        root = CondensedCluster(cluster_id=0, parent=-1, birth_lambda=0.0)
        self.clusters[0] = root
        if self._merges.shape[0] == 0:
            root.members = set(range(self.n_samples))
            root.point_lambdas = {point: np.inf for point in range(self.n_samples)}
            return

        # Stack of (single-linkage node, condensed cluster id it belongs to).
        stack: list[tuple[int, int]] = [(root_node, 0)]
        next_cluster_id = 1
        while stack:
            node, cluster_id = stack.pop()
            cluster = self.clusters[cluster_id]
            if node < self.n_samples:
                cluster.point_lambdas[node] = np.inf
                continue
            left, right, distance = self._node_children(node)
            level = np.inf if distance <= 0 else 1.0 / distance
            left_size = self._node_size(left)
            right_size = self._node_size(right)
            big_left = left_size >= self.min_cluster_size
            big_right = right_size >= self.min_cluster_size

            if big_left and big_right:
                cluster.split_lambda = min(cluster.split_lambda, level)
                for child_node in (left, right):
                    child = CondensedCluster(
                        cluster_id=next_cluster_id, parent=cluster_id, birth_lambda=level
                    )
                    self.clusters[next_cluster_id] = child
                    cluster.children.append(next_cluster_id)
                    stack.append((child_node, next_cluster_id))
                    next_cluster_id += 1
            elif big_left or big_right:
                keep, drop = (left, right) if big_left else (right, left)
                for point in self._node_leaves(drop):
                    cluster.point_lambdas[point] = level
                stack.append((keep, cluster_id))
            else:
                for point in self._node_leaves(left) + self._node_leaves(right):
                    cluster.point_lambdas[point] = level

        self._fill_members()

    def _fill_members(self) -> None:
        # Children were created after their parents, so reversed id order is
        # a valid bottom-up order.
        for cluster_id in sorted(self.clusters, reverse=True):
            cluster = self.clusters[cluster_id]
            cluster.members.update(cluster.point_lambdas)
            for child_id in cluster.children:
                cluster.members.update(self.clusters[child_id].members)

    # -- queries ----------------------------------------------------------
    @property
    def root(self) -> CondensedCluster:
        return self.clusters[0]

    def leaves(self) -> list[int]:
        """Identifiers of clusters without children."""
        return [cid for cid, cluster in self.clusters.items() if not cluster.children]

    def stability(self, cluster_id: int) -> float:
        """Excess-of-mass stability of a cluster (HDBSCAN*'s objective)."""
        cluster = self.clusters[cluster_id]
        birth = cluster.birth_lambda
        end_level = cluster.split_lambda
        total = 0.0
        for point, level in cluster.point_lambdas.items():
            total += min(level, end_level) - birth if np.isfinite(min(level, end_level)) else 0.0
        # Points passed down to children leave this cluster at the split level.
        n_passed = sum(self.clusters[child].size for child in cluster.children)
        if n_passed and np.isfinite(end_level):
            total += n_passed * (end_level - birth)
        return float(total)

    def selectable_clusters(self) -> list[int]:
        """Every cluster except the root (the root is the trivial solution)."""
        return [cid for cid in self.clusters if cid != 0]

    def labels_for_selection(self, selected: list[int]) -> np.ndarray:
        """Flat labels for a set of selected clusters; unassigned points are noise."""
        labels = np.full(self.n_samples, -1, dtype=np.int64)
        for flat_label, cluster_id in enumerate(sorted(selected)):
            for point in self.clusters[cluster_id].members:
                labels[point] = flat_label
        return labels


class CondensedTreeArrays:
    """Array-backed condensed hierarchy (the vectorized kernel's tree).

    Wraps the flat :class:`~repro.clustering.kernels.CondensedArrayData`
    produced by :func:`~repro.clustering.kernels.condense_tree` while
    exposing the same query interface as :class:`CondensedTree` —
    :attr:`clusters`, :attr:`root`, :meth:`leaves`, :meth:`stability`,
    :meth:`selectable_clusters` and :meth:`labels_for_selection` — so
    consumers can treat either tree flavour uniformly.  The per-cluster
    :class:`CondensedCluster` objects (with their Python sets and dicts)
    are only materialised lazily on first access to :attr:`clusters`;
    the FOSC extraction kernel never touches them.
    """

    def __init__(self, data: "_kernels.CondensedArrayData") -> None:
        self.arrays = data
        self.n_samples = data.n_samples
        self.min_cluster_size = data.min_cluster_size
        self._clusters: dict[int, CondensedCluster] | None = None
        self._stabilities: np.ndarray | None = None

    # -- queries (CondensedTree-compatible) -----------------------------
    @property
    def clusters(self) -> dict[int, CondensedCluster]:
        """Per-cluster objects, materialised lazily from the flat arrays."""
        if self._clusters is None:
            data = self.arrays
            clusters = {
                cluster_id: CondensedCluster(
                    cluster_id=cluster_id,
                    parent=int(data.parent[cluster_id]),
                    birth_lambda=float(data.birth_lambda[cluster_id]),
                    children=list(data.children[cluster_id]),
                    split_lambda=float(data.split_lambda[cluster_id]),
                )
                for cluster_id in range(data.n_clusters)
            }
            for point, (cluster_id, level) in enumerate(
                zip(data.point_cluster.tolist(), data.point_lambda.tolist())
            ):
                clusters[cluster_id].point_lambdas[point] = level
            for cluster_id in range(data.n_clusters - 1, -1, -1):
                cluster = clusters[cluster_id]
                cluster.members.update(cluster.point_lambdas)
                for child_id in cluster.children:
                    cluster.members.update(clusters[child_id].members)
            self._clusters = clusters
        return self._clusters

    @property
    def root(self) -> CondensedCluster:
        """The root cluster (id ``0``)."""
        return self.clusters[0]

    def leaves(self) -> list[int]:
        """Identifiers of clusters without children."""
        return [
            cluster_id
            for cluster_id in range(self.arrays.n_clusters)
            if not self.arrays.children[cluster_id]
        ]

    def stability(self, cluster_id: int) -> float:
        """Excess-of-mass stability (bit-identical to the reference tree)."""
        if self._stabilities is None:
            self._stabilities = _kernels.stabilities(self.arrays)
        return float(self._stabilities[cluster_id])

    def selectable_clusters(self) -> list[int]:
        """Every cluster except the root (the root is the trivial solution)."""
        return list(range(1, self.arrays.n_clusters))

    def labels_for_selection(self, selected: list[int]) -> np.ndarray:
        """Flat labels for a set of selected clusters; unassigned points are noise."""
        return _kernels.labels_for_selection(self.arrays, list(selected))


class DensityHierarchy:
    """Facade: data matrix → condensed density hierarchy.

    Parameters
    ----------
    min_pts:
        Core-distance smoothing parameter (the paper's MinPts).
    min_cluster_size:
        Minimum size for a split to create new clusters; defaults to
        ``min_pts``, matching common HDBSCAN*/FOSC practice.
    metric:
        Distance metric.
    kernels:
        Kernel implementation for the MST, dendrogram and condensed-tree
        stages — ``"vectorized"`` (default) or ``"reference"``; ``None``
        consults ``REPRO_KERNELS``.  With ``"vectorized"`` the fitted
        ``condensed_tree_`` is a :class:`CondensedTreeArrays` (same query
        API, bit-identical contents); with ``"reference"`` it is a
        :class:`CondensedTree`.
    distance_backend:
        Storage tier for the pairwise and mutual-reachability matrices —
        ``"dense"`` (default, whole-matrix in RAM), ``"blockwise"``
        (in RAM, streamed row blocks), ``"memmap"`` (out-of-core spill
        files) or ``"neighbors"`` (sparse epsilon-bounded k-NN graphs, no
        full matrix at all); ``None`` consults ``REPRO_DISTANCE_BACKEND``.
        The exact tiers build bit-identical hierarchies; the ``neighbors``
        tier is approximate-by-contract (see
        :mod:`repro.core.neighbor_graph`), and its fitted
        ``mutual_reachability_`` is a :class:`scipy.sparse.csr_matrix`
        instead of a dense array.
    epsilon / k_neighbors:
        Neighbour-graph radius and out-degree for the ``"neighbors"`` tier
        (``None`` consults ``REPRO_NEIGHBOR_EPSILON``/``REPRO_NEIGHBOR_K``);
        ignored by the exact tiers.
    """

    def __init__(
        self,
        min_pts: int,
        *,
        min_cluster_size: int | None = None,
        metric: str = "euclidean",
        kernels: str | None = None,
        distance_backend: str | None = None,
        epsilon: float | None = None,
        k_neighbors: int | None = None,
    ) -> None:
        self.min_pts = check_positive_int(min_pts, name="min_pts")
        self.min_cluster_size = (
            max(2, min_pts) if min_cluster_size is None
            else check_positive_int(min_cluster_size, name="min_cluster_size", minimum=2)
        )
        self.metric = metric
        self.kernels = kernels
        self.distance_backend = distance_backend
        self.epsilon = epsilon
        self.k_neighbors = k_neighbors

    def fit(self, X: np.ndarray) -> "DensityHierarchy":
        """Build the hierarchy for ``X``."""
        from repro.core.distance_backend import get_distance_backend

        X = check_array_2d(X)
        if self.min_pts > X.shape[0]:
            raise ValueError(
                f"min_pts={self.min_pts} exceeds the number of samples {X.shape[0]}"
            )
        n_samples = X.shape[0]
        mode = _kernels.resolve_kernel_mode(self.kernels)
        backend = get_distance_backend(self.distance_backend)
        if backend.name == "neighbors":
            # Sparse tier: core distances, mutual reachability and the MST
            # are all derived from the epsilon-bounded k-NN graph — storage
            # and work scale with n·k, never n².  The merge records feed
            # the same single-linkage/condense kernels as the dense path.
            from repro.core.neighbor_graph import (
                cached_neighbor_graph,
                mutual_reachability_graph,
                sparse_mst_edges,
            )

            graph = cached_neighbor_graph(
                X, metric=self.metric, epsilon=self.epsilon, k_neighbors=self.k_neighbors
            )
            self.core_distances_ = graph.core_distances(self.min_pts)
            self.mutual_reachability_ = mutual_reachability_graph(
                graph.graph, self.core_distances_
            )
            self.mst_edges_ = sparse_mst_edges(self.mutual_reachability_)
        else:
            block = backend.block_rows(n_samples)
            # Memoised: every (value × fold) grid cell of a CVCP sweep shares
            # the same O(n²) matrix, so only the first cell per process
            # computes it.
            distances = cached_pairwise_distances(
                X, metric=self.metric, distance_backend=backend.name
            )
            self.core_distances_ = k_nearest_distances(
                distances, self.min_pts, block_rows=block
            )
            if block is None:
                # Dense tier: the historical whole-matrix transform.
                self.mutual_reachability_ = mutual_reachability(distances, self.core_distances_)
            else:
                # Streaming tiers: fill backend-provided storage block-at-a-time
                # (an ephemeral spill for memmap), then drop the raw matrix's
                # page residency — it is not read again during this fit.
                self.mutual_reachability_ = mutual_reachability(
                    distances, self.core_distances_,
                    out=backend.derived_matrix(n_samples, "mreach"),
                    block_rows=block,
                )
                backend.release(distances)
            self.mst_edges_ = minimum_spanning_tree(self.mutual_reachability_, kernels=mode)
            backend.release(self.mutual_reachability_)
        self.single_linkage_tree_ = build_single_linkage_tree(
            self.mst_edges_, X.shape[0], kernels=mode
        )
        if mode == "vectorized":
            self.condensed_tree_ = CondensedTreeArrays(
                _kernels.condense_tree(
                    self.single_linkage_tree_, X.shape[0], self.min_cluster_size
                )
            )
        else:
            self.condensed_tree_ = CondensedTree(
                self.single_linkage_tree_, X.shape[0], self.min_cluster_size
            )
        return self


# ---------------------------------------------------------------------------
# The cached structure phase: everything in a FOSC fit that does not depend
# on the constraint set.  A structure is O(n) (MST edges, merge records,
# core distances, condensed tree) — deliberately *not* the O(n²)
# mutual-reachability matrix — so a per-process memo plus JSON artifacts in
# the store make constraint deltas re-extract instead of refit.


@dataclass
class TreeStructure:
    """The constraint-independent structure of one FOSC-OPTICSDend fit.

    Everything here is a pure deterministic function of ``(X, metric,
    min_pts, min_cluster_size)`` plus the distance tier — never of the
    constraint set, the oracle, the fold or any seed — which is what makes
    one structure shareable across every constraint delta, oracle and
    fold of a CVCP grid.

    Attributes
    ----------
    n_samples:
        Number of data objects.
    min_pts:
        The (effective, i.e. sample-count-clamped) MinPts the structure
        was built with.
    min_cluster_size:
        Resolved minimum cluster size of the condensed tree.
    metric:
        Distance metric.
    core_distances:
        ``(n,)`` core distance per object.
    mst_edges:
        ``(n-1, 3)`` mutual-reachability MST edges sorted by weight.
    single_linkage_tree:
        ``(n-1, 4)`` scipy-style merge records.
    condensed_tree:
        :class:`CondensedTreeArrays` (vectorized kernels) or
        :class:`CondensedTree` (reference kernels); bit-identical contents
        either way.
    """

    n_samples: int
    min_pts: int
    min_cluster_size: int
    metric: str
    core_distances: np.ndarray
    mst_edges: np.ndarray
    single_linkage_tree: np.ndarray
    condensed_tree: "CondensedTreeArrays | CondensedTree"


def resolve_min_cluster_size(min_pts: int, min_cluster_size: int | None) -> int:
    """The condensed tree's minimum cluster size, defaulted from MinPts."""
    if min_cluster_size is None:
        return max(2, min_pts)
    return check_positive_int(min_cluster_size, name="min_cluster_size", minimum=2)


def build_tree_structure(
    X: np.ndarray,
    min_pts: int,
    *,
    min_cluster_size: int | None = None,
    metric: str = "euclidean",
    kernels: str | None = None,
    distance_backend: str | None = None,
    epsilon: float | None = None,
    k_neighbors: int | None = None,
) -> TreeStructure:
    """Build the structure phase of one fit (no memo, no store)."""
    hierarchy = DensityHierarchy(
        min_pts,
        min_cluster_size=min_cluster_size,
        metric=metric,
        kernels=kernels,
        distance_backend=distance_backend,
        epsilon=epsilon,
        k_neighbors=k_neighbors,
    ).fit(X)
    # Only the O(n) outputs are retained; the hierarchy facade (and its
    # O(n²) mutual-reachability matrix) is dropped here so memoised
    # structures never hold whole matrices alive.
    return TreeStructure(
        n_samples=int(np.asarray(hierarchy.core_distances_).shape[0]),
        min_pts=int(hierarchy.min_pts),
        min_cluster_size=int(hierarchy.min_cluster_size),
        metric=metric,
        core_distances=np.asarray(hierarchy.core_distances_, dtype=np.float64),
        mst_edges=np.asarray(hierarchy.mst_edges_, dtype=np.float64),
        single_linkage_tree=np.asarray(hierarchy.single_linkage_tree_, dtype=np.float64),
        condensed_tree=hierarchy.condensed_tree_,
    )


def _encode_floats(array: np.ndarray) -> list:
    """JSON-ready float list; non-finite values spelled as strings.

    Python's JSON float encoding is shortest-roundtrip, so finite values
    survive exactly; JSON has no ``inf``/``nan`` literals, so those are
    spelled ``"inf"``/``"-inf"``/``"nan"``.
    """
    flat = np.asarray(array, dtype=np.float64)
    if np.isfinite(flat).all():
        return flat.tolist()

    def encode_value(value: float):
        if np.isfinite(value):
            return float(value)
        if np.isnan(value):
            return "nan"
        return "inf" if value > 0 else "-inf"
    if flat.ndim == 1:
        return [encode_value(value) for value in flat.tolist()]
    return [[encode_value(value) for value in row] for row in flat.tolist()]


def _decode_floats(values: list) -> np.ndarray:
    """Inverse of :func:`_encode_floats`."""
    def decode_value(value):
        if isinstance(value, str):
            return float(value)
        return float(value)
    if values and isinstance(values[0], list):
        return np.array([[decode_value(v) for v in row] for row in values], dtype=np.float64)
    return np.array([decode_value(v) for v in values], dtype=np.float64)


def structure_payload(structure: TreeStructure) -> dict:
    """JSON-serialisable form of a structure (exact float round-trip).

    The payload is kernel-mode neutral: the condensed tree is always
    emitted as the flat :class:`~repro.clustering.kernels.CondensedArrayData`
    arrays (both kernel modes build bit-identical trees), and
    :func:`structure_from_payload` rebuilds whichever flavour the decoding
    process's kernel mode wants.
    """
    tree = structure.condensed_tree
    if isinstance(tree, CondensedTreeArrays):
        data = tree.arrays
    else:
        # Reference-mode structures re-derive the flat arrays once at
        # persist time; contents are bit-identical to the reference tree.
        data = _kernels.condense_tree(
            structure.single_linkage_tree, structure.n_samples, structure.min_cluster_size
        )
    return {
        "n_samples": structure.n_samples,
        "min_pts": structure.min_pts,
        "min_cluster_size": structure.min_cluster_size,
        "metric": structure.metric,
        "core_distances": _encode_floats(structure.core_distances),
        "mst_edges": _encode_floats(structure.mst_edges),
        "single_linkage_tree": _encode_floats(structure.single_linkage_tree),
        "condensed": {
            "parent": data.parent.tolist(),
            "birth_lambda": _encode_floats(data.birth_lambda),
            "split_lambda": _encode_floats(data.split_lambda),
            "children": [list(child) for child in data.children],
            "sizes": data.sizes.tolist(),
            "point_cluster": data.point_cluster.tolist(),
            "point_lambda": _encode_floats(data.point_lambda),
            "event_cluster": data.event_cluster.tolist(),
            "event_lambda": _encode_floats(data.event_lambda),
            "enter": data.enter.tolist(),
            "exit": data.exit.tolist(),
        },
    }


def structure_from_payload(payload: dict, *, kernels: str | None = None) -> TreeStructure:
    """Rebuild a :class:`TreeStructure` from :func:`structure_payload` output.

    ``kernels`` selects the condensed-tree flavour of the rebuilt
    structure (``None`` consults ``REPRO_KERNELS``): vectorized mode
    restores the persisted flat arrays directly; reference mode replays
    the reference build from the merge records — bit-identical either way.
    """
    mode = _kernels.resolve_kernel_mode(kernels)
    n_samples = int(payload["n_samples"])
    min_cluster_size = int(payload["min_cluster_size"])
    single_linkage_tree = _decode_floats(payload["single_linkage_tree"]).reshape(-1, 4)
    if mode == "vectorized":
        condensed = payload["condensed"]
        data = _kernels.CondensedArrayData(
            n_samples=n_samples,
            min_cluster_size=min_cluster_size,
            parent=np.asarray(condensed["parent"], dtype=np.int64),
            birth_lambda=_decode_floats(condensed["birth_lambda"]),
            split_lambda=_decode_floats(condensed["split_lambda"]),
            children=[list(child) for child in condensed["children"]],
            sizes=np.asarray(condensed["sizes"], dtype=np.int64),
            point_cluster=np.asarray(condensed["point_cluster"], dtype=np.int64),
            point_lambda=_decode_floats(condensed["point_lambda"]),
            event_cluster=np.asarray(condensed["event_cluster"], dtype=np.int64),
            event_lambda=_decode_floats(condensed["event_lambda"]),
            enter=np.asarray(condensed["enter"], dtype=np.int64),
            exit=np.asarray(condensed["exit"], dtype=np.int64),
        )
        tree: CondensedTreeArrays | CondensedTree = CondensedTreeArrays(data)
    else:
        tree = CondensedTree(single_linkage_tree, n_samples, min_cluster_size)
    return TreeStructure(
        n_samples=n_samples,
        min_pts=int(payload["min_pts"]),
        min_cluster_size=min_cluster_size,
        metric=str(payload["metric"]),
        core_distances=_decode_floats(payload["core_distances"]),
        mst_edges=_decode_floats(payload["mst_edges"]).reshape(-1, 3),
        single_linkage_tree=single_linkage_tree,
        condensed_tree=tree,
    )


def structure_store_key(
    X: np.ndarray,
    min_pts: int,
    *,
    min_cluster_size: int | None = None,
    metric: str = "euclidean",
    distance_backend: str | None = None,
    epsilon: float | None = None,
    k_neighbors: int | None = None,
) -> dict:
    """Artifact-store key of one structure (kind ``"structure"``).

    The key pins exactly what the structure depends on — the data content,
    the metric, the (effective) MinPts and the minimum cluster size — and
    deliberately *excludes* the oracle, the constraint set, the fold, every
    seed and the kernel mode, so structures are shared across all of them.
    The exact distance tiers (dense/blockwise/memmap) are bit-identical and
    share keys; the approximate ``neighbors`` tier carries an ``approx``
    entry (mirroring :func:`repro.experiments.runner.trial_artifact_key`)
    and can never shadow (or be shadowed by) an exact-tier structure.
    """
    from repro.core.distance_backend import get_distance_backend

    key = {
        "x": array_fingerprint(X),
        "metric": str(metric),
        "min_pts": int(min_pts),
        "min_cluster_size": int(resolve_min_cluster_size(min_pts, min_cluster_size)),
    }
    if get_distance_backend(distance_backend).name == "neighbors":
        from repro.core.neighbor_graph import resolve_neighbor_epsilon, resolve_neighbor_k

        resolved_epsilon = resolve_neighbor_epsilon(epsilon)
        key["approx"] = {
            "distance_backend": "neighbors",
            # JSON has no inf literal; serialise it as the string "inf".
            "epsilon": "inf" if np.isinf(resolved_epsilon) else float(resolved_epsilon),
            "k_neighbors": resolve_neighbor_k(k_neighbors),
        }
    return key


#: Per-process memo of tree structures.  Structures are O(n) each, so the
#: bound is generous enough to hold a whole MinPts sweep per data set.
_structure_cache = MemoCache(max_items=64)


def _structure_memo_key(
    X: np.ndarray,
    min_pts: int,
    *,
    min_cluster_size: int | None,
    metric: str,
    kernels: str | None,
    distance_backend: str | None,
    epsilon: float | None,
    k_neighbors: int | None,
) -> tuple:
    from repro.core.distance_backend import get_distance_backend

    backend = get_distance_backend(distance_backend)
    if backend.name == "neighbors":
        from repro.core.neighbor_graph import resolve_neighbor_epsilon, resolve_neighbor_k

        tier: object = ("neighbors", resolve_neighbor_epsilon(epsilon), resolve_neighbor_k(k_neighbors))
    else:
        # The exact tiers build bit-identical structures; collapsing them to
        # one token lets e.g. a memmap grid reuse a dense-warmed structure.
        tier = "exact"
    return (
        array_fingerprint(X),
        str(metric),
        int(min_pts),
        int(resolve_min_cluster_size(min_pts, min_cluster_size)),
        _kernels.resolve_kernel_mode(kernels),
        tier,
    )


def cached_tree_structure(
    X: np.ndarray,
    min_pts: int,
    *,
    min_cluster_size: int | None = None,
    metric: str = "euclidean",
    kernels: str | None = None,
    distance_backend: str | None = None,
    epsilon: float | None = None,
    k_neighbors: int | None = None,
    store=None,
) -> TreeStructure:
    """The structure phase, memoised per process and optionally store-backed.

    Without ``store`` this is a plain memo lookup (the path
    :meth:`repro.clustering.fosc.FOSCOpticsDend.fit` takes — worker
    processes never touch the artifact store).  With a ``store``
    (:class:`~repro.experiments.artifacts.ArtifactStore`-compatible), the
    store is probed *first* so its per-kind hit/miss stats record every
    structure reuse, a persisted structure is decoded into the memo on a
    memo miss, and a freshly built structure is written through as a
    ``"structure"`` artifact.
    """
    memo_key = _structure_memo_key(
        X, min_pts, min_cluster_size=min_cluster_size, metric=metric, kernels=kernels,
        distance_backend=distance_backend, epsilon=epsilon, k_neighbors=k_neighbors,
    )

    def build() -> TreeStructure:
        return build_tree_structure(
            X, min_pts, min_cluster_size=min_cluster_size, metric=metric, kernels=kernels,
            distance_backend=distance_backend, epsilon=epsilon, k_neighbors=k_neighbors,
        )

    if store is None:
        return _structure_cache.get_or_compute(memo_key, build)

    key = structure_store_key(
        X, min_pts, min_cluster_size=min_cluster_size, metric=metric,
        distance_backend=distance_backend, epsilon=epsilon, k_neighbors=k_neighbors,
    )
    memoised = _structure_cache.peek(memo_key)
    if memoised is not None:
        # The memo already holds the decoded structure: a cheap existence
        # probe keeps the store's per-kind reuse accounting (and restores
        # a deleted artifact by writing through) without re-parsing the
        # payload on every warm call.
        if not store.contains("structure", key):
            store.put("structure", key, structure_payload(memoised))
        return memoised
    payload = store.get("structure", key)
    if payload is not None:
        return _structure_cache.get_or_compute(
            memo_key, lambda: structure_from_payload(payload, kernels=kernels)
        )
    structure = _structure_cache.get_or_compute(memo_key, build)
    store.put("structure", key, structure_payload(structure))
    return structure


def structure_cache_stats():
    """Hit/miss accounting of the per-process structure memo."""
    return _structure_cache.stats()


def clear_structure_cache() -> None:
    """Drop all memoised tree structures (mainly for tests and benchmarks)."""
    _structure_cache.clear()


def configure_structure_cache(max_items: int, max_bytes: int | None = None) -> None:
    """Re-bound the per-process structure memo; clears the current contents."""
    global _structure_cache
    _structure_cache = MemoCache(max_items=max_items, max_bytes=max_bytes)
