"""COP-KMeans: k-means with hard must-link / cannot-link constraints.

Wagstaff, Cardie, Rogers & Schrödl, *Constrained K-means Clustering with
Background Knowledge*, ICML 2001.  Points are assigned greedily to the
nearest centroid that does not violate any constraint given the assignments
made so far; if no centroid is feasible for some point, the run fails and is
restarted with a different seeding / assignment order.

The paper under reproduction uses MPCK-Means as its partitional
representative, but COP-KMeans is the classic hard-constraint alternative
and is exercised by the extension experiments ("future work will include the
study of CVCP in combination with other semi-supervised clustering
methods").
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.distances import euclidean_distances
from repro.clustering.kmeans import kmeans_plus_plus_init
from repro.constraints.closure import transitive_closure
from repro.constraints.constraint import ConstraintSet
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_array_2d, check_positive_int


class ConstraintViolationError(RuntimeError):
    """Raised when no constraint-respecting assignment could be found."""


class COPKMeans(BaseClusterer):
    """Hard-constrained k-means.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Number of restarts (differing in seeding and assignment order).
    max_iter:
        Maximum Lloyd iterations per restart.
    max_retries:
        Additional restarts allowed when a run dies because a point has no
        feasible cluster.
    random_state:
        Seed or generator.

    Notes
    -----
    Must-link constraints are honoured by assigning whole must-link
    components at once (the transitive closure is computed internally), and
    cannot-link constraints by excluding clusters already containing a
    conflicting component.
    """

    tuned_parameter = "n_clusters"

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        n_init: int = 5,
        max_iter: int = 100,
        max_retries: int = 10,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.max_retries = max_retries
        self.random_state = random_state

    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "COPKMeans":
        """Cluster ``X`` under *hard* pairwise constraints.

        Parameters
        ----------
        X:
            ``(n, d)`` data matrix.
        constraints:
            Must-link / cannot-link constraints; every returned assignment
            satisfies the transitive closure of this set exactly (COP-KMeans
            treats constraints as inviolable, unlike MPCK-Means' penalties).
        seed_labels:
            Optional partial labelling, converted to its induced pairwise
            constraints before clustering.

        Raises
        ------
        ConstraintViolationError
            If no constraint-respecting assignment could be found for some
            object in any restart.
        """
        X = check_array_2d(X)
        n_clusters = check_positive_int(self.n_clusters, name="n_clusters")
        if n_clusters > X.shape[0]:
            raise ValueError(
                f"n_clusters={n_clusters} exceeds the number of samples {X.shape[0]}"
            )
        rng = check_random_state(self.random_state)

        constraints = constraints if constraints is not None else ConstraintSet()
        if seed_labels:
            from repro.constraints.generation import constraints_from_labels

            constraints = constraints.merged_with(constraints_from_labels(seed_labels))
        closure = transitive_closure(constraints, strict=False)
        components, component_of = self._components(X.shape[0], closure)
        cannot_pairs = self._component_cannot_links(closure, component_of)

        best_inertia = np.inf
        best_labels: np.ndarray | None = None
        best_centers: np.ndarray | None = None
        attempts = self.n_init + self.max_retries
        for _ in range(attempts):
            try:
                labels, centers, inertia = self._single_run(
                    X, n_clusters, components, component_of, cannot_pairs, rng
                )
            except ConstraintViolationError:
                continue
            if inertia < best_inertia:
                best_inertia = inertia
                best_labels = labels
                best_centers = centers

        if best_labels is None:
            raise ConstraintViolationError(
                "COP-KMeans could not find any assignment satisfying all constraints "
                f"with n_clusters={n_clusters}"
            )
        self.labels_ = best_labels
        self.cluster_centers_ = best_centers
        self.inertia_ = float(best_inertia)
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def _components(
        n_samples: int, closure: ConstraintSet
    ) -> tuple[list[list[int]], np.ndarray]:
        """Must-link components (singletons for unconstrained objects)."""
        from repro.utils.disjoint_set import DisjointSet

        ds = DisjointSet(range(n_samples))
        for constraint in closure.must_links:
            ds.union(constraint.i, constraint.j)
        component_of = np.empty(n_samples, dtype=np.int64)
        components: list[list[int]] = []
        root_to_id: dict[int, int] = {}
        for index in range(n_samples):
            root = ds.find(index)
            if root not in root_to_id:
                root_to_id[root] = len(components)
                components.append([])
            component_id = root_to_id[root]
            components[component_id].append(index)
            component_of[index] = component_id
        return components, component_of

    @staticmethod
    def _component_cannot_links(
        closure: ConstraintSet, component_of: np.ndarray
    ) -> set[tuple[int, int]]:
        pairs: set[tuple[int, int]] = set()
        for constraint in closure.cannot_links:
            a = int(component_of[constraint.i])
            b = int(component_of[constraint.j])
            if a != b:
                pairs.add((min(a, b), max(a, b)))
        return pairs

    def _single_run(
        self,
        X: np.ndarray,
        n_clusters: int,
        components: list[list[int]],
        component_of: np.ndarray,
        cannot_pairs: set[tuple[int, int]],
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        centers = kmeans_plus_plus_init(X, n_clusters, rng)
        n_components = len(components)
        component_sizes = np.array([len(c) for c in components], dtype=np.float64)
        component_means = np.vstack([X[c].mean(axis=0) for c in components])

        labels = np.full(X.shape[0], -1, dtype=np.int64)
        for _ in range(self.max_iter):
            component_labels = np.full(n_components, -1, dtype=np.int64)
            cluster_members: list[set[int]] = [set() for _ in range(n_clusters)]
            # Assign larger components first: they are the hardest to place.
            order = np.argsort(-component_sizes + rng.random(n_components) * 1e-9)
            for component_id in order:
                distances = euclidean_distances(
                    component_means[component_id:component_id + 1], centers, squared=True
                ).ravel()
                feasible_found = False
                for cluster in np.argsort(distances):
                    conflict = any(
                        (min(component_id, other), max(component_id, other)) in cannot_pairs
                        for other in cluster_members[cluster]
                    )
                    if not conflict:
                        component_labels[component_id] = cluster
                        cluster_members[cluster].add(int(component_id))
                        feasible_found = True
                        break
                if not feasible_found:
                    raise ConstraintViolationError(
                        f"no feasible cluster for must-link component {component_id}"
                    )
            new_labels = component_labels[component_of]
            if np.array_equal(new_labels, labels):
                labels = new_labels
                break
            labels = new_labels
            for h in range(n_clusters):
                members = labels == h
                if np.any(members):
                    centers[h] = X[members].mean(axis=0)
        distances = euclidean_distances(X, centers, squared=True)
        inertia = float(distances[np.arange(X.shape[0]), labels].sum())
        return labels, centers, inertia
