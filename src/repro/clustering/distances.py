"""Distance computations shared by the clustering algorithms.

Everything is computed with dense numpy operations; the data sets in the
paper are small (at most a few hundred objects), so the O(n²) memory of a
full distance matrix is not a concern and the vectorised formulation is the
fastest pure-Python option.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array_2d


def euclidean_distances(X: np.ndarray, Y: np.ndarray | None = None, *, squared: bool = False) -> np.ndarray:
    """Pairwise Euclidean distances between the rows of ``X`` and ``Y``.

    Parameters
    ----------
    X:
        ``(n, d)`` array.
    Y:
        ``(m, d)`` array; defaults to ``X``.
    squared:
        If true, return squared distances (saves the square root).

    Returns
    -------
    ndarray
        ``(n, m)`` distance matrix.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = X if Y is None else np.asarray(Y, dtype=np.float64)
    x_sq = np.einsum("ij,ij->i", X, X)
    y_sq = np.einsum("ij,ij->i", Y, Y)
    cross = X @ Y.T
    squared_distances = x_sq[:, None] + y_sq[None, :] - 2.0 * cross
    # Numerical noise can push tiny distances slightly negative.
    np.maximum(squared_distances, 0.0, out=squared_distances)
    if Y is X:
        np.fill_diagonal(squared_distances, 0.0)
    if squared:
        return squared_distances
    return np.sqrt(squared_distances, out=squared_distances)


def pairwise_distances(X: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Full ``(n, n)`` distance matrix for the rows of ``X``.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix.
    metric:
        ``"euclidean"`` (default), ``"sqeuclidean"``, ``"manhattan"`` or
        ``"cosine"``.
    """
    X = check_array_2d(X)
    if metric == "euclidean":
        return euclidean_distances(X)
    if metric == "sqeuclidean":
        return euclidean_distances(X, squared=True)
    if metric == "manhattan":
        return np.abs(X[:, None, :] - X[None, :, :]).sum(axis=2)
    if metric == "cosine":
        norms = np.linalg.norm(X, axis=1)
        norms = np.where(norms == 0.0, 1.0, norms)
        normalised = X / norms[:, None]
        similarity = np.clip(normalised @ normalised.T, -1.0, 1.0)
        distances = 1.0 - similarity
        np.fill_diagonal(distances, 0.0)
        return distances
    raise ValueError(f"unknown metric {metric!r}")


def diagonal_mahalanobis_distances(
    X: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray,
    *,
    squared: bool = True,
) -> np.ndarray:
    """Distances of every point to every center under per-center diagonal metrics.

    MPCK-Means learns one diagonal metric ``A_h = diag(weights[h])`` per
    cluster ``h``; the (squared) distance of point ``x`` to center ``m_h``
    is ``(x - m_h)^T A_h (x - m_h)``.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix.
    centers:
        ``(k, d)`` cluster centers.
    weights:
        ``(k, d)`` positive diagonal metric weights, one row per cluster.
    squared:
        Return squared distances (default, as used in the MPCK objective).

    Returns
    -------
    ndarray
        ``(n, k)`` distance matrix.
    """
    X = np.asarray(X, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if centers.shape != weights.shape:
        raise ValueError(
            f"centers and weights must have the same shape, got {centers.shape} and {weights.shape}"
        )
    # Batched over all centers at once: one (n, k, d) broadcast difference
    # contracted in a single einsum instead of a Python loop over clusters.
    diff = X[:, None, :] - centers[None, :, :]
    distances = np.einsum("nkd,kd,nkd->nk", diff, weights, diff)
    np.maximum(distances, 0.0, out=distances)
    if squared:
        return distances
    return np.sqrt(distances, out=distances)


def weighted_squared_distance(x: np.ndarray, y: np.ndarray, weights: np.ndarray) -> float:
    """Squared distance between two vectors under a diagonal metric."""
    diff = np.asarray(x, dtype=np.float64) - np.asarray(y, dtype=np.float64)
    return float(np.dot(diff * np.asarray(weights, dtype=np.float64), diff))


def k_nearest_distances(distance_matrix: np.ndarray, k: int) -> np.ndarray:
    """Distance to the ``k``-th nearest neighbour for every object.

    The object itself is counted as its own 1st neighbour (distance 0), so
    ``k_nearest_distances(D, min_pts)`` yields exactly the OPTICS/HDBSCAN
    core distance for ``MinPts = k``.
    """
    distance_matrix = np.asarray(distance_matrix, dtype=np.float64)
    n = distance_matrix.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    partitioned = np.partition(distance_matrix, k - 1, axis=1)
    return partitioned[:, k - 1]
