"""Distance computations shared by the clustering algorithms.

Distances are computed in fixed-width **row panels** (:data:`DEFAULT_BLOCK_ROWS`
rows per panel).  The panel partition — not the storage tier — defines the
canonical floating-point result: every distance backend (dense in-RAM,
blockwise streaming, out-of-core memmap; see
:mod:`repro.core.distance_backend`) performs the identical per-panel NumPy
operations and therefore produces **bit-identical** matrices by construction.
For ``n <= DEFAULT_BLOCK_ROWS`` (every paper-scale data set) a single panel
covers all rows and the operation sequence is exactly the historical
full-matrix formulation, so small-``n`` results are bit-compatible with
earlier releases; for larger ``n`` the BLAS cross-product runs per panel,
which can differ from a whole-matrix GEMM in the last ulp (see
``docs/determinism.md`` for this one-time break and its precedents).

Inputs are accepted as they come: C-contiguous ``float64`` matrices are used
in place (no hidden copy — regression-tested), non-contiguous views are
consumed without materialising a contiguous copy, and other dtypes are
converted to ``float64`` exactly once.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import sparse

from repro.utils.validation import check_array_2d

#: Canonical row-panel width.  All distance backends compute pairwise
#: matrices in panels of this many rows, which is what makes the tiers
#: bit-identical: the BLAS cross-product is always invoked on the same
#: operand blocks regardless of how (or where) the output is stored.
DEFAULT_BLOCK_ROWS = 512


def _resolve_block_rows(block_rows: int | None) -> int:
    if block_rows is None:
        return DEFAULT_BLOCK_ROWS
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    return int(block_rows)


def _as_float64(array: np.ndarray) -> np.ndarray:
    """``float64`` view when possible, one explicit conversion otherwise."""
    array = np.asarray(array)
    if array.dtype == np.float64:
        return array
    return array.astype(np.float64)


def euclidean_distances(
    X: np.ndarray,
    Y: np.ndarray | None = None,
    *,
    squared: bool = False,
    out: np.ndarray | None = None,
    block_rows: int | None = None,
    panel_done: Callable[[int, int], None] | None = None,
) -> np.ndarray:
    """Pairwise Euclidean distances between the rows of ``X`` and ``Y``.

    Parameters
    ----------
    X:
        ``(n, d)`` array.
    Y:
        ``(m, d)`` array; defaults to ``X``.
    squared:
        If true, return squared distances (saves the square root).
    out:
        Optional ``(n, m)`` float64 output to fill (an in-RAM array or a
        writable ``np.memmap``); allocated when omitted.
    block_rows:
        Row-panel width; defaults to :data:`DEFAULT_BLOCK_ROWS`.  The panel
        partition defines the canonical float result — pass the default to
        stay bit-compatible with every distance backend.
    panel_done:
        Optional callback invoked as ``panel_done(start, stop)`` after each
        panel is written to ``out`` (the memmap backend uses it to flush
        and drop dirty pages incrementally).

    Returns
    -------
    ndarray
        ``(n, m)`` distance matrix.
    """
    X = _as_float64(X)
    self_distances = Y is None or Y is X
    Y = X if self_distances else _as_float64(Y)
    block = _resolve_block_rows(block_rows)
    n, m = X.shape[0], Y.shape[0]
    if out is None:
        out = np.empty((n, m), dtype=np.float64)
    y_sq = np.einsum("ij,ij->i", Y, Y)
    for start in range(0, n, block):
        stop = min(start + block, n)
        rows = X[start:stop]
        x_sq = y_sq[start:stop] if self_distances else np.einsum("ij,ij->i", rows, rows)
        cross = rows @ Y.T
        panel = x_sq[:, None] + y_sq[None, :] - 2.0 * cross
        # Numerical noise can push tiny distances slightly negative.
        np.maximum(panel, 0.0, out=panel)
        if self_distances:
            panel[np.arange(stop - start), np.arange(start, stop)] = 0.0
        if not squared:
            np.sqrt(panel, out=panel)
        out[start:stop] = panel
        if panel_done is not None:
            panel_done(start, stop)
    return out


def _manhattan_panel(rows: np.ndarray, Y: np.ndarray) -> np.ndarray:
    return np.abs(rows[:, None, :] - Y[None, :, :]).sum(axis=2)


def _sparse_squared_norms(X: "sparse.spmatrix") -> np.ndarray:
    return np.asarray(X.multiply(X).sum(axis=1), dtype=np.float64).ravel()


def _sparse_euclidean(
    X: "sparse.csr_matrix",
    out: np.ndarray,
    *,
    squared: bool,
    block: int,
    panel_done: Callable[[int, int], None] | None,
) -> np.ndarray:
    """Blocked Euclidean distances over CSR rows — sparse dots, no densify.

    The only dense temporaries are the ``(block, n)`` output panels; the
    ``(n, d)`` operand stays sparse throughout.
    """
    n = X.shape[0]
    sq = _sparse_squared_norms(X)
    for start in range(0, n, block):
        stop = min(start + block, n)
        cross = (X[start:stop] @ X.T).toarray()
        panel = sq[start:stop][:, None] + sq[None, :] - 2.0 * cross
        np.maximum(panel, 0.0, out=panel)
        panel[np.arange(stop - start), np.arange(start, stop)] = 0.0
        if not squared:
            np.sqrt(panel, out=panel)
        out[start:stop] = panel
        if panel_done is not None:
            panel_done(start, stop)
    return out


def _sparse_cosine(
    X: "sparse.csr_matrix",
    out: np.ndarray,
    *,
    block: int,
    panel_done: Callable[[int, int], None] | None,
) -> np.ndarray:
    """Blocked cosine distances over CSR rows — normalise-then-dot, sparse."""
    n = X.shape[0]
    norms = np.sqrt(_sparse_squared_norms(X))
    norms = np.where(norms == 0.0, 1.0, norms)
    # Row scaling keeps the CSR structure: D^-1 @ X with a sparse diagonal.
    normalised = sparse.diags(1.0 / norms).dot(X).tocsr()
    for start in range(0, n, block):
        stop = min(start + block, n)
        similarity = np.clip(
            (normalised[start:stop] @ normalised.T).toarray(), -1.0, 1.0
        )
        panel = 1.0 - similarity
        panel[np.arange(stop - start), np.arange(start, stop)] = 0.0
        out[start:stop] = panel
        if panel_done is not None:
            panel_done(start, stop)
    return out


def precomputed_distance_problems(matrix: object, *, name: str = "X") -> list[str]:
    """Validation problems of a user-supplied precomputed distance matrix.

    Returns human-readable problem strings (empty list when valid) so the
    config/serve layers can surface every defect at once; the kernel entry
    point (:func:`pairwise_distances`) raises on the joined list instead.
    A diagonal holding the global *maximum* is flagged as a
    similarity-matrix orientation mistake with a pointer to
    :func:`similarity_to_distance`.
    """
    if sparse.issparse(matrix):
        return [
            f"{name} must be a dense distance matrix for metric='precomputed'; "
            "convert sparse similarities with similarity_to_distance() first"
        ]
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return [f"{name} must be a square (n, n) matrix, got shape {array.shape}"]
    if array.shape[0] == 0:
        return [f"{name} must not be empty, got shape {array.shape}"]
    problems: list[str] = []
    if np.isnan(array).any():
        problems.append(f"{name} contains NaN entries")
        return problems
    if (array < 0.0).any():
        problems.append(f"{name} contains negative entries (distances must be >= 0)")
    if not np.array_equal(array, array.T):
        problems.append(f"{name} is not symmetric")
    diagonal = np.diagonal(array)
    if (diagonal != 0.0).any():
        finite = array[np.isfinite(array)]
        if finite.size and np.all(diagonal == finite.max()) and diagonal[0] > 0.0:
            problems.append(
                f"{name} looks like a *similarity* matrix (the diagonal holds the "
                "global maximum); convert it with similarity_to_distance() or set "
                "form = 'similarity'"
            )
        else:
            problems.append(f"{name} has a non-zero diagonal (self-distance must be 0)")
    return problems


def validate_precomputed_distances(matrix: object, *, name: str = "X") -> np.ndarray:
    """Validate and return a precomputed ``(n, n)`` float64 distance matrix."""
    problems = precomputed_distance_problems(matrix, name=name)
    if problems:
        raise ValueError("; ".join(problems))
    return np.asarray(matrix, dtype=np.float64)


def similarity_to_distance(similarity: np.ndarray) -> np.ndarray:
    """Convert a symmetric similarity matrix to a distance matrix.

    Uses ``D = max(S) - S`` (the standard affinity flip), then zeroes the
    diagonal so self-distance is exactly 0 regardless of per-row maxima.
    """
    S = np.asarray(similarity, dtype=np.float64)
    if S.ndim != 2 or S.shape[0] != S.shape[1]:
        raise ValueError(f"similarity must be a square (n, n) matrix, got shape {S.shape}")
    if np.isnan(S).any():
        raise ValueError("similarity contains NaN entries")
    if not np.array_equal(S, S.T):
        raise ValueError("similarity is not symmetric")
    distance = S.max() - S
    np.fill_diagonal(distance, 0.0)
    return distance


def pairwise_distances(
    X: np.ndarray,
    metric: str = "euclidean",
    *,
    out: np.ndarray | None = None,
    block_rows: int | None = None,
    panel_done: Callable[[int, int], None] | None = None,
) -> np.ndarray:
    """Full ``(n, n)`` distance matrix for the rows of ``X``.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix — dense, or scipy CSR for the sparse metrics
        (:data:`SPARSE_METRICS`; the operand is never densified, only the
        ``(block, n)`` output panels are dense).  Dense input is accepted
        as-is: C-contiguous ``float64`` input is never copied,
        non-contiguous views are consumed without a hidden contiguous copy,
        and other dtypes (e.g. ``float32``) are upcast exactly once.  For
        ``metric="precomputed"`` ``X`` *is* the ``(n, n)`` distance matrix
        (validated, see :func:`validate_precomputed_distances`).
    metric:
        ``"euclidean"`` (default), ``"sqeuclidean"``, ``"manhattan"``,
        ``"cosine"`` or ``"precomputed"``.
    out:
        Optional ``(n, n)`` float64 output to fill (RAM or ``np.memmap``).
    block_rows:
        Row-panel width (see :data:`DEFAULT_BLOCK_ROWS`); panelling also
        bounds the per-metric temporaries — notably Manhattan's former
        ``(n, n, d)`` broadcast intermediate is now ``(block, n, d)``.
    panel_done:
        Optional per-panel callback ``panel_done(start, stop)`` (see
        :func:`euclidean_distances`).
    """
    block = _resolve_block_rows(block_rows)
    if metric == "precomputed":
        # Validated directly (not via check_array_2d): a precomputed matrix
        # may legitimately contain +inf for unreachable pairs.
        matrix = validate_precomputed_distances(X)
        n = matrix.shape[0]
        if out is None:
            return matrix
        if out.shape != (n, n):
            raise ValueError(f"out must have shape {(n, n)}, got {out.shape}")
        # Panel-copy so out-of-core consumers (memmap spill fill) see the
        # same incremental panel_done stream as the computed metrics.
        for start in range(0, n, block):
            stop = min(start + block, n)
            out[start:stop] = matrix[start:stop]
            if panel_done is not None:
                panel_done(start, stop)
        return out
    is_sparse = sparse.issparse(X)
    if is_sparse and metric not in ("euclidean", "sqeuclidean", "cosine"):
        raise ValueError(
            f"sparse input supports metric 'euclidean', 'sqeuclidean' or "
            f"'cosine', got {metric!r}"
        )
    X = check_array_2d(X)
    n = X.shape[0]
    if out is None:
        out = np.empty((n, n), dtype=np.float64)
    elif out.shape != (n, n):
        raise ValueError(f"out must have shape {(n, n)}, got {out.shape}")

    if metric in ("euclidean", "sqeuclidean"):
        if is_sparse:
            return _sparse_euclidean(
                X, out, squared=metric == "sqeuclidean", block=block,
                panel_done=panel_done,
            )
        return euclidean_distances(
            X, squared=metric == "sqeuclidean", out=out, block_rows=block,
            panel_done=panel_done,
        )
    if metric == "cosine" and is_sparse:
        return _sparse_cosine(X, out, block=block, panel_done=panel_done)
    if metric == "manhattan":
        for start in range(0, n, block):
            stop = min(start + block, n)
            out[start:stop] = _manhattan_panel(X[start:stop], X)
            if panel_done is not None:
                panel_done(start, stop)
        return out
    if metric == "cosine":
        norms = np.linalg.norm(X, axis=1)
        norms = np.where(norms == 0.0, 1.0, norms)
        normalised = X / norms[:, None]
        for start in range(0, n, block):
            stop = min(start + block, n)
            similarity = np.clip(normalised[start:stop] @ normalised.T, -1.0, 1.0)
            panel = 1.0 - similarity
            panel[np.arange(stop - start), np.arange(start, stop)] = 0.0
            out[start:stop] = panel
            if panel_done is not None:
                panel_done(start, stop)
        return out
    raise ValueError(f"unknown metric {metric!r}")

#: Metrics accepted by :func:`pairwise_distances`.
PAIRWISE_METRICS = ("euclidean", "sqeuclidean", "manhattan", "cosine", "precomputed")

#: Metrics accepted by the scipy CSR fast path (sparse dots, no densify).
SPARSE_METRICS = ("euclidean", "sqeuclidean", "cosine")

#: Metrics a ``[dataset]`` config table may select (the experiment surface;
#: ``sqeuclidean``/``manhattan`` stay kernel-internal).
DATASET_METRICS = ("euclidean", "cosine", "precomputed")


def diagonal_mahalanobis_distances(
    X: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray,
    *,
    squared: bool = True,
) -> np.ndarray:
    """Distances of every point to every center under per-center diagonal metrics.

    MPCK-Means learns one diagonal metric ``A_h = diag(weights[h])`` per
    cluster ``h``; the (squared) distance of point ``x`` to center ``m_h``
    is ``(x - m_h)^T A_h (x - m_h)``.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix.
    centers:
        ``(k, d)`` cluster centers.
    weights:
        ``(k, d)`` positive diagonal metric weights, one row per cluster.
    squared:
        Return squared distances (default, as used in the MPCK objective).

    Returns
    -------
    ndarray
        ``(n, k)`` distance matrix.
    """
    X = np.asarray(X, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if centers.shape != weights.shape:
        raise ValueError(
            f"centers and weights must have the same shape, got {centers.shape} and {weights.shape}"
        )
    # Batched over all centers at once: one (n, k, d) broadcast difference
    # contracted in a single einsum instead of a Python loop over clusters.
    diff = X[:, None, :] - centers[None, :, :]
    distances = np.einsum("nkd,kd,nkd->nk", diff, weights, diff)
    np.maximum(distances, 0.0, out=distances)
    if squared:
        return distances
    return np.sqrt(distances, out=distances)


def weighted_squared_distance(x: np.ndarray, y: np.ndarray, weights: np.ndarray) -> float:
    """Squared distance between two vectors under a diagonal metric."""
    diff = np.asarray(x, dtype=np.float64) - np.asarray(y, dtype=np.float64)
    return float(np.dot(diff * np.asarray(weights, dtype=np.float64), diff))


def k_nearest_distances(
    distance_matrix: np.ndarray, k: int, *, block_rows: int | None = None
) -> np.ndarray:
    """Distance to the ``k``-th nearest neighbour for every object.

    The object itself is counted as its own 1st neighbour (distance 0), so
    ``k_nearest_distances(D, min_pts)`` yields exactly the OPTICS/HDBSCAN
    core distance for ``MinPts = k``.

    Parameters
    ----------
    distance_matrix:
        ``(n, n)`` distance matrix (an in-RAM array or a read-only
        ``np.memmap``).
    k:
        Neighbour rank, ``1 <= k <= n``.
    block_rows:
        When given, the row-wise partition runs block-at-a-time so the
        peak temporary is ``(block_rows, n)`` instead of the full-matrix
        copy ``np.partition`` makes.  Results are bit-identical either way
        (the selection is independent per row); the streaming variant is
        what the blockwise/memmap distance backends use.
    """
    # Plain asarray: zero-copy for any ndarray/memmap, converts array-likes.
    distance_matrix = np.asarray(distance_matrix)
    n = distance_matrix.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if block_rows is None:
        distance_matrix = np.asarray(distance_matrix, dtype=np.float64)
        partitioned = np.partition(distance_matrix, k - 1, axis=1)
        return partitioned[:, k - 1]
    block = _resolve_block_rows(block_rows)
    core = np.empty(n, dtype=np.float64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        rows = np.asarray(distance_matrix[start:stop], dtype=np.float64)
        core[start:stop] = np.partition(rows, k - 1, axis=1)[:, k - 1]
    return core
