"""Agglomerative hierarchical clustering (single / complete / average linkage).

An additional clustering paradigm for the extension experiments: cutting an
agglomerative dendrogram at ``n_clusters`` gives another family of candidate
models whose parameter CVCP can select, and whose hierarchy FOSC can consume
through :meth:`AgglomerativeClustering.merge_tree_`.

The implementation is the classic O(n³)/O(n²) Lance–Williams update on a
dense distance matrix, which is ample for the paper-scale data sets
(≤ 400 objects).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.utils.cache import cached_pairwise_distances
from repro.constraints.constraint import ConstraintSet
from repro.utils.rng import RandomStateLike
from repro.utils.validation import check_array_2d, check_positive_int

_LINKAGES = ("single", "complete", "average")


class AgglomerativeClustering(BaseClusterer):
    """Bottom-up hierarchical clustering cut at a fixed number of clusters.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to return (the parameter CVCP sweeps).
    linkage:
        ``"single"``, ``"complete"`` or ``"average"``.
    metric:
        Distance metric for the initial dissimilarity matrix.
    distance_backend:
        Storage tier for the initial matrix (see
        :mod:`repro.core.distance_backend`).  The Lance–Williams update
        mutates a dense in-RAM working copy regardless, so non-dense tiers
        only bound the *initial* matrix computation here.

    Attributes
    ----------
    labels_:
        Flat cluster labels.
    merge_tree_:
        ``(n-1, 4)`` scipy-style merge records of the full dendrogram.
    """

    tuned_parameter = "n_clusters"

    def __init__(
        self,
        n_clusters: int = 2,
        *,
        linkage: str = "average",
        metric: str = "euclidean",
        distance_backend: str | None = None,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.metric = metric
        self.distance_backend = distance_backend
        self.random_state = random_state

    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "AgglomerativeClustering":
        """Cluster ``X``; side information is ignored (unsupervised baseline)."""
        X = check_array_2d(X)
        n_clusters = check_positive_int(self.n_clusters, name="n_clusters")
        if self.linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}, got {self.linkage!r}")
        n_samples = X.shape[0]
        if n_clusters > n_samples:
            raise ValueError(
                f"n_clusters={n_clusters} exceeds the number of samples {n_samples}"
            )

        distances = cached_pairwise_distances(
            X, metric=self.metric, distance_backend=self.distance_backend
        )
        self.merge_tree_, merge_members = self._build_dendrogram(distances)
        self.labels_ = self._cut(merge_members, n_samples, n_clusters)
        return self

    # ------------------------------------------------------------------
    def _build_dendrogram(self, distances: np.ndarray) -> tuple[np.ndarray, list[list[int]]]:
        n_samples = distances.shape[0]
        # Working copy with the diagonal masked out.
        working = distances.astype(np.float64).copy()
        np.fill_diagonal(working, np.inf)

        active = {index: index for index in range(n_samples)}       # slot -> node id
        members: dict[int, list[int]] = {index: [index] for index in range(n_samples)}
        sizes = {index: 1 for index in range(n_samples)}
        merges = np.empty((max(n_samples - 1, 0), 4), dtype=np.float64)
        merge_members: list[list[int]] = []

        next_node = n_samples
        for merge_index in range(n_samples - 1):
            flat = int(np.argmin(working))
            row, column = divmod(flat, n_samples)
            distance = working[row, column]

            node_a, node_b = active[row], active[column]
            merged = members[node_a] + members[node_b]
            merges[merge_index] = (node_a, node_b, distance, len(merged))
            merge_members.append(merged)

            # Lance–Williams update of the row that survives (``row``).
            for other in range(n_samples):
                if other == row or other == column:
                    continue
                # Slots whose cluster was already merged away are marked inf.
                if np.isinf(working[row, other]) and np.isinf(working[column, other]):
                    continue
                d_a = working[row, other]
                d_b = working[column, other]
                if self.linkage == "single":
                    new_distance = min(d_a, d_b)
                elif self.linkage == "complete":
                    new_distance = max(d_a, d_b)
                else:  # average
                    size_a, size_b = sizes[node_a], sizes[node_b]
                    new_distance = (size_a * d_a + size_b * d_b) / (size_a + size_b)
                working[row, other] = new_distance
                working[other, row] = new_distance

            # Deactivate ``column``.
            working[column, :] = np.inf
            working[:, column] = np.inf
            working[row, row] = np.inf

            active[row] = next_node
            members[next_node] = merged
            sizes[next_node] = len(merged)
            del active[column]
            next_node += 1
        return merges, merge_members

    @staticmethod
    def _cut(merge_members: list[list[int]], n_samples: int, n_clusters: int) -> np.ndarray:
        """Undo the last ``n_clusters - 1`` merges to obtain flat clusters."""
        from repro.utils.disjoint_set import DisjointSet

        keep = max(len(merge_members) - (n_clusters - 1), 0)
        ds = DisjointSet(range(n_samples))
        for merged in merge_members[:keep]:
            anchor = merged[0]
            for index in merged[1:]:
                ds.union(anchor, index)
        labels = np.empty(n_samples, dtype=np.int64)
        root_to_label: dict[int, int] = {}
        for index in range(n_samples):
            root = ds.find(index)
            if root not in root_to_label:
                root_to_label[root] = len(root_to_label)
            labels[index] = root_to_label[root]
        return labels
