"""Seeded and Constrained K-Means (Basu, Banerjee & Mooney, ICML 2002).

These are the classic semi-supervised k-means variants that consume a
*partial labelling* directly (rather than pairwise constraints):

* **Seeded-KMeans** — the labelled objects ("seeds") only initialise the
  centroids; afterwards plain Lloyd iterations run and seeds may drift to
  other clusters.  Appropriate when the seeds may be noisy.
* **Constrained-KMeans** — the seeds additionally stay clamped to their
  seed cluster in every assignment step.  Appropriate when the seeds are
  trusted.

They complement MPCK-Means in the extension experiments: the CVCP paper's
Scenario I explicitly allows algorithms "that use labels directly", which
these two do (the ``use_labels_directly=True`` path of
:class:`repro.core.cvcp.CVCP`).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.distances import euclidean_distances
from repro.clustering.kmeans import kmeans_plus_plus_init
from repro.constraints.closure import transitive_closure
from repro.constraints.constraint import ConstraintSet
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_array_2d, check_positive_int


class SeededKMeans(BaseClusterer):
    """K-means initialised (and optionally constrained) by labelled seeds.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.  Seed classes are mapped to the first
        clusters; if there are more seed classes than ``k`` the largest
        ``k`` classes are used as seeds and the rest are ignored.
    clamp_seeds:
        ``False`` gives Seeded-KMeans (seeds only initialise),
        ``True`` gives Constrained-KMeans (seeds stay in their cluster).
    max_iter:
        Maximum Lloyd iterations.
    tol:
        Relative inertia-improvement tolerance for convergence.
    random_state:
        Seed or generator (used only when extra centroids must be invented
        because there are fewer seed classes than clusters).

    Notes
    -----
    If no ``seed_labels`` are provided at fit time, the algorithm reduces to
    plain k-means with k-means++ initialisation.  When ``constraints`` are
    provided instead of labels, seed groups are derived from the must-link
    components of the transitive closure (cannot-links are ignored), so the
    estimator stays usable inside CVCP's constraint scenario.
    """

    tuned_parameter = "n_clusters"

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        clamp_seeds: bool = False,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: RandomStateLike = None,
    ) -> None:
        self.n_clusters = n_clusters
        self.clamp_seeds = clamp_seeds
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "SeededKMeans":
        """Cluster ``X`` initialised from a partial labelling.

        Parameters
        ----------
        X:
            ``(n, d)`` data matrix.
        constraints:
            Accepted for interface compatibility; the must-link components
            of their transitive closure are converted into seed groups.
        seed_labels:
            ``{object index: class}`` partial labelling — the primary side
            information of the seeded family.  Seed classes initialise the
            centroids (and, for :class:`ConstrainedKMeans`, clamp their
            objects' assignments).
        """
        X = check_array_2d(X)
        n_clusters = check_positive_int(self.n_clusters, name="n_clusters")
        if n_clusters > X.shape[0]:
            raise ValueError(
                f"n_clusters={n_clusters} exceeds the number of samples {X.shape[0]}"
            )
        rng = check_random_state(self.random_state)

        seed_groups = self._seed_groups(constraints, seed_labels)
        centers, seed_assignment = self._initial_centers(X, n_clusters, seed_groups, rng)

        previous_inertia = np.inf
        labels = np.zeros(X.shape[0], dtype=np.int64)
        for _ in range(self.max_iter):
            distances = euclidean_distances(X, centers, squared=True)
            labels = np.argmin(distances, axis=1).astype(np.int64)
            if self.clamp_seeds:
                for index, cluster in seed_assignment.items():
                    labels[index] = cluster
            inertia = float(distances[np.arange(X.shape[0]), labels].sum())
            for h in range(n_clusters):
                members = labels == h
                if np.any(members):
                    centers[h] = X[members].mean(axis=0)
            if previous_inertia - inertia <= self.tol * max(previous_inertia, 1e-12):
                break
            previous_inertia = inertia

        self.labels_ = labels
        self.cluster_centers_ = centers
        self.inertia_ = float(
            euclidean_distances(X, centers, squared=True)[np.arange(X.shape[0]), labels].sum()
        )
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def _seed_groups(
        constraints: ConstraintSet | None,
        seed_labels: dict[int, int] | None,
    ) -> list[list[int]]:
        """Groups of object indices believed to share a cluster."""
        if seed_labels:
            by_class: dict[int, list[int]] = {}
            for index, label in seed_labels.items():
                by_class.setdefault(int(label), []).append(int(index))
            return sorted(by_class.values(), key=len, reverse=True)
        if constraints is not None and len(constraints):
            from repro.constraints.closure import must_link_components

            closed = transitive_closure(constraints, strict=False)
            components = [c for c in must_link_components(closed) if len(c) > 1]
            return sorted(components, key=len, reverse=True)
        return []

    def _initial_centers(
        self,
        X: np.ndarray,
        n_clusters: int,
        seed_groups: list[list[int]],
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, dict[int, int]]:
        centers = np.empty((n_clusters, X.shape[1]), dtype=np.float64)
        seed_assignment: dict[int, int] = {}
        used = 0
        for cluster, group in enumerate(seed_groups[:n_clusters]):
            centers[cluster] = X[group].mean(axis=0)
            for index in group:
                seed_assignment[index] = cluster
            used += 1
        if used < n_clusters:
            extra = kmeans_plus_plus_init(X, n_clusters, rng)
            centers[used:] = extra[used:]
        return centers, seed_assignment


class ConstrainedKMeans(SeededKMeans):
    """Constrained-KMeans: Seeded-KMeans with seeds clamped to their cluster."""

    def __init__(
        self,
        n_clusters: int = 3,
        *,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: RandomStateLike = None,
    ) -> None:
        super().__init__(
            n_clusters,
            clamp_seeds=True,
            max_iter=max_iter,
            tol=tol,
            random_state=random_state,
        )

    @classmethod
    def _param_names(cls) -> list[str]:
        # ``clamp_seeds`` is fixed by the subclass and must not be exposed as
        # a constructor parameter for cloning.
        return ["n_clusters", "max_iter", "tol", "random_state"]
