"""Clustering algorithms implemented from scratch.

The paper evaluates CVCP with two representative semi-supervised clustering
algorithms; both are implemented here together with the substrates they
need:

* :class:`~repro.clustering.mpckmeans.MPCKMeans` — metric pairwise
  constrained k-means (Bilenko, Basu & Mooney, ICML 2004), parameterised by
  the number of clusters ``k``.
* :class:`~repro.clustering.fosc.FOSCOpticsDend` — density-based
  semi-supervised clustering that extracts an optimal flat solution from an
  OPTICS-derived dendrogram (Campello, Moulavi, Zimek & Sander, DMKD 2013),
  parameterised by ``min_pts``.

Additional algorithms are provided as substrates and baselines:
plain :class:`~repro.clustering.kmeans.KMeans`,
:class:`~repro.clustering.copkmeans.COPKMeans` (hard constraints),
:class:`~repro.clustering.optics.OPTICS`, and the density hierarchy
machinery in :mod:`repro.clustering.hierarchy`.
"""

from repro.clustering.base import BaseClusterer, ClusteringResult
from repro.clustering.kernels import (
    KERNEL_MODES,
    DEFAULT_KERNEL_MODE,
    KERNELS_ENV_VAR,
    resolve_kernel_mode,
)
from repro.clustering.distances import (
    pairwise_distances,
    euclidean_distances,
    diagonal_mahalanobis_distances,
)
from repro.clustering.kmeans import KMeans, kmeans_plus_plus_init
from repro.clustering.copkmeans import COPKMeans
from repro.clustering.mpckmeans import MPCKMeans
from repro.clustering.seeded_kmeans import SeededKMeans, ConstrainedKMeans
from repro.clustering.agglomerative import AgglomerativeClustering
from repro.clustering.optics import OPTICS
from repro.clustering.hierarchy import (
    DensityHierarchy,
    mutual_reachability,
    build_single_linkage_tree,
    CondensedTree,
    CondensedTreeArrays,
)
from repro.clustering.fosc import FOSC, FOSCOpticsDend

__all__ = [
    "BaseClusterer",
    "ClusteringResult",
    "KERNEL_MODES",
    "DEFAULT_KERNEL_MODE",
    "KERNELS_ENV_VAR",
    "resolve_kernel_mode",
    "pairwise_distances",
    "euclidean_distances",
    "diagonal_mahalanobis_distances",
    "KMeans",
    "kmeans_plus_plus_init",
    "COPKMeans",
    "MPCKMeans",
    "SeededKMeans",
    "ConstrainedKMeans",
    "AgglomerativeClustering",
    "OPTICS",
    "DensityHierarchy",
    "mutual_reachability",
    "build_single_linkage_tree",
    "CondensedTree",
    "CondensedTreeArrays",
    "FOSC",
    "FOSCOpticsDend",
]
