"""FOSC: Framework for Optimal Selection of Clusters from hierarchies.

Campello, Moulavi, Zimek & Sander, *A framework for semi-supervised and
unsupervised optimal extraction of clusters from hierarchies*, Data Mining
and Knowledge Discovery 27(3), 2013.  Reference [10] of the CVCP paper and
the density-based algorithm ("FOSC-OPTICSDend") used in its evaluation.

Given a cluster hierarchy (here: the condensed density hierarchy of
:mod:`repro.clustering.hierarchy`) and a set of should-link / should-not-link
constraints, FOSC selects the antichain of clusters (at most one cluster per
root-to-leaf path) that maximises the total constraint satisfaction; in the
absence of side information it falls back to the unsupervised
excess-of-mass (stability) objective, which makes the unsupervised special
case equivalent to HDBSCAN*'s cluster extraction.

The optimisation is the paper's bottom-up dynamic program: for every node
the best achievable value of its subtree is either the node's own quality
(select the node, discarding its descendants) or the sum of its children's
best values (don't select the node).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering import kernels as _kernels
from repro.clustering.base import BaseClusterer
from repro.clustering.hierarchy import (
    CondensedTree,
    CondensedTreeArrays,
    TreeStructure,
    cached_tree_structure,
)
from repro.constraints.closure import transitive_closure
from repro.constraints.constraint import MUST_LINK, ConstraintSet
from repro.utils.rng import RandomStateLike
from repro.utils.validation import check_array_2d, check_positive_int


@dataclass
class FOSCSelection:
    """Outcome of a FOSC extraction.

    Attributes
    ----------
    selected_clusters:
        Condensed-tree identifiers of the selected clusters.
    labels:
        Flat labels (noise = ``-1``).
    objective:
        Total objective value of the selection.
    used_constraints:
        Whether the semi-supervised objective was used (false means the
        unsupervised stability fallback was used).
    """

    selected_clusters: list[int]
    labels: np.ndarray
    objective: float
    used_constraints: bool


class FOSC:
    """Optimal cluster extraction from a condensed hierarchy.

    Parameters
    ----------
    stability_weight:
        Weight of the (normalised) unsupervised stability mixed into the
        per-cluster quality.  The default ``1e-3`` only breaks ties between
        selections that satisfy constraints equally well; setting it to
        ``0.5`` yields the mixed objective discussed as an extension in the
        FOSC paper, and ``1.0`` with no constraints is pure HDBSCAN*.
    """

    def __init__(self, *, stability_weight: float = 1e-3) -> None:
        if stability_weight < 0:
            raise ValueError(f"stability_weight must be >= 0, got {stability_weight}")
        self.stability_weight = stability_weight

    # ------------------------------------------------------------------
    def extract(
        self,
        tree: CondensedTree | CondensedTreeArrays,
        constraints: ConstraintSet | None = None,
    ) -> FOSCSelection:
        """Select the optimal antichain of clusters from ``tree``.

        Parameters
        ----------
        tree:
            Either a reference :class:`~repro.clustering.hierarchy.CondensedTree`
            (processed with the interpreter-bound dynamic program below) or
            an array-backed
            :class:`~repro.clustering.hierarchy.CondensedTreeArrays`
            (processed with the vectorized FOSC kernel).  Both paths
            return bit-identical selections, labels and objectives.
        constraints:
            Should-link / should-not-link side information; with an empty
            set the unsupervised stability objective is used.
        """
        constraints = constraints if constraints is not None else ConstraintSet()
        if isinstance(tree, CondensedTreeArrays):
            i_idx, j_idx, kinds = constraints.as_arrays()
            selected, labels, objective, used = _kernels.fosc_extract(
                tree.arrays, i_idx, j_idx, kinds == MUST_LINK, self.stability_weight
            )
            return FOSCSelection(selected, labels, objective, used)
        use_constraints = len(constraints) > 0

        quality = self._cluster_qualities(tree, constraints, use_constraints)
        selected, objective = self._optimal_selection(tree, quality)

        if not selected:
            # Degenerate hierarchy (no significant split): everything is one
            # cluster rather than all-noise, which matches what OPTICS-based
            # extraction would return for a structureless data set.
            labels = np.zeros(tree.n_samples, dtype=np.int64)
            root_members = tree.root.members
            in_root = np.zeros(tree.n_samples, dtype=bool)
            in_root[np.fromiter(root_members, dtype=np.intp, count=len(root_members))] = True
            labels[~in_root] = -1
            return FOSCSelection([0], labels, objective, use_constraints)

        labels = tree.labels_for_selection(selected)
        return FOSCSelection(selected, labels, objective, use_constraints)

    # ------------------------------------------------------------------
    def _cluster_qualities(
        self,
        tree: CondensedTree,
        constraints: ConstraintSet,
        use_constraints: bool,
    ) -> dict[int, float]:
        """Per-cluster quality: constraint satisfaction plus scaled stability."""
        stabilities = {cid: tree.stability(cid) for cid in tree.selectable_clusters()}
        max_stability = max(stabilities.values(), default=0.0)
        if max_stability <= 0.0:
            max_stability = 1.0

        qualities: dict[int, float] = {}
        for cluster_id in tree.selectable_clusters():
            normalised_stability = stabilities[cluster_id] / max_stability
            if use_constraints:
                satisfaction = self._constraint_satisfaction(
                    tree.clusters[cluster_id].members, constraints
                )
                qualities[cluster_id] = satisfaction + self.stability_weight * normalised_stability
            else:
                qualities[cluster_id] = normalised_stability
        return qualities

    @staticmethod
    def _constraint_satisfaction(members: set[int], constraints: ConstraintSet) -> float:
        """Constraint-endpoint satisfaction credit of one candidate cluster.

        Following the semi-supervised FOSC objective, each constraint
        contributes through its endpoints that fall inside the candidate
        cluster: a must-link is rewarded only when both endpoints are inside
        (weight 1), a cannot-link endpoint inside the cluster is rewarded
        with weight 1/2 when its partner is outside.  The credit is
        normalised by the total number of constraints so values are
        comparable across hierarchies.
        """
        if not len(constraints):
            return 0.0
        credit = 0.0
        for constraint in constraints:
            in_i = constraint.i in members
            in_j = constraint.j in members
            if constraint.is_must_link:
                if in_i and in_j:
                    credit += 1.0
            else:
                if in_i and in_j:
                    continue
                if in_i or in_j:
                    credit += 0.5
        return credit / len(constraints)

    @staticmethod
    def _optimal_selection(
        tree: CondensedTree, quality: dict[int, float]
    ) -> tuple[list[int], float]:
        """Bottom-up dynamic program over the condensed tree."""
        best_value: dict[int, float] = {}
        keep_node: dict[int, bool] = {}

        # Children always have larger identifiers than their parents, so
        # descending id order is a valid bottom-up traversal.
        for cluster_id in sorted(tree.selectable_clusters(), reverse=True):
            cluster = tree.clusters[cluster_id]
            own = quality[cluster_id]
            children_value = sum(best_value[child] for child in cluster.children)
            if cluster.children and children_value > own:
                best_value[cluster_id] = children_value
                keep_node[cluster_id] = False
            else:
                best_value[cluster_id] = own
                keep_node[cluster_id] = True

        selected: list[int] = []
        stack = list(tree.root.children)
        total = sum(best_value[child] for child in tree.root.children)
        while stack:
            cluster_id = stack.pop()
            if keep_node[cluster_id]:
                selected.append(cluster_id)
            else:
                stack.extend(tree.clusters[cluster_id].children)
        return sorted(selected), float(total)


class FOSCOpticsDend(BaseClusterer):
    """FOSC-OPTICSDend: semi-supervised density-based clustering.

    This is the density-based algorithm evaluated in the CVCP paper: the
    data is turned into an OPTICS-equivalent density dendrogram (mutual
    reachability with smoothing parameter ``min_pts``) and FOSC extracts the
    flat partition that best agrees with the provided constraints (or, with
    no constraints, the most stable clusters).

    Parameters
    ----------
    min_pts:
        The MinPts density parameter (what CVCP selects; the paper sweeps
        ``[3, 6, 9, 12, 15, 18, 21, 24]``).
    min_cluster_size:
        Minimum cluster size of the condensed hierarchy; defaults to
        ``min_pts``.
    stability_weight:
        Tie-breaking weight of the unsupervised stability term, passed to
        :class:`FOSC`.
    metric:
        Distance metric.
    kernels:
        Kernel implementation for the hierarchy construction and FOSC
        extraction — ``"vectorized"`` (default) or ``"reference"``;
        ``None`` consults ``REPRO_KERNELS``.  Results are bit-identical
        either way; see :mod:`repro.clustering.kernels`.
    distance_backend:
        Storage tier for the distance matrices — ``"dense"`` (default),
        ``"blockwise"``, ``"memmap"`` or ``"neighbors"``; ``None``
        consults ``REPRO_DISTANCE_BACKEND``.  The exact tiers produce
        bit-identical labels; ``"neighbors"`` builds the hierarchy from a
        sparse epsilon-bounded k-NN graph and is approximate-by-contract
        (see :mod:`repro.core.neighbor_graph`).
    epsilon / k_neighbors:
        Neighbour-graph radius and out-degree for the ``"neighbors"``
        tier (``None`` consults ``REPRO_NEIGHBOR_EPSILON`` /
        ``REPRO_NEIGHBOR_K``); ignored by the exact tiers.

    Attributes
    ----------
    labels_:
        Flat cluster labels (noise = ``-1``).
    structure_:
        The :class:`~repro.clustering.hierarchy.TreeStructure` the labels
        were extracted from — the cached *structure phase* of the fit
        (core distances, MST, condensed tree), shared across every
        constraint set via :func:`~repro.clustering.hierarchy.cached_tree_structure`.
    hierarchy_:
        Alias of ``structure_`` (the pre-structure-cache name).
    selection_:
        The :class:`FOSCSelection` describing which hierarchy nodes were
        chosen.
    """

    tuned_parameter = "min_pts"

    #: The CVCP driver warms and shares this estimator's structure phase
    #: through the artifact store (see :meth:`warm_structure`).
    structure_caching = True

    def __init__(
        self,
        min_pts: int = 5,
        *,
        min_cluster_size: int | None = None,
        stability_weight: float = 1e-3,
        metric: str = "euclidean",
        kernels: str | None = None,
        distance_backend: str | None = None,
        epsilon: float | None = None,
        k_neighbors: int | None = None,
        random_state: RandomStateLike = None,
    ) -> None:
        self.min_pts = min_pts
        self.min_cluster_size = min_cluster_size
        self.stability_weight = stability_weight
        self.metric = metric
        self.kernels = kernels
        self.distance_backend = distance_backend
        self.epsilon = epsilon
        self.k_neighbors = k_neighbors
        self.random_state = random_state

    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "FOSCOpticsDend":
        """Cluster ``X`` guided by constraints (or a partial labelling)."""
        X = check_array_2d(X)
        check_positive_int(self.min_pts, name="min_pts")

        constraints = constraints if constraints is not None else ConstraintSet()
        if seed_labels:
            from repro.constraints.generation import constraints_from_labels

            constraints = constraints.merged_with(constraints_from_labels(seed_labels))
        constraints = transitive_closure(constraints, strict=False)

        # The structure phase (distances → core distances → MST → condensed
        # tree) is constraint-independent, so it is served from the
        # per-process memo; only the FOSC extraction below depends on the
        # constraint set.  Worker processes never touch the artifact store —
        # store-backed warming happens in the submitting process (see
        # :meth:`warm_structure` and the CVCP driver).
        structure = cached_tree_structure(
            X,
            self._effective_min_pts(X),
            min_cluster_size=self.min_cluster_size,
            metric=self.metric,
            kernels=self.kernels,
            distance_backend=self.distance_backend,
            epsilon=self.epsilon,
            k_neighbors=self.k_neighbors,
        )
        fosc = FOSC(stability_weight=self.stability_weight)
        selection = fosc.extract(structure.condensed_tree, constraints)

        self.structure_ = structure
        self.hierarchy_ = structure
        self.selection_ = selection
        self.labels_ = selection.labels
        return self

    # ------------------------------------------------------------------
    def _effective_min_pts(self, X: np.ndarray) -> int:
        """MinPts clamped to the sample count (tiny folds stay fittable)."""
        return min(self.min_pts, max(2, X.shape[0] - 1))

    def warm_structure(self, X: np.ndarray, store) -> TreeStructure:
        """Warm this estimator's structure phase through an artifact store.

        Probes the store's ``"structure"`` kind first (recording a per-kind
        hit/miss), decodes a persisted structure into the per-process memo,
        or builds and writes one through.  The CVCP driver calls this in
        the submitting process before launching the grid, so serial/thread
        cells and fork-started process workers reuse the warmed memo and
        re-runs — under *any* oracle or constraint set — reuse the
        persisted artifact.
        """
        X = check_array_2d(X)
        return cached_tree_structure(
            X,
            self._effective_min_pts(X),
            min_cluster_size=self.min_cluster_size,
            metric=self.metric,
            kernels=self.kernels,
            distance_backend=self.distance_backend,
            epsilon=self.epsilon,
            k_neighbors=self.k_neighbors,
            store=store,
        )
