"""Result containers and baseline selectors for model selection.

* :class:`ParameterEvaluation` / :class:`CVCPResult` — the cross-validation
  results produced by :class:`repro.core.cvcp.CVCP`.
* :class:`SilhouetteSelector` — the Silhouette-coefficient baseline the
  paper compares against for MPCKMeans (Section 4.3): run the algorithm for
  every candidate parameter (with all side information) and keep the
  parameter whose partition has the highest mean silhouette width.
* :func:`expected_quality` — the "expected performance when having to guess
  the right parameter from the given range": the average external quality
  over the whole parameter range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.constraints.constraint import ConstraintSet
from repro.evaluation.internal import silhouette_score
from repro.utils.validation import check_positive_int


@dataclass
class ParameterEvaluation:
    """Cross-validated evaluation of a single parameter value.

    Attributes
    ----------
    value:
        The parameter value (e.g. ``k=4`` or ``min_pts=9``).
    fold_scores:
        Internal classification score of every fold.
    """

    value: Any
    fold_scores: list[float] = field(default_factory=list)

    @property
    def mean_score(self) -> float:
        """Mean internal score over folds (the quantity CVCP maximises)."""
        return float(np.mean(self.fold_scores)) if self.fold_scores else 0.0

    @property
    def std_score(self) -> float:
        """Standard deviation of the fold scores (population std)."""
        return float(np.std(self.fold_scores)) if self.fold_scores else 0.0


@dataclass
class CVCPResult:
    """Full outcome of a CVCP parameter sweep.

    Attributes
    ----------
    parameter_name:
        Name of the swept parameter (``"n_clusters"``, ``"min_pts"``, ...).
    evaluations:
        One :class:`ParameterEvaluation` per candidate value, in sweep order.
    n_folds:
        Number of cross-validation folds actually used.
    scenario:
        ``"labels"`` or ``"constraints"`` — which input scenario was used.
    """

    parameter_name: str
    evaluations: list[ParameterEvaluation]
    n_folds: int
    scenario: str

    @property
    def values(self) -> list[Any]:
        """The candidate parameter values, in sweep order."""
        return [evaluation.value for evaluation in self.evaluations]

    @property
    def mean_scores(self) -> np.ndarray:
        """Mean cross-validated score per candidate value, in sweep order."""
        return np.asarray([evaluation.mean_score for evaluation in self.evaluations])

    @property
    def best_index(self) -> int:
        """Index of the winning value (ties broken towards the smaller value)."""
        if not self.evaluations:
            raise ValueError("no parameter values were evaluated")
        scores = self.mean_scores
        return int(np.argmax(scores))

    @property
    def best_value(self) -> Any:
        """The winning parameter value."""
        return self.evaluations[self.best_index].value

    @property
    def best_score(self) -> float:
        """Mean cross-validated score of the winning value."""
        return self.evaluations[self.best_index].mean_score

    def as_table(self) -> list[tuple[Any, float, float]]:
        """``(value, mean score, std)`` rows, handy for printing."""
        return [
            (evaluation.value, evaluation.mean_score, evaluation.std_score)
            for evaluation in self.evaluations
        ]


class SilhouetteSelector:
    """Select a parameter value by maximising the Silhouette coefficient.

    The candidate partitions are produced by the *same* semi-supervised
    algorithm with the *same* side information CVCP would use — only the
    selection criterion differs, exactly as in the paper's Sil-x baseline.

    Parameters
    ----------
    estimator:
        Template clusterer (cloned per candidate value).
    parameter_name:
        Name of the constructor parameter to sweep; defaults to the
        estimator's declared ``tuned_parameter``.
    parameter_values:
        Candidate values.
    """

    def __init__(
        self,
        estimator: BaseClusterer,
        parameter_values: Sequence[Any],
        *,
        parameter_name: str | None = None,
    ) -> None:
        if not list(parameter_values):
            raise ValueError("parameter_values must not be empty")
        self.estimator = estimator
        self.parameter_values = list(parameter_values)
        self.parameter_name = parameter_name or estimator.tuned_parameter
        if not self.parameter_name:
            raise ValueError(
                "parameter_name must be given when the estimator does not declare a tuned_parameter"
            )

    def fit(
        self,
        X: np.ndarray,
        constraints: ConstraintSet | None = None,
        seed_labels: dict[int, int] | None = None,
    ) -> "SilhouetteSelector":
        """Run the sweep; exposes ``best_value_``, ``best_estimator_``, ``labels_``."""
        scores: list[float] = []
        estimators: list[BaseClusterer] = []
        for value in self.parameter_values:
            estimator = self.estimator.clone(**{self.parameter_name: value})
            estimator.fit(X, constraints=constraints, seed_labels=seed_labels)
            metric = estimator.get_params().get("metric", "euclidean") or "euclidean"
            scores.append(silhouette_score(X, estimator.labels_, metric=metric))
            estimators.append(estimator)
        best_index = int(np.argmax(scores))
        self.scores_ = scores
        self.best_value_ = self.parameter_values[best_index]
        self.best_score_ = scores[best_index]
        self.best_estimator_ = estimators[best_index]
        self.labels_ = estimators[best_index].labels_
        return self


def expected_quality(qualities: Sequence[float]) -> float:
    """Average quality over a parameter range (the paper's "Expected" reference).

    The expected performance when one must guess the parameter uniformly at
    random from the considered range is simply the mean of the per-value
    external qualities.
    """
    qualities = list(qualities)
    if not qualities:
        raise ValueError("qualities must not be empty")
    return float(np.mean(qualities))


def parameter_range_for_k(n_classes_upper_bound: int) -> list[int]:
    """The paper's range of k values: ``2 .. M`` for an upper bound ``M``."""
    check_positive_int(n_classes_upper_bound, name="n_classes_upper_bound", minimum=2)
    return list(range(2, n_classes_upper_bound + 1))


#: The paper's MinPts range for density-based clustering.
MINPTS_RANGE: tuple[int, ...] = (3, 6, 9, 12, 15, 18, 21, 24)
