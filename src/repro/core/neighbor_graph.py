"""Sparse epsilon-bounded k-NN graphs: the ``neighbors`` distance tier.

Every exact distance tier (``dense``/``blockwise``/``memmap``) still pays
for all ``n²`` pairwise entries — the memmap tier only moved the storage
out of RAM.  This module provides the sub-quadratic substrate behind
``distance_backend="neighbors"``: a KD-tree epsilon-bounded k-NN graph from
which the density pipeline derives *sparse* core distances, a sparse
mutual-reachability graph (scipy CSR), a sparse minimum spanning tree and
an epsilon-bounded OPTICS sweep.  Storage and work scale with ``n·k``
instead of ``n²``, which is what makes an ``n = 100000`` FOSC fit feasible
on a laptop (see ``repro bench scale`` and ``BENCH_scale.json``).

Approximate-by-contract
-----------------------
Unlike the exact tiers, the ``neighbors`` tier is **not** bit-identical to
``dense`` in general: points only see their ``k_neighbors`` nearest
neighbours within radius ``epsilon``, so density estimates and merges
beyond that horizon differ.  The contract, enforced by tests and the scale
bench (see ``docs/determinism.md``), has two regimes:

* **Exhaustive regime** (``k_neighbors >= n``): the graph is built from the
  same canonical row-panel formula as the exact tiers
  (:func:`repro.clustering.distances.pairwise_distances`), so when
  ``epsilon`` also exceeds the data diameter the sparse core distances,
  mutual-reachability entries and MST edge weights equal the dense ones
  entry-for-entry and OPTICS/FOSC results are identical.
* **Practical regime** (``k_neighbors < n``): neighbour sets come from a
  :class:`scipy.spatial.cKDTree` (exact nearest neighbours, but distance
  values may differ from the panel formula in the last ulp) and results
  are gated by ARI-vs-exact floors in ``repro bench scale``.

Because results depend on ``epsilon``/``k_neighbors``, trials run under
this tier are fingerprinted *with* those parameters in the artifact store —
the exact tiers deliberately share cache entries; this tier never shares
with them (see :func:`repro.experiments.runner.trial_artifact_key`).

Only ``metric="euclidean"`` is supported (the KD-tree is a metric-space
index); every other metric — and any consumer requiring the full distance
matrix, e.g. MPCK-Means or the silhouette — must use an exact tier.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components
from scipy.sparse.csgraph import minimum_spanning_tree as _csgraph_mst
from scipy.spatial import cKDTree

from repro.utils.cache import MemoCache, array_fingerprint
from repro.utils.validation import check_array_2d

#: Environment variable consulted when ``epsilon=None``.
NEIGHBOR_EPSILON_ENV_VAR = "REPRO_NEIGHBOR_EPSILON"

#: Environment variable consulted when ``k_neighbors=None``.
NEIGHBOR_K_ENV_VAR = "REPRO_NEIGHBOR_K"

#: Neighbourhood radius used when neither argument nor environment set one.
#: ``inf`` means the graph is bounded by ``k_neighbors`` alone.
DEFAULT_NEIGHBOR_EPSILON = np.inf

#: Neighbour count used when neither argument nor environment set one.
#: Covers the paper's MinPts sweep (``3..24``) with headroom.
DEFAULT_NEIGHBOR_K = 32


def resolve_neighbor_epsilon(epsilon: float | None = None) -> float:
    """Resolve the graph radius from the argument, environment, or default.

    ``None`` reads :data:`NEIGHBOR_EPSILON_ENV_VAR` (``"inf"`` is accepted)
    and falls back to :data:`DEFAULT_NEIGHBOR_EPSILON`.  Raises
    ``ValueError`` for non-positive or unparseable values.
    """
    origin = "epsilon"
    if epsilon is None:
        raw = os.environ.get(NEIGHBOR_EPSILON_ENV_VAR, "").strip()
        if not raw:
            return float(DEFAULT_NEIGHBOR_EPSILON)
        origin = NEIGHBOR_EPSILON_ENV_VAR
        try:
            epsilon = float(raw)
        except ValueError:
            raise ValueError(f"{origin} must be a positive number, got {raw!r}") from None
    epsilon = float(epsilon)
    if np.isnan(epsilon) or epsilon <= 0:
        raise ValueError(f"{origin} must be a positive number, got {epsilon!r}")
    return epsilon


def resolve_neighbor_k(k_neighbors: int | None = None) -> int:
    """Resolve the neighbour count from the argument, environment, or default.

    ``None`` reads :data:`NEIGHBOR_K_ENV_VAR` and falls back to
    :data:`DEFAULT_NEIGHBOR_K`.  Raises ``ValueError`` for values below 1.
    """
    origin = "k_neighbors"
    if k_neighbors is None:
        raw = os.environ.get(NEIGHBOR_K_ENV_VAR, "").strip()
        if not raw:
            return int(DEFAULT_NEIGHBOR_K)
        origin = NEIGHBOR_K_ENV_VAR
        try:
            k_neighbors = int(raw)
        except ValueError:
            raise ValueError(f"{origin} must be a positive integer, got {raw!r}") from None
    if isinstance(k_neighbors, bool) or not isinstance(k_neighbors, (int, np.integer)):
        raise ValueError(f"{origin} must be a positive integer, got {k_neighbors!r}")
    if k_neighbors < 1:
        raise ValueError(f"{origin} must be >= 1, got {k_neighbors}")
    return int(k_neighbors)


@dataclass
class NeighborGraph:
    """An epsilon-bounded k-NN graph with its per-point neighbour distances.

    Attributes
    ----------
    graph:
        Symmetric ``(n, n)`` CSR matrix of stored neighbour distances (the
        union of the directed k-NN edges; explicit zero entries encode
        duplicate points and are *kept*, never pruned).
    knn_distances:
        ``(n, m)`` ascending neighbour distances per point **including the
        point itself** (distance 0 in column 0), ``inf``-padded where fewer
        than ``m`` neighbours lie within ``epsilon``.  ``m = min(k+1, n)``.
    epsilon / k_neighbors:
        The resolved graph parameters.
    exhaustive:
        True when ``k_neighbors >= n`` and the graph was built from the
        canonical row-panel formula (the parity-to-exact regime).
    """

    graph: csr_matrix
    knn_distances: np.ndarray
    epsilon: float
    k_neighbors: int
    exhaustive: bool

    @property
    def n_samples(self) -> int:
        return self.graph.shape[0]

    def core_distances(self, min_pts: int) -> np.ndarray:
        """Distance to the ``min_pts``-th nearest neighbour (self included).

        Matches :func:`repro.clustering.distances.k_nearest_distances`
        semantics; points with fewer than ``min_pts`` neighbours within
        ``epsilon`` get ``inf`` (they can never be core points).  Raises
        when ``min_pts`` exceeds the neighbour horizon ``k_neighbors + 1``.
        """
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        horizon = self.knn_distances.shape[1]
        if min_pts > horizon:
            raise ValueError(
                f"min_pts={min_pts} exceeds the neighbors-tier horizon of "
                f"k_neighbors+1={self.k_neighbors + 1} neighbours per point; "
                f"raise k_neighbors (or use an exact distance backend)"
            )
        return self.knn_distances[:, min_pts - 1].copy()


def _directed_to_symmetric(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, n_samples: int
) -> csr_matrix:
    """Union of directed edges as a canonical symmetric CSR matrix.

    Mirror edges are appended and duplicate ``(row, col)`` coordinates
    dropped (distances are symmetric, so either copy carries the same
    value).  Built by hand — the COO constructor would *sum* duplicates —
    and explicit zeros (duplicate points) survive.
    """
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    all_vals = np.concatenate([vals, vals])
    order = np.lexsort((all_cols, all_rows))
    all_rows, all_cols, all_vals = all_rows[order], all_cols[order], all_vals[order]
    if all_rows.size:
        keep = np.empty(all_rows.size, dtype=bool)
        keep[0] = True
        np.logical_or(
            all_rows[1:] != all_rows[:-1], all_cols[1:] != all_cols[:-1], out=keep[1:]
        )
        all_rows, all_cols, all_vals = all_rows[keep], all_cols[keep], all_vals[keep]
    indptr = np.zeros(n_samples + 1, dtype=np.intp)
    np.cumsum(np.bincount(all_rows, minlength=n_samples), out=indptr[1:])
    return csr_matrix(
        (all_vals, all_cols.astype(np.intp), indptr), shape=(n_samples, n_samples)
    )


def _build_exhaustive(X: np.ndarray, epsilon: float) -> tuple[csr_matrix, np.ndarray]:
    """Graph + sorted neighbour rows from the canonical panel formula.

    Used when ``k_neighbors >= n``: each row panel is computed with the
    exact tiers' :func:`~repro.clustering.distances.pairwise_distances`
    scheme, so stored entries (and the derived core distances) are
    bit-identical to ``dense`` whenever ``epsilon`` filters nothing.
    """
    from repro.clustering.distances import DEFAULT_BLOCK_ROWS, pairwise_distances

    n = X.shape[0]
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    knn = np.empty((n, n), dtype=np.float64)
    # This regime is only entered for k >= n (parity-scale data), so the
    # full canonical matrix is materialised once and consumed per panel.
    full = pairwise_distances(X)
    column_index = np.arange(n)

    for start in range(0, n, DEFAULT_BLOCK_ROWS):
        stop = min(start + DEFAULT_BLOCK_ROWS, n)
        panel = full[start:stop]
        diagonal = column_index[None, :] == column_index[start:stop, None]
        within = panel <= epsilon
        within &= ~diagonal  # the point itself is not a graph edge
        panel_rows, panel_cols = np.nonzero(within)
        rows_parts.append(panel_rows + start)
        cols_parts.append(panel_cols)
        vals_parts.append(panel[panel_rows, panel_cols])
        # Neighbour rows keep the self entry (distance 0) so the sorted
        # row's (min_pts)-th value is exactly the dense core distance.
        masked = np.where(within | diagonal, panel, np.inf)
        knn[start:stop] = np.sort(masked, axis=1)

    rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=np.intp)
    cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=np.intp)
    vals = np.concatenate(vals_parts) if vals_parts else np.empty(0, dtype=np.float64)
    # The epsilon filter and the formula are symmetric, so the directed
    # edge set already is; the shared builder just canonicalises it.
    graph = _directed_to_symmetric(rows, cols, vals, n)
    return graph, knn


def _build_kdtree(
    X: np.ndarray, epsilon: float, k_neighbors: int
) -> tuple[csr_matrix, np.ndarray]:
    """Graph + sorted neighbour rows from a :class:`scipy.spatial.cKDTree`."""
    n = X.shape[0]
    m = min(k_neighbors + 1, n)  # + 1: the query returns the point itself
    tree = cKDTree(X)
    # nextafter keeps boundary neighbours (d == epsilon) regardless of how
    # the tree treats the bound; the exact filter is applied below.
    bound = np.nextafter(epsilon, np.inf) if np.isfinite(epsilon) else np.inf
    dist, idx = tree.query(X, k=m, distance_upper_bound=bound)
    if m == 1:
        dist = dist[:, None]
        idx = idx[:, None]
    dist = np.asarray(dist, dtype=np.float64)
    idx = np.asarray(idx, dtype=np.int64)
    dist[dist > epsilon] = np.inf  # inclusive epsilon cutoff; misses stay inf

    found = np.isfinite(dist)
    row_index = np.repeat(np.arange(n, dtype=np.int64), m).reshape(n, m)
    # Drop exactly one zero-distance entry per row as "self": the point's
    # own index when present, else the first zero-distance duplicate.
    is_self = (idx == row_index) & found
    self_pos = np.where(
        is_self.any(axis=1), is_self.argmax(axis=1), np.zeros(n, dtype=np.intp)
    )
    edge_mask = found.copy()
    edge_mask[np.arange(n), self_pos] = False

    rows = row_index[edge_mask]
    cols = idx[edge_mask]
    vals = dist[edge_mask]
    graph = _directed_to_symmetric(rows, cols, vals, n)

    # Neighbour rows including self: the queried row with the dropped
    # "self" entry replaced by an explicit 0 in front keeps the ascending
    # order (the dropped entry had distance 0 or was the minimum).
    knn = dist.copy()
    knn[np.arange(n), self_pos] = 0.0
    knn.sort(axis=1)
    return graph, knn


def build_neighbor_graph(
    X: np.ndarray,
    *,
    epsilon: float | None = None,
    k_neighbors: int | None = None,
    metric: str = "euclidean",
) -> NeighborGraph:
    """Build the epsilon-bounded k-NN graph of ``X``.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix.
    epsilon:
        Neighbourhood radius (inclusive); ``None`` consults
        :data:`NEIGHBOR_EPSILON_ENV_VAR`, default ``inf``.
    k_neighbors:
        Neighbours per point (excluding the point itself); ``None``
        consults :data:`NEIGHBOR_K_ENV_VAR`, default
        :data:`DEFAULT_NEIGHBOR_K`.  ``k_neighbors >= n`` switches to the
        exhaustive parity-to-exact construction.
    metric:
        Must be ``"euclidean"``; the KD-tree is a metric-space index, so
        precomputed or non-Euclidean metrics require an exact tier.
    """
    if metric != "euclidean":
        from repro.core.distance_backend import EXACT_DISTANCE_BACKENDS

        raise ValueError(
            f"distance_backend='neighbors' supports metric='euclidean' only "
            f"(KD-tree index), got metric={metric!r}; use an exact distance "
            f"backend ({'/'.join(EXACT_DISTANCE_BACKENDS)}) for this metric"
        )
    X = check_array_2d(X)
    X = np.ascontiguousarray(X, dtype=np.float64)
    epsilon = resolve_neighbor_epsilon(epsilon)
    k_neighbors = resolve_neighbor_k(k_neighbors)
    n = X.shape[0]
    exhaustive = k_neighbors >= n
    if exhaustive:
        graph, knn = _build_exhaustive(X, epsilon)
    else:
        graph, knn = _build_kdtree(X, epsilon, k_neighbors)
    return NeighborGraph(
        graph=graph,
        knn_distances=knn,
        epsilon=epsilon,
        k_neighbors=k_neighbors,
        exhaustive=exhaustive,
    )


def mutual_reachability_graph(graph: csr_matrix, core_distances: np.ndarray) -> csr_matrix:
    """Sparse mutual-reachability transform of a neighbour graph.

    Per stored edge ``(i, j)``: ``max(max(d_ij, core_i), core_j)`` — the
    same operation order as the dense
    :func:`repro.clustering.hierarchy.mutual_reachability` (``max`` is
    exact, so the densified exhaustive graph matches entry-for-entry).
    Unstored pairs have *unknown* (not zero) mutual reachability; only the
    diagonal densifies to the dense transform's explicit 0.
    """
    core = np.asarray(core_distances, dtype=np.float64)
    n = graph.shape[0]
    rows = np.repeat(np.arange(n), np.diff(graph.indptr))
    data = np.maximum(np.maximum(graph.data, core[rows]), core[graph.indices])
    return csr_matrix((data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n))


#: Stand-in weight for stored zero-distance edges while inside scipy's
#: csgraph (which treats a zero entry as "no edge"); mapped back to 0.0.
_ZERO_WEIGHT = np.nextafter(0.0, 1.0)


def sparse_mst_edges(graph: csr_matrix) -> np.ndarray:
    """Minimum spanning tree of a sparse weighted graph as sorted edges.

    Returns the same ``(n-1, 3)`` ``(u, v, weight)`` weight-sorted edge
    array as the dense Prim kernel.  Stored zero-weight edges (duplicate
    points) are preserved through a subnormal stand-in weight, and a
    disconnected graph is completed into a single tree by joining the
    connected components' smallest-index representatives with ``inf``
    edges — exactly how the dense pipeline represents unreachable merges
    (their condensed-tree density level is ``1/inf = 0``).

    A *complete* stored graph (every off-diagonal pair present — the
    exhaustive ``k >= n`` regime) is densified and routed through the
    dense Prim kernel itself, so tied edge weights are emitted in
    exactly the dense pipeline's discovery order.  Kruskal and Prim
    agree on the weight multiset but not on which tied edges they pick,
    and FOSC's condensed tree is sensitive to that order (a tie can
    decide whether a small component reaches ``min_cluster_size``
    before it is absorbed); delegating makes the exhaustive-regime
    labels bit-identical to the dense tiers by construction.
    """
    n = graph.shape[0]
    if n <= 1:
        return np.empty((0, 3), dtype=np.float64)
    if graph.nnz == n * (n - 1):
        from repro.clustering.kernels import minimum_spanning_tree_vectorized

        # toarray() reproduces the dense mutual-reachability matrix
        # entry-for-entry: every off-diagonal entry is stored (explicit
        # zeros included) and the absent diagonal densifies to 0.0.
        return minimum_spanning_tree_vectorized(graph.toarray())
    adjusted = graph.copy()
    adjusted.data = np.where(adjusted.data == 0.0, _ZERO_WEIGHT, adjusted.data)
    forest = _csgraph_mst(adjusted).tocoo()
    u = forest.row.astype(np.float64)
    v = forest.col.astype(np.float64)
    w = np.where(forest.data == _ZERO_WEIGHT, 0.0, forest.data)

    n_components, labels = connected_components(adjusted, directed=False)
    if n_components > 1:
        _, representatives = np.unique(labels, return_index=True)
        representatives = np.sort(representatives)
        joins = representatives[1:]
        u = np.concatenate([u, np.full(joins.size, float(representatives[0]))])
        v = np.concatenate([v, joins.astype(np.float64)])
        w = np.concatenate([w, np.full(joins.size, np.inf)])

    edges = np.column_stack([u, v, w])
    order = np.argsort(edges[:, 2], kind="stable")
    return edges[order]


def sparse_optics_ordering(
    graph: csr_matrix, core_distances: np.ndarray, eps: float = np.inf
) -> tuple[np.ndarray, np.ndarray]:
    """Epsilon-bounded OPTICS sweep over a sparse neighbour graph.

    The same lazy-deletion ``(reachability, index)`` priority queue as
    :func:`repro.clustering.kernels.optics_ordering_reference`, with the
    neighbour scan restricted to the stored graph rows (CSR column order
    is ascending, preserving the reference's index-order pushes).  In the
    exhaustive regime the stored rows are all other points, so ordering
    and reachability are bit-identical to the dense kernels.
    """
    n = graph.shape[0]
    indptr, indices, data = graph.indptr, graph.indices, graph.data
    core = np.asarray(core_distances, dtype=np.float64)
    reachability = np.full(n, np.inf)
    processed = np.zeros(n, dtype=bool)
    ordering: list[int] = []

    for start in range(n):
        if processed[start]:
            continue
        heap: list[tuple[float, int]] = [(np.inf, start)]
        while heap:
            _, index = heapq.heappop(heap)
            if processed[index]:
                continue
            processed[index] = True
            ordering.append(index)
            if core[index] > eps:
                continue
            row = slice(indptr[index], indptr[index + 1])
            neighbors = indices[row]
            neighbor_distances = data[row]
            within = ~processed[neighbors] & (neighbor_distances <= eps)
            if not within.any():
                continue
            new_reach = np.maximum(core[index], neighbor_distances[within])
            targets = neighbors[within]
            improved = new_reach < reachability[targets]
            for neighbor, reach in zip(targets[improved], new_reach[improved]):
                reachability[neighbor] = reach
                heapq.heappush(heap, (float(reach), int(neighbor)))
    return np.asarray(ordering, dtype=np.int64), reachability


# ----------------------------------------------------------------------
# Per-process memo (the CVCP grid re-fits share one graph per data set)
# ----------------------------------------------------------------------

_GRAPH_CACHE = MemoCache(max_items=4)


def cached_neighbor_graph(
    X: np.ndarray,
    *,
    epsilon: float | None = None,
    k_neighbors: int | None = None,
    metric: str = "euclidean",
) -> NeighborGraph:
    """Memoised :func:`build_neighbor_graph`.

    Keyed by the data fingerprint and the *resolved* ``(epsilon,
    k_neighbors, metric)`` — every (value × fold) cell of a CVCP sweep
    shares one graph per process, exactly like
    :func:`repro.utils.cache.cached_pairwise_distances` shares matrices.
    """
    resolved_epsilon = resolve_neighbor_epsilon(epsilon)
    resolved_k = resolve_neighbor_k(k_neighbors)
    key = (array_fingerprint(X), metric, resolved_epsilon, resolved_k)
    return _GRAPH_CACHE.get_or_compute(
        key,
        lambda: build_neighbor_graph(
            X, epsilon=resolved_epsilon, k_neighbors=resolved_k, metric=metric
        ),
    )


def clear_neighbor_graph_cache() -> None:
    """Drop every memoised neighbour graph (mirrors ``clear_distance_cache``)."""
    _GRAPH_CACHE.clear()


def neighbor_graph_cache_stats():
    """Hit/miss/size counters of the neighbour-graph memo."""
    return _GRAPH_CACHE.stats()


def configure_neighbor_graph_cache(max_items: int) -> None:
    """Re-bound the memo (``0`` disables caching); clears existing entries."""
    global _GRAPH_CACHE
    _GRAPH_CACHE = MemoCache(max_items=max_items)
