"""Selecting between clustering *algorithms* with CVCP (paper's future work).

The conclusion of the paper names two extensions: combining CVCP with other
semi-supervised clustering methods, and extending the approach "to compare
and select alternative clustering methods".  :class:`CVCPAlgorithmSelector`
implements the latter: each candidate algorithm gets its own CVCP parameter
sweep on the *same* folds-from-side-information budget, and the pair
(algorithm, parameter value) with the best cross-validated constraint
classification score wins.

Because the internal score is a property of the produced partition and the
held-out constraints only — never of the algorithm's own objective — scores
of different algorithms are directly comparable, which is exactly what makes
cross-algorithm selection sound in this framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.constraints.constraint import ConstraintSet
from repro.core.cvcp import CVCP
from repro.core.model_selection import CVCPResult
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_array_2d


@dataclass
class AlgorithmCandidate:
    """One algorithm entered into the selection.

    Attributes
    ----------
    name:
        Display name (e.g. ``"fosc-opticsdend"``).
    estimator:
        Template clusterer (cloned per parameter value).
    parameter_values:
        Candidate values of the estimator's tuned parameter.
    parameter_name:
        Optional override of the tuned parameter's name.
    """

    name: str
    estimator: BaseClusterer
    parameter_values: Sequence[Any]
    parameter_name: str | None = None


@dataclass
class AlgorithmSelectionResult:
    """Outcome of a cross-algorithm CVCP selection."""

    best_algorithm: str
    best_parameter: Any
    best_score: float
    per_algorithm: dict[str, CVCPResult]

    def ranking(self) -> list[tuple[str, Any, float]]:
        """``(algorithm, best parameter, best score)`` sorted by score, best first."""
        rows = [
            (name, result.best_value, result.best_score)
            for name, result in self.per_algorithm.items()
        ]
        return sorted(rows, key=lambda row: row[2], reverse=True)


class CVCPAlgorithmSelector:
    """Run CVCP for several algorithms and keep the overall winner.

    Parameters
    ----------
    candidates:
        The algorithms to compare, either a sequence of
        :class:`AlgorithmCandidate` or a mapping
        ``{name: (estimator, parameter_values)}``.
    n_folds, scoring, random_state:
        Passed through to each per-algorithm :class:`~repro.core.cvcp.CVCP`.
        All algorithms are evaluated with the *same* master seed so the
        comparison is as paired as the stochastic estimators allow.
    refit:
        Refit the winning (algorithm, parameter) on all side information.

    Examples
    --------
    >>> from repro.clustering import FOSCOpticsDend, MPCKMeans
    >>> selector = CVCPAlgorithmSelector({
    ...     "fosc": (FOSCOpticsDend(), [3, 6, 9, 12]),
    ...     "mpck": (MPCKMeans(random_state=0), [2, 3, 4, 5]),
    ... }, n_folds=4, random_state=0)
    """

    def __init__(
        self,
        candidates: Sequence[AlgorithmCandidate] | Mapping[str, tuple[BaseClusterer, Sequence[Any]]],
        *,
        n_folds: int = 10,
        scoring: str = "average_f",
        refit: bool = True,
        random_state: RandomStateLike = None,
    ) -> None:
        self.candidates = self._normalise_candidates(candidates)
        if not self.candidates:
            raise ValueError("at least one algorithm candidate is required")
        names = [candidate.name for candidate in self.candidates]
        if len(set(names)) != len(names):
            raise ValueError(f"candidate names must be unique, got {names}")
        self.n_folds = n_folds
        self.scoring = scoring
        self.refit = refit
        self.random_state = random_state

    @staticmethod
    def _normalise_candidates(
        candidates: Sequence[AlgorithmCandidate] | Mapping[str, tuple[BaseClusterer, Sequence[Any]]],
    ) -> list[AlgorithmCandidate]:
        if isinstance(candidates, Mapping):
            return [
                AlgorithmCandidate(name=name, estimator=estimator, parameter_values=values)
                for name, (estimator, values) in candidates.items()
            ]
        return list(candidates)

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        *,
        labeled_objects: dict[int, int] | None = None,
        constraints: ConstraintSet | None = None,
    ) -> "CVCPAlgorithmSelector":
        """Run every per-algorithm sweep and keep the overall best model."""
        X = check_array_2d(X)
        rng = check_random_state(self.random_state)
        master_seed = int(rng.integers(0, 2**31 - 1))

        per_algorithm: dict[str, CVCPResult] = {}
        searches: dict[str, CVCP] = {}
        for candidate in self.candidates:
            search = CVCP(
                candidate.estimator,
                candidate.parameter_values,
                parameter_name=candidate.parameter_name,
                n_folds=self.n_folds,
                scoring=self.scoring,
                refit=False,
                random_state=master_seed,
            )
            search.fit(X, labeled_objects=labeled_objects, constraints=constraints)
            per_algorithm[candidate.name] = search.cv_results_
            searches[candidate.name] = search

        best_name = max(per_algorithm, key=lambda name: per_algorithm[name].best_score)
        self.result_ = AlgorithmSelectionResult(
            best_algorithm=best_name,
            best_parameter=per_algorithm[best_name].best_value,
            best_score=per_algorithm[best_name].best_score,
            per_algorithm=per_algorithm,
        )
        self.best_algorithm_ = best_name
        self.best_params_ = {
            per_algorithm[best_name].parameter_name: per_algorithm[best_name].best_value
        }
        self.best_score_ = per_algorithm[best_name].best_score

        if self.refit:
            winner = next(c for c in self.candidates if c.name == best_name)
            refit_search = CVCP(
                winner.estimator,
                [self.result_.best_parameter],
                parameter_name=winner.parameter_name,
                n_folds=self.n_folds,
                scoring=self.scoring,
                refit=True,
                random_state=master_seed,
            )
            refit_search.fit(X, labeled_objects=labeled_objects, constraints=constraints)
            self.best_estimator_ = refit_search.best_estimator_
            self.labels_ = refit_search.labels_
        return self
