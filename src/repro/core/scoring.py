"""Scoring a partition as a classifier over constraints (Section 3.2).

A produced partition is viewed as a binary classifier: a pair of objects is
predicted as class 1 ("must-link") when they share a cluster and as class 0
("cannot-link") otherwise.  For the constraints of a test fold, the
precision, recall and F-measure of each class are computed and the
unweighted mean of the two F-measures is the CVCP *internal classification
score* of the partition.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.constraints.constraint import ConstraintSet
from repro.evaluation.confusion import constraint_confusion


def constraint_f_score(
    labels: Sequence[int] | np.ndarray,
    constraints: ConstraintSet,
) -> float:
    """Average of the must-link and cannot-link F-measures.

    This is the score the CVCP paper uses in step 1 of the framework
    (Figure 1).  Returns 0 when ``constraints`` is empty (an empty test fold
    carries no information).
    """
    if not len(constraints):
        return 0.0
    return constraint_confusion(np.asarray(labels), constraints).average_f_measure()


def constraint_accuracy_score(
    labels: Sequence[int] | np.ndarray,
    constraints: ConstraintSet,
) -> float:
    """Fraction of constraints satisfied by the partition.

    A simpler alternative internal score, used in the ablation experiments
    to show why the class-averaged F-measure is preferable when must-links
    and cannot-links are imbalanced (which they almost always are: a
    constraint pool derived from labels contains far more cannot-links).
    """
    if not len(constraints):
        return 0.0
    return constraint_confusion(np.asarray(labels), constraints).accuracy()


def constraint_must_link_f_score(
    labels: Sequence[int] | np.ndarray,
    constraints: ConstraintSet,
) -> float:
    """F-measure of the must-link class only (ablation scorer)."""
    if not len(constraints):
        return 0.0
    return constraint_confusion(np.asarray(labels), constraints).f_measure_must_link()


#: Registry of available internal scorers, keyed by name.
SCORERS: dict[str, Callable[[np.ndarray, ConstraintSet], float]] = {
    "average_f": constraint_f_score,
    "accuracy": constraint_accuracy_score,
    "must_link_f": constraint_must_link_f_score,
}


def score_partition(
    labels: Sequence[int] | np.ndarray,
    constraints: ConstraintSet,
    *,
    scoring: str = "average_f",
) -> float:
    """Score ``labels`` against ``constraints`` with the named scorer."""
    if scoring not in SCORERS:
        raise ValueError(
            f"unknown scoring {scoring!r}; available scorers: {sorted(SCORERS)}"
        )
    return SCORERS[scoring](labels, constraints)
