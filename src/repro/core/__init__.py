"""CVCP — Cross-Validation for finding Clustering Parameters.

The paper's primary contribution: a model-selection framework for
semi-supervised clustering.  The workflow (Section 3) is

1. build constraint-aware cross-validation folds from the available side
   information (:mod:`repro.core.folds`, Scenario I for labelled objects,
   Scenario II for raw pairwise constraints);
2. for every candidate parameter value, cluster with the training-fold
   information and score the partition as a classifier over the test-fold
   constraints (:mod:`repro.core.scoring`);
3. select the parameter with the best cross-validated score and refit with
   all available information (:class:`repro.core.cvcp.CVCP`).

:mod:`repro.core.model_selection` holds the result containers and the
baseline selectors (Silhouette-based selection and the "expected
performance" reference used in the paper's comparison).
"""

from repro.core.folds import (
    CVCPFold,
    label_scenario_folds,
    constraint_scenario_folds,
    make_folds,
)
from repro.core.scoring import (
    constraint_f_score,
    constraint_accuracy_score,
    score_partition,
    SCORERS,
)
from repro.core.model_selection import (
    ParameterEvaluation,
    CVCPResult,
    SilhouetteSelector,
    expected_quality,
)
from repro.core.cvcp import CVCP, select_parameter
from repro.core.distance_backend import (
    DISTANCE_BACKENDS,
    DistanceBackend,
    clear_spill_directory,
    get_distance_backend,
    resolve_distance_backend,
    spill_directory,
)
from repro.core.executor import (
    BACKENDS,
    ExecutionSpec,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    derive_seed,
    execute,
    get_executor,
    resolve_n_jobs,
)
from repro.core.algorithm_selection import (
    AlgorithmCandidate,
    AlgorithmSelectionResult,
    CVCPAlgorithmSelector,
)

__all__ = [
    "AlgorithmCandidate",
    "AlgorithmSelectionResult",
    "CVCPAlgorithmSelector",
    "CVCPFold",
    "label_scenario_folds",
    "constraint_scenario_folds",
    "make_folds",
    "constraint_f_score",
    "constraint_accuracy_score",
    "score_partition",
    "SCORERS",
    "ParameterEvaluation",
    "CVCPResult",
    "SilhouetteSelector",
    "expected_quality",
    "CVCP",
    "select_parameter",
    "DISTANCE_BACKENDS",
    "DistanceBackend",
    "clear_spill_directory",
    "get_distance_backend",
    "resolve_distance_backend",
    "spill_directory",
    "BACKENDS",
    "ExecutionSpec",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "derive_seed",
    "execute",
    "get_executor",
    "resolve_n_jobs",
]
