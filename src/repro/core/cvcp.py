"""The CVCP model-selection driver (Section 3.3 and Figure 1 of the paper).

:class:`CVCP` wires the pieces together:

1. build constraint-aware folds from the provided side information
   (Scenario I for labelled objects, Scenario II for pairwise constraints);
2. for every candidate parameter value and every fold, clone the estimator,
   fit it on the full data with the *training-fold* information only, and
   score the resulting partition on the *test-fold* constraints with the
   average per-class F-measure;
3. select the parameter value with the highest mean score;
4. refit the estimator with the selected value using *all* available side
   information — the final model returned to the user.
"""

from __future__ import annotations

import multiprocessing
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.constraints.constraint import ConstraintSet
from repro.constraints.oracles import ConstraintOracle, PerfectOracle
from repro.core.distance_backend import resolve_distance_backend
from repro.core.executor import BACKENDS, ExecutionSpec, derive_seed, get_executor
from repro.core.folds import CVCPFold, make_folds
from repro.core.model_selection import CVCPResult, ParameterEvaluation
from repro.core.scoring import score_partition
from repro.utils.cache import array_fingerprint, cached_pairwise_distances
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_array_2d, check_positive_int


@dataclass
class _GridTask:
    """One independent (parameter value × fold) cell of the CVCP grid.

    The estimator is already cloned with the candidate value and its derived
    child seed, so the worker only fits and scores.  Must stay picklable for
    the process backend; the data matrix itself travels once per worker via
    the executor initializer (see :func:`_register_grid_data`), so tasks
    only carry its key.
    """

    estimator: BaseClusterer
    data_key: str
    fold: CVCPFold
    scoring: str
    use_labels_directly: bool


#: Per-process registry of data matrices shared by all tasks of a grid run.
#: Process workers receive their entry through the executor initializer
#: (once per worker, not per task); in the submitting process the entry is
#: reference-counted so concurrent grid runs over the same data (e.g.
#: thread-parallel trials) can share it safely.
_GRID_DATA: dict[str, np.ndarray] = {}
_GRID_DATA_REFS: dict[str, int] = {}
_GRID_DATA_LOCK = threading.Lock()


def _register_grid_data(key: str, X: np.ndarray) -> None:
    """Worker-side initializer: make the grid's data matrix available."""
    _GRID_DATA[key] = X


def _acquire_grid_data(key: str, X: np.ndarray) -> None:
    with _GRID_DATA_LOCK:
        _GRID_DATA[key] = X
        _GRID_DATA_REFS[key] = _GRID_DATA_REFS.get(key, 0) + 1


def _release_grid_data(key: str) -> None:
    with _GRID_DATA_LOCK:
        remaining = _GRID_DATA_REFS.get(key, 1) - 1
        if remaining <= 0:
            _GRID_DATA.pop(key, None)
            _GRID_DATA_REFS.pop(key, None)
        else:
            _GRID_DATA_REFS[key] = remaining


def _evaluate_grid_cell(task: _GridTask) -> float:
    """Fit on the training-fold information, score on the test-fold constraints."""
    if not task.fold.has_test_information():
        return 0.0
    X = _GRID_DATA[task.data_key]
    if task.use_labels_directly and task.fold.training_labels:
        task.estimator.fit(X, seed_labels=task.fold.training_labels)
    else:
        task.estimator.fit(X, constraints=task.fold.training_constraints)
    return score_partition(
        task.estimator.labels_, task.fold.test_constraints, scoring=task.scoring
    )


def _resolve_execution(
    where: str,
    execution: ExecutionSpec | None,
    *,
    backend: str | None,
    n_jobs: int | None,
    distance_backend: str | None,
) -> ExecutionSpec:
    """Merge the ``execution=`` spec with the deprecated loose keywords.

    The loose ``backend=`` / ``n_jobs=`` / ``distance_backend=`` keywords
    still work (a DeprecationWarning, never a break), but combining them
    with an explicit ``execution=`` spec is ambiguous and raises.
    """
    legacy = {
        name: value
        for name, value in (
            ("backend", backend),
            ("n_jobs", n_jobs),
            ("distance_backend", distance_backend),
        )
        if value is not None
    }
    if execution is not None:
        if legacy:
            raise ValueError(
                f"{where}: pass the execution engine either as execution=ExecutionSpec(...) "
                f"or as loose keywords, not both (got execution= and {', '.join(sorted(legacy))})"
            )
        return execution
    if legacy:
        if backend is not None and backend not in BACKENDS:
            # Historical wording, kept for callers matching on it.
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        warnings.warn(
            f"passing {', '.join(sorted(legacy))} to {where} is deprecated; "
            "pass execution=ExecutionSpec(backend=..., n_jobs=..., distance_backend=...) "
            "instead (see repro.core.executor.ExecutionSpec)",
            DeprecationWarning,
            stacklevel=3,
        )
        return ExecutionSpec(**legacy)
    return ExecutionSpec()


class CVCP:
    """Cross-Validation for finding Clustering Parameters.

    Parameters
    ----------
    estimator:
        Template semi-supervised clusterer (e.g.
        :class:`~repro.clustering.mpckmeans.MPCKMeans` or
        :class:`~repro.clustering.fosc.FOSCOpticsDend`).  It is never fitted
        directly; clones are created per parameter value.
    parameter_values:
        Candidate values of the swept parameter.
    parameter_name:
        Name of the swept constructor parameter; defaults to the
        estimator's declared ``tuned_parameter``.
    n_folds:
        Number of cross-validation folds (default 10, capped at the number
        of objects carrying side information).
    scoring:
        Internal scorer name (see :data:`repro.core.scoring.SCORERS`);
        default is the paper's class-averaged constraint F-measure.
    use_labels_directly:
        In the label scenario, pass the training-fold labels to the
        estimator as ``seed_labels`` instead of deriving constraints.  The
        default (``False``) derives constraints, which every estimator in
        this library accepts.
    refit:
        Whether to refit the winning model on all side information
        (step 4); disable to only inspect the cross-validation scores.
    random_state:
        Seed or generator controlling the fold shuffles and the clones'
        stochastic initialisation.
    oracle / oracle_scenario / oracle_amount:
        Optional supervision source (see :mod:`repro.constraints.oracles`).
        With an oracle configured, :meth:`fit` is called with
        ``ground_truth`` (the hidden labels the oracle answers from)
        instead of pre-sampled side information; the oracle then generates
        ``oracle_amount`` of side information for ``oracle_scenario``
        (``"labels"`` or ``"constraints"``) before the grid runs.
    execution:
        The execution engine as one
        :class:`~repro.core.executor.ExecutionSpec` value — backend
        (``"serial"``/``"thread"``/``"process"``), worker count, and
        distance-matrix storage tier.  Every grid cell derives its seed
        from its grid coordinates, so all engines return bit-identical
        results for the same ``random_state``.
    n_jobs / backend / distance_backend:
        Deprecated loose spellings of ``execution`` (a
        ``DeprecationWarning``, never a break); combining them with an
        explicit ``execution=`` raises.  With ``"memmap"`` as the distance
        tier the process backend's workers map the same spill file instead
        of each materialising the matrix (see
        :mod:`repro.core.distance_backend`).
    artifact_store / artifact_scope:
        Optional per-cell resume through an
        :class:`~repro.experiments.artifacts.ArtifactStore`-compatible
        store.  ``artifact_scope`` must be a JSON-serialisable mapping that
        uniquely pins this grid's inputs (the experiment drivers pass the
        trial's artifact key); each ``(value_index, fold)`` score is then
        looked up before computing and written through after, so an
        interrupted grid resumes from its completed cells.  Lookups and
        writes stay in the submitting process — worker tasks never touch
        the store.

    Attributes
    ----------
    cv_results_:
        :class:`~repro.core.model_selection.CVCPResult` with per-value,
        per-fold scores.
    best_params_:
        ``{parameter_name: best value}``.
    best_score_:
        Cross-validated score of the winning value.
    best_estimator_:
        The refitted estimator (only with ``refit=True``).
    labels_:
        Labels of the refitted estimator (only with ``refit=True``).

    Examples
    --------
    >>> from repro.clustering import MPCKMeans
    >>> from repro.constraints import constraints_from_labels
    >>> from repro.datasets import make_iris_like
    >>> data = make_iris_like(random_state=0)
    >>> side = {0: 0, 3: 0, 60: 1, 70: 1, 120: 2, 130: 2, 20: 0, 90: 1}
    >>> search = CVCP(MPCKMeans(random_state=0), parameter_values=[2, 3, 4, 5],
    ...               n_folds=4, random_state=0)
    >>> search.fit(data.X, labeled_objects=side)  # doctest: +ELLIPSIS
    <repro.core.cvcp.CVCP object at ...>
    >>> search.best_params_["n_clusters"] in [2, 3, 4, 5]
    True
    """

    def __init__(
        self,
        estimator: BaseClusterer,
        parameter_values: Sequence[Any],
        *,
        parameter_name: str | None = None,
        n_folds: int = 10,
        scoring: str = "average_f",
        use_labels_directly: bool = False,
        refit: bool = True,
        random_state: RandomStateLike = None,
        oracle: ConstraintOracle | None = None,
        oracle_scenario: str = "constraints",
        oracle_amount: float = 0.2,
        execution: ExecutionSpec | None = None,
        n_jobs: int | None = None,
        backend: str | None = None,
        distance_backend: str | None = None,
        artifact_store=None,
        artifact_scope: dict | None = None,
    ) -> None:
        if not list(parameter_values):
            raise ValueError("parameter_values must not be empty")
        execution = _resolve_execution(
            "CVCP", execution, backend=backend, n_jobs=n_jobs, distance_backend=distance_backend
        )
        backend = execution.backend or "serial"
        n_jobs = execution.n_jobs
        distance_backend = execution.distance_backend
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.execution = execution
        self.estimator = estimator
        self.parameter_values = list(parameter_values)
        self.parameter_name = parameter_name or estimator.tuned_parameter
        if not self.parameter_name:
            raise ValueError(
                "parameter_name must be given when the estimator does not declare a tuned_parameter"
            )
        self.n_folds = check_positive_int(n_folds, name="n_folds", minimum=2)
        self.scoring = scoring
        self.use_labels_directly = use_labels_directly
        self.refit = refit
        self.random_state = random_state
        if oracle_scenario not in ("labels", "constraints"):
            raise ValueError(
                f"oracle_scenario must be 'labels' or 'constraints', got {oracle_scenario!r}"
            )
        self.oracle = oracle
        self.oracle_scenario = oracle_scenario
        self.oracle_amount = oracle_amount
        self.n_jobs = n_jobs
        self.backend = backend
        self.distance_backend = (
            None if distance_backend is None else resolve_distance_backend(distance_backend)
        )
        self.epsilon = execution.epsilon
        self.k_neighbors = execution.k_neighbors
        self.metric = execution.metric
        self.artifact_store = artifact_store
        self.artifact_scope = artifact_scope

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        *,
        labeled_objects: dict[int, int] | None = None,
        constraints: ConstraintSet | None = None,
        ground_truth: np.ndarray | None = None,
    ) -> "CVCP":
        """Run the full CVCP procedure on ``X``.

        Exactly one kind of side information must be provided:
        ``labeled_objects`` (Scenario I), ``constraints`` (Scenario II), or
        — with an ``oracle`` configured — ``ground_truth``, the hidden class
        labels the oracle generates side information from (the oracle's
        scenario and amount were fixed at construction time).
        """
        if self._effective_metric() == "precomputed":
            # X *is* the distance matrix; validated directly because a
            # legitimate precomputed matrix may contain +inf entries.
            from repro.clustering.distances import validate_precomputed_distances

            X = validate_precomputed_distances(X)
        else:
            X = check_array_2d(X)
        rng = check_random_state(self.random_state)

        if ground_truth is not None:
            if labeled_objects or (constraints is not None and len(constraints)):
                raise ValueError(
                    "provide either ground_truth (for the oracle) or explicit "
                    "side information, not both"
                )
            oracle = self.oracle if self.oracle is not None else PerfectOracle()
            labeled_objects, constraints = oracle.side_information(
                ground_truth, self.oracle_scenario, self.oracle_amount,
                random_state=rng, X=X,
            )
        elif self.oracle is not None:
            raise ValueError(
                "an oracle is configured but fit() received no ground_truth to query; "
                "pass ground_truth=y or drop the oracle and provide side information directly"
            )

        if labeled_objects and constraints is not None and len(constraints):
            raise ValueError(
                "provide either labeled_objects or constraints, not both; "
                "labels already imply their constraints"
            )
        scenario = "labels" if labeled_objects else "constraints"
        folds = make_folds(
            labeled_objects=labeled_objects,
            constraints=constraints,
            n_folds=self.n_folds,
            random_state=rng,
        )

        # One master seed; every grid cell derives its child seed from its
        # (value_index, fold_index) coordinates, so scores are independent of
        # iteration and completion order — the property that makes the
        # thread/process backends bit-identical to the serial one.
        master_seed = int(rng.integers(0, 2**63 - 1))

        if self.backend == "process" and "metric" in self.estimator.get_params():
            effective = self._effective_distance_backend()
            resolved = resolve_distance_backend(effective)
            # Warm the per-process distance cache before the pool starts.
            # Fork-started workers inherit the in-RAM matrix for free;
            # that is pointless under spawn/forkserver, where each worker
            # computes (and then caches) its own copy.  The memmap tier is
            # warmed under *every* start method: the warm call writes the
            # fingerprint-keyed spill file, which all workers — however
            # started — map instead of recomputing.  The neighbors tier has
            # no full matrix to warm — its graph memo is warmed lazily in
            # whichever worker builds it first.
            if resolved != "neighbors" and (
                multiprocessing.get_start_method() == "fork" or resolved == "memmap"
            ):
                cached_pairwise_distances(
                    X, self._effective_metric(), distance_backend=effective
                )

        data_key = array_fingerprint(X)
        tasks = [
            _GridTask(
                estimator=self._make_estimator(
                    value, derive_seed(master_seed, value_index, fold_index)
                ),
                data_key=data_key,
                fold=fold,
                scoring=self.scoring,
                use_labels_directly=self.use_labels_directly,
            )
            for value_index, value in enumerate(self.parameter_values)
            for fold_index, fold in enumerate(folds)
        ]
        # The serial/thread backends read the matrix straight from this
        # process's registry; only process workers need it shipped (once per
        # worker, via the initializer) rather than pickled into every task.
        n_folds = len(folds)

        # Per-cell resume: cells whose score is already persisted are
        # served from the store; only the remaining cells hit the executor,
        # and every fresh score is written through *as its task completes*
        # (executor ``on_result`` hook, running in this process), so a grid
        # interrupted mid-flight continues from its finished cells.
        scores: list[float | None] = [None] * len(tasks)
        pending: list[tuple[int, dict | None]] = []
        use_store = self.artifact_store is not None and self.artifact_scope is not None
        for index in range(len(tasks)):
            cell_key = None
            if use_store:
                value_index, fold_index = divmod(index, n_folds)
                cell_key = dict(
                    self.artifact_scope, phase="grid", value_index=value_index, fold=fold_index
                )
                cached = self.artifact_store.get("cell", cell_key)
                if cached is not None:
                    scores[index] = float(cached)
                    continue
            pending.append((index, cell_key))

        if pending:
            # Warm the constraint-independent structure phase of every value
            # that still has cells to compute: persisted "structure"
            # artifacts (shared across oracles, folds and constraint
            # amounts) are decoded into the per-process memo here in the
            # submitting process, so serial/thread cells and fork-started
            # process workers re-extract instead of refitting.  Fully
            # cache-served grids skip the warm-up entirely.
            self._warm_structures(
                X, sorted({divmod(index, n_folds)[0] for index, _ in pending})
            )
            # Without a store the callback is omitted entirely, keeping the
            # pool backends on their chunked fast path.
            persist_cell = None
            if use_store:
                def persist_cell(position: int, score: float) -> None:
                    self.artifact_store.put("cell", pending[position][1], score)

            executor = get_executor(
                self.backend, self.n_jobs,
                initializer=_register_grid_data if self.backend == "process" else None,
                initargs=(data_key, X) if self.backend == "process" else (),
            )
            _acquire_grid_data(data_key, X)
            try:
                computed = executor.run(
                    _evaluate_grid_cell,
                    [tasks[index] for index, _ in pending],
                    on_result=persist_cell,
                )
            finally:
                _release_grid_data(data_key)
            for (index, _), score in zip(pending, computed):
                scores[index] = score

        evaluations = [
            ParameterEvaluation(
                value=value,
                fold_scores=list(
                    scores[value_index * n_folds : (value_index + 1) * n_folds]
                ),
            )
            for value_index, value in enumerate(self.parameter_values)
        ]
        self.cv_results_ = CVCPResult(
            parameter_name=self.parameter_name,
            evaluations=evaluations,
            n_folds=len(folds),
            scenario=scenario,
        )
        self.best_params_ = {self.parameter_name: self.cv_results_.best_value}
        self.best_score_ = self.cv_results_.best_score

        if self.refit:
            best_index = self.parameter_values.index(self.cv_results_.best_value)
            self._warm_structures(X, [best_index])
            refit_seed = derive_seed(master_seed, best_index, n_folds)
            self.best_estimator_ = self._refit(X, labeled_objects, constraints, refit_seed)
            self.labels_ = self.best_estimator_.labels_
        return self

    def fit_predict(
        self,
        X: np.ndarray,
        *,
        labeled_objects: dict[int, int] | None = None,
        constraints: ConstraintSet | None = None,
        ground_truth: np.ndarray | None = None,
    ) -> np.ndarray:
        """Run CVCP and return the labels of the refitted best model."""
        if not self.refit:
            raise ValueError("fit_predict requires refit=True")
        self.fit(
            X, labeled_objects=labeled_objects, constraints=constraints,
            ground_truth=ground_truth,
        )
        return self.labels_

    # ------------------------------------------------------------------
    def _warm_structures(self, X: np.ndarray, value_indices: Sequence[int]) -> None:
        """Warm the store-backed structure phase for the given grid values.

        A no-op without an artifact store or for estimators that declare no
        cached structure phase (e.g. MPCKMeans, whose metric learning is
        constraint-dependent end to end).  The warm-up stays in the
        submitting process — worker tasks never touch the store.
        """
        if self.artifact_store is None:
            return
        if not getattr(self.estimator, "structure_caching", False):
            return
        for value_index in value_indices:
            estimator = self._make_estimator(self.parameter_values[value_index], 0)
            estimator.warm_structure(X, self.artifact_store)

    def _effective_distance_backend(self) -> str | None:
        """The tier grid cells run under: the CVCP override or the template's own."""
        if self.distance_backend is not None:
            return self.distance_backend
        return self.estimator.get_params().get("distance_backend")

    def _effective_metric(self) -> str:
        """The metric grid cells run under: the CVCP override or the template's own."""
        if self.metric is not None:
            return self.metric
        return self.estimator.get_params().get("metric", "euclidean")

    def _make_estimator(self, value: Any, seed: int) -> BaseClusterer:
        """Clone the template with the candidate value and a derived child seed."""
        overrides: dict[str, Any] = {self.parameter_name: value}
        if "random_state" in self.estimator.get_params():
            overrides["random_state"] = int(seed)
        if (
            self.distance_backend is not None
            and "distance_backend" in self.estimator.get_params()
        ):
            overrides["distance_backend"] = self.distance_backend
        params = self.estimator.get_params()
        if self.epsilon is not None and "epsilon" in params:
            overrides["epsilon"] = self.epsilon
        if self.k_neighbors is not None and "k_neighbors" in params:
            overrides["k_neighbors"] = self.k_neighbors
        if self.metric is not None and "metric" in params:
            overrides["metric"] = self.metric
        return self.estimator.clone(**overrides)

    def _refit(
        self,
        X: np.ndarray,
        labeled_objects: dict[int, int] | None,
        constraints: ConstraintSet | None,
        seed: int,
    ) -> BaseClusterer:
        """Step 4: rerun the winning model with all available side information."""
        estimator = self._make_estimator(self.cv_results_.best_value, seed)
        if labeled_objects:
            if self.use_labels_directly:
                estimator.fit(X, seed_labels=labeled_objects)
            else:
                from repro.constraints.generation import constraints_from_labels

                estimator.fit(X, constraints=constraints_from_labels(labeled_objects))
        else:
            estimator.fit(X, constraints=constraints)
        return estimator


def select_parameter(
    estimator: BaseClusterer,
    X: np.ndarray,
    parameter_values: Sequence[Any],
    *,
    labeled_objects: dict[int, int] | None = None,
    constraints: ConstraintSet | None = None,
    ground_truth: np.ndarray | None = None,
    oracle: ConstraintOracle | None = None,
    oracle_scenario: str = "constraints",
    oracle_amount: float = 0.2,
    n_folds: int = 10,
    scoring: str = "average_f",
    random_state: RandomStateLike = None,
    execution: ExecutionSpec | None = None,
    n_jobs: int | None = None,
    backend: str | None = None,
    distance_backend: str | None = None,
) -> tuple[Any, CVCPResult]:
    """Functional one-shot interface to CVCP.

    Returns ``(best value, full cross-validation result)`` without refitting;
    convenient inside experiment loops where the refit is done separately.
    ``execution`` selects the execution engine and distance-matrix storage
    tier as one :class:`~repro.core.executor.ExecutionSpec` (bit-identical
    across engines and tiers); the loose ``n_jobs``/``backend``/
    ``distance_backend`` keywords are deprecated spellings of the same
    thing.  With an ``oracle``, pass ``ground_truth`` instead of
    pre-sampled side information and the oracle generates ``oracle_amount``
    of ``oracle_scenario`` supervision before the grid runs.
    """
    execution = _resolve_execution(
        "select_parameter",
        execution,
        backend=backend,
        n_jobs=n_jobs,
        distance_backend=distance_backend,
    )
    search = CVCP(
        estimator,
        parameter_values,
        n_folds=n_folds,
        scoring=scoring,
        refit=False,
        random_state=random_state,
        oracle=oracle,
        oracle_scenario=oracle_scenario,
        oracle_amount=oracle_amount,
        execution=execution,
    )
    search.fit(
        X, labeled_objects=labeled_objects, constraints=constraints, ground_truth=ground_truth
    )
    return search.cv_results_.best_value, search.cv_results_
