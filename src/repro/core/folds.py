"""Constraint-aware cross-validation folds (Section 3.1 of the paper).

The naive approach — splitting the explicit constraints into folds — leaks
information: the transitive closure of the training constraints can contain
test constraints (Figure 2).  The two scenarios below avoid this by
splitting *objects* rather than constraints:

* **Scenario I — labelled objects** (:func:`label_scenario_folds`, Fig. 3):
  the labelled objects are partitioned into ``n`` folds.  Constraints are
  derived independently from the training-fold labels and from the
  test-fold labels, so they cannot overlap even implicitly.

* **Scenario II — pairwise constraints** (:func:`constraint_scenario_folds`,
  Fig. 4): the objects involved in any constraint are partitioned into
  ``n`` folds; constraints whose endpoints fall into different sides are
  deleted, and the transitive closure is recomputed independently on each
  side.

Both produce :class:`CVCPFold` objects carrying the training-side
information (labels and/or constraints handed to the clustering algorithm)
and the test-side constraints used purely for scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constraints.closure import transitive_closure
from repro.constraints.constraint import ConstraintSet
from repro.constraints.generation import constraints_from_labels
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_positive_int


@dataclass
class CVCPFold:
    """One train/test split of the available side information.

    Attributes
    ----------
    index:
        Position of the fold in the cross-validation (``0..n_folds-1``).
    training_labels:
        Partial labelling available for training (empty in Scenario II).
    training_constraints:
        Constraints available for training (derived from
        ``training_labels`` in Scenario I, re-closed explicit constraints in
        Scenario II).
    test_constraints:
        Constraints used exclusively for scoring the resulting partition.
    training_objects / test_objects:
        The object indices on each side of the split (useful for
        diagnostics and for excluding side-information objects from
        external evaluation).
    """

    index: int
    training_labels: dict[int, int] = field(default_factory=dict)
    training_constraints: ConstraintSet = field(default_factory=ConstraintSet)
    test_constraints: ConstraintSet = field(default_factory=ConstraintSet)
    training_objects: list[int] = field(default_factory=list)
    test_objects: list[int] = field(default_factory=list)

    def has_test_information(self) -> bool:
        """Whether the fold can score anything at all."""
        return len(self.test_constraints) > 0


def _partition_objects(
    objects: list[int], n_folds: int, rng: np.random.Generator
) -> list[list[int]]:
    """Shuffle ``objects`` and split them into ``n_folds`` near-equal folds."""
    shuffled = list(objects)
    rng.shuffle(shuffled)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    for position, obj in enumerate(shuffled):
        folds[position % n_folds].append(obj)
    return [sorted(fold) for fold in folds]


def _effective_n_folds(n_available: int, n_folds: int, *, min_per_fold: int = 1) -> int:
    """Cap the number of folds so every fold has at least ``min_per_fold`` objects.

    With very little side information (e.g. 10% of a small constraint pool),
    requesting ten folds would leave test folds with a single object and no
    test constraint at all; capping keeps every fold informative while never
    dropping below two folds.
    """
    if n_available < 2:
        raise ValueError(
            "cross-validation needs at least two objects carrying side information, "
            f"got {n_available}"
        )
    capped = min(n_folds, n_available if min_per_fold <= 1 else max(2, n_available // min_per_fold))
    return max(2, capped)


def label_scenario_folds(
    labeled_objects: dict[int, int],
    n_folds: int = 10,
    *,
    random_state: RandomStateLike = None,
    derive_training_constraints: bool = True,
) -> list[CVCPFold]:
    """Scenario I folds from a partial labelling.

    Parameters
    ----------
    labeled_objects:
        ``{object_index: class_label}`` — the side information the user has.
    n_folds:
        Requested number of folds (capped at the number of labelled objects).
    random_state:
        Seed or generator controlling the object shuffle.
    derive_training_constraints:
        Also derive the pairwise constraints implied by the training-fold
        labels (needed by algorithms that consume constraints rather than
        labels; Section 3.1.1 notes that this step can be skipped for
        algorithms that take labels directly).
    """
    check_positive_int(n_folds, name="n_folds", minimum=2)
    if not labeled_objects:
        raise ValueError("labeled_objects must not be empty")
    rng = check_random_state(random_state)

    objects = sorted(int(index) for index in labeled_objects)
    n_folds = _effective_n_folds(len(objects), n_folds)
    object_folds = _partition_objects(objects, n_folds, rng)

    folds: list[CVCPFold] = []
    for fold_index, test_objects in enumerate(object_folds):
        test_set = set(test_objects)
        training_objects = [index for index in objects if index not in test_set]

        training_labels = {index: int(labeled_objects[index]) for index in training_objects}
        test_labels = {index: int(labeled_objects[index]) for index in test_objects}

        training_constraints = (
            constraints_from_labels(training_labels)
            if derive_training_constraints
            else ConstraintSet()
        )
        test_constraints = constraints_from_labels(test_labels)

        folds.append(
            CVCPFold(
                index=fold_index,
                training_labels=training_labels,
                training_constraints=training_constraints,
                test_constraints=test_constraints,
                training_objects=training_objects,
                test_objects=sorted(test_objects),
            )
        )
    return folds


def constraint_scenario_folds(
    constraints: ConstraintSet,
    n_folds: int = 10,
    *,
    random_state: RandomStateLike = None,
) -> list[CVCPFold]:
    """Scenario II folds from an explicit constraint set.

    The given constraints are first extended by their transitive closure;
    the involved objects are partitioned into folds; constraints crossing
    the train/test object split are removed; and the closure is recomputed
    independently on each side (Section 3.1.2), which "essentially reduces
    to the approach of Scenario I".
    """
    check_positive_int(n_folds, name="n_folds", minimum=2)
    if not len(constraints):
        raise ValueError("constraints must not be empty")
    rng = check_random_state(random_state)

    closed = transitive_closure(constraints, strict=False)
    objects = closed.involved_objects()
    # Each test fold needs a few objects to carry at least one constraint, so
    # the fold count is additionally capped at one fold per three objects.
    n_folds = _effective_n_folds(len(objects), n_folds, min_per_fold=3)
    object_folds = _partition_objects(objects, n_folds, rng)

    folds: list[CVCPFold] = []
    for fold_index, test_objects in enumerate(object_folds):
        test_set = set(test_objects)
        training_objects = [index for index in objects if index not in test_set]

        training_constraints = transitive_closure(
            closed.restricted_to(training_objects), strict=False
        )
        test_constraints = transitive_closure(
            closed.restricted_to(test_objects), strict=False
        )

        folds.append(
            CVCPFold(
                index=fold_index,
                training_labels={},
                training_constraints=training_constraints,
                test_constraints=test_constraints,
                training_objects=training_objects,
                test_objects=sorted(test_objects),
            )
        )
    return folds


def make_folds(
    *,
    labeled_objects: dict[int, int] | None = None,
    constraints: ConstraintSet | None = None,
    n_folds: int = 10,
    random_state: RandomStateLike = None,
) -> list[CVCPFold]:
    """Dispatch to the appropriate scenario based on the provided information.

    Exactly one of ``labeled_objects`` and ``constraints`` must be given;
    labels take precedence because they are the more general input
    (constraints can always be derived from labels, Section 3.1.1).
    """
    if labeled_objects:
        return label_scenario_folds(labeled_objects, n_folds, random_state=random_state)
    if constraints is not None and len(constraints):
        return constraint_scenario_folds(constraints, n_folds, random_state=random_state)
    raise ValueError("provide either labeled_objects or a non-empty constraint set")
