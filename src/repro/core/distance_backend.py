"""Tiered distance backends: ``dense``, ``blockwise``, ``memmap`` and ``neighbors``.

The CVCP protocol re-clusters every (parameter value × fold) cell, and every
density-based layer of this library — OPTICS, the single-linkage/Prim
hierarchy, FOSC, silhouette evaluation, the memoised distance cache — starts
from the full ``(n, n)`` pairwise-distance matrix.  Materialising that matrix
densely caps the reproduction at a few thousand points; this module makes the
matrix *provider* pluggable instead:

``dense``
    Today's behaviour: the matrix (and every derived matrix) lives in RAM
    and derived computations run whole-matrix.  Fastest at paper scale.
``blockwise``
    The matrix still lives in RAM, but it is filled panel-at-a-time and the
    derived computations (core distances, mutual reachability) stream in
    row blocks with a bounded working set — no full-matrix temporaries.
``memmap``
    Out-of-core: matrices live in spill files under
    :func:`spill_directory` and are consumed through read-only
    ``np.memmap`` views whose pages the OS can evict under memory
    pressure.  Spill files are written atomically (temp file + rename),
    cleaned up on exceptions, and keyed by the data fingerprint — so
    process-backend executor workers **map the same file** instead of
    recomputing or receiving the matrix over a pipe, and a re-run after a
    kill reuses the finished spill.
``neighbors``
    Sub-quadratic: no full matrix at all.  A KD-tree epsilon-bounded k-NN
    graph (:mod:`repro.core.neighbor_graph`) replaces the matrix with
    sparse CSR structures, making ``n = 100000`` fits feasible.  This tier
    is **approximate-by-contract**, not bit-identical — see below.

Bit-identity contract
---------------------
The three *exact* tiers (:data:`EXACT_DISTANCE_BACKENDS`) produce
**bit-identical** matrices — and therefore bit-identical clusterings — for
the same input, because the canonical computation is the fixed row-panel
scheme of :mod:`repro.clustering.distances`: every exact tier performs the
same per-panel NumPy/BLAS calls and differs only in where the result is
stored and how the derived passes are scheduled.  Parity is enforced
across backends *and* across the serial/thread/process executors by
``tests/test_distance_backend.py`` and asserted before timing by
``repro bench scale``.

The ``neighbors`` tier sits outside this contract: points only see their
``k_neighbors`` nearest neighbours within ``epsilon``.  Its own contract —
entry-for-entry equality with ``dense`` in the exhaustive
``k_neighbors >= n`` regime, ARI-vs-exact floors at practical settings —
is documented in ``docs/determinism.md`` and enforced by
``tests/test_neighbor_graph.py`` and the scale bench.

Selection
---------
Every consumer takes
``distance_backend="dense" | "blockwise" | "memmap" | "neighbors"``
(``None`` consults the ``REPRO_DISTANCE_BACKEND`` environment variable and
falls back to ``"dense"``).  The spill directory honours
``REPRO_DISTANCE_SPILL_DIR``; the ``neighbors`` tier additionally reads
``REPRO_NEIGHBOR_EPSILON``/``REPRO_NEIGHBOR_K``.  Worker processes inherit
all of these variables, so the process executor composes with every tier.
"""

from __future__ import annotations

import hashlib
import itertools
import mmap
import os
import tempfile
from pathlib import Path

import numpy as np

#: Per-process counter making spill temp names unique per fill.
_FILL_COUNTER = itertools.count()

#: The exact full-matrix tiers: bit-identical to each other by construction.
EXACT_DISTANCE_BACKENDS: tuple[str, ...] = ("dense", "blockwise", "memmap")

#: Recognised distance backends, in order of increasing scale.  The
#: ``neighbors`` tier is *approximate-by-contract* (sparse k-NN graphs; see
#: :mod:`repro.core.neighbor_graph`) — bit-identity loops and shared-cache
#: assumptions must iterate :data:`EXACT_DISTANCE_BACKENDS` instead.
DISTANCE_BACKENDS: tuple[str, ...] = EXACT_DISTANCE_BACKENDS + ("neighbors",)

#: Backend used when neither the argument nor the environment selects one.
DEFAULT_DISTANCE_BACKEND = "dense"

#: Environment variable consulted when ``distance_backend=None``.
DISTANCE_BACKEND_ENV_VAR = "REPRO_DISTANCE_BACKEND"

#: Environment variable overriding the spill-file directory.
SPILL_DIR_ENV_VAR = "REPRO_DISTANCE_SPILL_DIR"

#: Suffix of finished spill files.
SPILL_SUFFIX = ".dmm"


def resolve_distance_backend(backend: str | None = None) -> str:
    """Resolve a backend name from the argument, the environment, or the default.

    Parameters
    ----------
    backend:
        ``"dense"``, ``"blockwise"``, ``"memmap"``, ``"neighbors"``, or
        ``None``.  ``None`` reads ``REPRO_DISTANCE_BACKEND`` and falls back
        to :data:`DEFAULT_DISTANCE_BACKEND` when it is unset or empty.

    Raises
    ------
    ValueError
        If the argument or the environment variable names an unknown backend.
    """
    origin = "distance_backend"
    if backend is None:
        backend = os.environ.get(DISTANCE_BACKEND_ENV_VAR, "").strip() or (
            DEFAULT_DISTANCE_BACKEND
        )
        origin = DISTANCE_BACKEND_ENV_VAR
    if backend not in DISTANCE_BACKENDS:
        raise ValueError(f"{origin} must be one of {DISTANCE_BACKENDS}, got {backend!r}")
    return backend


def spill_directory() -> Path:
    """Directory holding memmap spill files (created on first use).

    ``REPRO_DISTANCE_SPILL_DIR`` overrides the default
    ``<tempdir>/repro-distance-spill``.  The path is deterministic — not
    per-process — which is what lets executor worker processes map the
    parent's spill files and lets an interrupted run resume from its
    finished spills.
    """
    configured = os.environ.get(SPILL_DIR_ENV_VAR, "").strip()
    path = Path(configured) if configured else Path(tempfile.gettempdir()) / "repro-distance-spill"
    path.mkdir(parents=True, exist_ok=True)
    return path


def clear_spill_directory() -> int:
    """Remove every spill file (finished and stale temporaries); returns the count."""
    removed = 0
    root = spill_directory()
    for path in list(root.iterdir()):
        if path.suffix == SPILL_SUFFIX or SPILL_SUFFIX + ".tmp-" in path.name:
            path.unlink(missing_ok=True)
            removed += 1
    return removed


def _advise_dontneed(matrix: np.ndarray) -> None:
    """Drop the page residency of a memmap (no-op for anything else).

    ``MADV_DONTNEED`` on a file-backed shared mapping is lossless: clean
    pages are discarded and fault back in from the file on the next read.
    """
    raw = getattr(matrix, "_mmap", None)
    if raw is None or not hasattr(raw, "madvise"):  # pragma: no cover - platform
        return
    try:
        raw.madvise(mmap.MADV_DONTNEED)
    except (ValueError, OSError):  # pragma: no cover - mapping already closed
        pass


class DistanceBackend:
    """One storage/streaming tier for pairwise-distance matrices.

    Subclasses override the four hooks; consumers only ever talk to this
    interface (usually through
    :func:`repro.utils.cache.cached_pairwise_distances`, which adds the
    per-process memo on top).
    """

    #: Backend name (one of :data:`DISTANCE_BACKENDS`).
    name: str = ""

    def block_rows(self, n_samples: int) -> int | None:
        """Row-block size for derived streaming passes (``None`` = whole-matrix)."""
        raise NotImplementedError

    def pairwise(self, X: np.ndarray, metric: str = "euclidean") -> np.ndarray:
        """The canonical ``(n, n)`` distance matrix of ``X`` in this tier's storage."""
        raise NotImplementedError

    def derived_matrix(self, n_samples: int, tag: str) -> np.ndarray:
        """Writable ``(n, n)`` storage for a derived matrix (e.g. mutual reachability)."""
        raise NotImplementedError

    def release(self, matrix: np.ndarray) -> None:
        """Hint that ``matrix`` will not be read for a while (drops memmap pages)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DenseBackend(DistanceBackend):
    """In-RAM matrices with whole-matrix derived computations (the default)."""

    name = "dense"

    def block_rows(self, n_samples: int) -> int | None:
        return None

    def pairwise(self, X: np.ndarray, metric: str = "euclidean") -> np.ndarray:
        from repro.clustering.distances import pairwise_distances

        return pairwise_distances(X, metric=metric)

    def derived_matrix(self, n_samples: int, tag: str) -> np.ndarray:
        return np.empty((n_samples, n_samples), dtype=np.float64)


class BlockwiseBackend(DenseBackend):
    """In-RAM matrices, but every pass streams row blocks with a bounded working set.

    Storage is identical to :class:`DenseBackend`; only the derived-pass
    scheduling differs (finite :meth:`block_rows`), so the in-RAM hooks are
    inherited rather than duplicated.
    """

    name = "blockwise"

    def block_rows(self, n_samples: int) -> int | None:
        from repro.clustering.distances import DEFAULT_BLOCK_ROWS

        return DEFAULT_BLOCK_ROWS


class MemmapBackend(DistanceBackend):
    """Out-of-core matrices in atomically-written, fingerprint-keyed spill files."""

    name = "memmap"

    #: Flush-and-drop the dirty pages of a spill being written every this
    #: many panels, bounding the write-phase resident set.
    flush_panels = 16

    def block_rows(self, n_samples: int) -> int | None:
        from repro.clustering.distances import DEFAULT_BLOCK_ROWS

        return DEFAULT_BLOCK_ROWS

    # -- spill protocol -------------------------------------------------
    def spill_path(self, X: np.ndarray, metric: str) -> Path:
        """Deterministic spill file for ``(X, metric)`` pairwise distances."""
        from repro.utils.cache import array_fingerprint

        digest = hashlib.blake2b(
            f"pairwise:{array_fingerprint(X)}:{metric}".encode(), digest_size=16
        ).hexdigest()
        return spill_directory() / f"{digest}-{X.shape[0]}{SPILL_SUFFIX}"

    def _fill_spill(self, path: Path, X: np.ndarray, metric: str) -> None:
        """Write the matrix into ``path`` atomically (temp file + rename)."""
        from repro.clustering.distances import pairwise_distances

        n = X.shape[0]
        # The temp name is unique per fill, not just per process: with the
        # memo disabled (configure_distance_cache(0)) two thread-backend
        # tasks can fill the same spill concurrently, and each must rename
        # its own finished temp (last writer wins with identical bytes).
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}-{next(_FILL_COUNTER)}")
        matrix = np.memmap(tmp, dtype=np.float64, mode="w+", shape=(n, n))
        panels_written = 0

        def bound_dirty_pages(start: int, stop: int) -> None:
            # Flush and drop dirty pages every few panels so the write
            # phase never holds the whole matrix resident.
            nonlocal panels_written
            panels_written += 1
            if panels_written % self.flush_panels == 0:
                matrix.flush()
                _advise_dontneed(matrix)

        try:
            pairwise_distances(X, metric=metric, out=matrix, panel_done=bound_dirty_pages)
            matrix.flush()
            _advise_dontneed(matrix)
        except BaseException:
            # Safe cleanup: never leave a half-written temp file behind.
            del matrix
            tmp.unlink(missing_ok=True)
            raise
        del matrix
        os.replace(tmp, path)

    def pairwise(self, X: np.ndarray, metric: str = "euclidean") -> np.ndarray:
        from scipy import sparse

        if not sparse.issparse(X):
            X = np.asarray(X)
        n = X.shape[0]
        path = self.spill_path(X, metric)
        expected_bytes = n * n * np.dtype(np.float64).itemsize
        if not (path.exists() and path.stat().st_size == expected_bytes):
            self._fill_spill(path, X, metric)
        return np.memmap(path, dtype=np.float64, mode="r", shape=(n, n))

    def derived_matrix(self, n_samples: int, tag: str) -> np.ndarray:
        """Ephemeral writable spill: unlinked immediately, reclaimed on close/crash."""
        handle, raw_path = tempfile.mkstemp(
            prefix=f"{tag}-", suffix=f"{SPILL_SUFFIX}.tmp-{os.getpid()}",
            dir=spill_directory(),
        )
        os.close(handle)
        matrix = np.memmap(raw_path, dtype=np.float64, mode="w+", shape=(n_samples, n_samples))
        # The mapping keeps the data alive; dropping the directory entry now
        # means the file can never leak, even if the process dies mid-fit.
        Path(raw_path).unlink(missing_ok=True)
        return matrix

    def release(self, matrix: np.ndarray) -> None:
        if getattr(matrix, "flags", None) is not None and matrix.flags.writeable:
            flush = getattr(matrix, "flush", None)
            if flush is not None:
                flush()
        _advise_dontneed(matrix)


class NeighborsBackend(DistanceBackend):
    """The sparse epsilon-bounded k-NN tier (:mod:`repro.core.neighbor_graph`).

    This tier never materialises the full pairwise matrix — consumers that
    know about it (OPTICS, :class:`~repro.clustering.hierarchy.DensityHierarchy`)
    branch to the sparse graph pipeline instead of calling :meth:`pairwise`;
    consumers that genuinely need all ``n²`` entries (the silhouette,
    MPCK-Means, non-Euclidean metrics) get a clear error pointing at the
    exact tiers.
    """

    name = "neighbors"

    def block_rows(self, n_samples: int) -> int | None:
        return None

    def _full_matrix_error(self, consumer: str) -> ValueError:
        return ValueError(
            f"distance_backend='neighbors' builds a sparse neighbour graph and "
            f"cannot materialise the full (n, n) {consumer}; use an exact "
            f"distance backend ({', '.join(EXACT_DISTANCE_BACKENDS)}) for "
            f"consumers that need every pairwise entry"
        )

    def pairwise(self, X: np.ndarray, metric: str = "euclidean") -> np.ndarray:
        raise self._full_matrix_error("pairwise-distance matrix")

    def derived_matrix(self, n_samples: int, tag: str) -> np.ndarray:
        raise self._full_matrix_error(f"derived matrix ({tag})")


_BACKENDS: dict[str, DistanceBackend] = {
    "dense": DenseBackend(),
    "blockwise": BlockwiseBackend(),
    "memmap": MemmapBackend(),
    "neighbors": NeighborsBackend(),
}


def get_distance_backend(backend: str | None = None) -> DistanceBackend:
    """The shared backend instance for a name (``None`` = environment/default)."""
    return _BACKENDS[resolve_distance_backend(backend)]
