"""Pluggable parallel execution engine for grid and experiment workloads.

The CVCP procedure evaluates an embarrassingly parallel
``|parameter values| × n_folds`` grid, and the experiment drivers repeat
that grid over data sets × algorithms × trials.  This module provides the
substrate both layers submit their work through:

* :class:`Executor` — the abstraction: ``run(fn, tasks)`` applies a callable
  to every task and returns the results *in task order*;
* :class:`SerialExecutor` / :class:`ThreadExecutor` /
  :class:`ProcessExecutor` — stdlib-only backends
  (:mod:`concurrent.futures`; no third-party dependencies);
* :func:`get_executor` — backend factory (``"serial"``, ``"thread"``,
  ``"process"``);
* :func:`derive_seed` — deterministic per-task seed derivation.

Determinism contract
--------------------
Task seeds are derived from a master seed plus the task's *grid coordinates*
(e.g. ``(value_index, fold_index)``) through :class:`numpy.random.SeedSequence`,
never drawn from a shared generator inside the loop.  Results therefore do
not depend on iteration or completion order, and all three backends produce
bit-identical output for the same master seed.

Exceptions raised inside a worker task propagate to the caller of
:meth:`Executor.run` unchanged (for the process backend: with the usual
pickling round-trip of :mod:`concurrent.futures`).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.utils.specs import SpecError, check_spec_mapping, unknown_key_problems

#: The recognised backend names, in order of increasing isolation.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutionSpec:
    """The execution engine as one validated, picklable value.

    Replaces the ``backend=`` / ``n_jobs=`` / ``distance_backend=``
    keyword sprawl on :class:`~repro.core.cvcp.CVCP` and
    :func:`~repro.core.cvcp.select_parameter`: construct one of these and
    pass ``execution=spec`` instead.  Also the validated form of the
    pipeline ``[execution]`` config table (minus the pipeline-level
    ``parallelize`` key).

    Every field defaults to ``None`` meaning "inherit the caller's
    default" — ``backend=None`` resolves to ``"serial"`` at the use site,
    ``n_jobs=None`` to all cores, ``distance_backend=None`` to the
    ``REPRO_DISTANCE_BACKEND`` environment fallback — so a default
    ``ExecutionSpec()`` is always a no-op override.

    All *exact* execution engines are bit-identical for a fixed seed, so
    two runs differing only in their ``ExecutionSpec`` share every cached
    artifact.  The one exception is ``distance_backend="neighbors"``: it is
    approximate-by-contract, and its ``epsilon``/``k_neighbors`` knobs
    (``None`` = consult ``REPRO_NEIGHBOR_EPSILON``/``REPRO_NEIGHBOR_K``)
    become part of the trial fingerprint so approximate results never
    shadow exact ones.

    ``metric`` (``None`` = inherit the data set's own metric) overrides the
    distance metric of every density-based fit; it conflicts with
    ``distance_backend="neighbors"`` for anything but ``"euclidean"``
    (the KD-tree is a metric-space index) and that conflict is reported as
    a validation problem here rather than a late runtime error.
    """

    backend: str | None = None
    n_jobs: int | None = None
    distance_backend: str | None = None
    epsilon: float | None = None
    k_neighbors: int | None = None
    metric: str | None = None

    def __post_init__(self) -> None:
        problems = []
        if self.backend is not None and self.backend not in BACKENDS:
            problems.append(
                f"execution.backend: must be one of {', '.join(BACKENDS)}; got {self.backend!r}"
            )
        if self.n_jobs is not None and (
            isinstance(self.n_jobs, bool) or not isinstance(self.n_jobs, int)
        ):
            problems.append(f"execution.n_jobs: must be an integer, got {self.n_jobs!r}")
        if self.distance_backend is not None:
            # Imported lazily to keep this module importable standalone.
            from repro.core.distance_backend import DISTANCE_BACKENDS

            if self.distance_backend not in DISTANCE_BACKENDS:
                problems.append(
                    "execution.distance_backend: must be one of "
                    f"{', '.join(DISTANCE_BACKENDS)}; got {self.distance_backend!r}"
                )
        if self.epsilon is not None:
            if isinstance(self.epsilon, bool) or not isinstance(self.epsilon, (int, float)):
                problems.append(
                    f"execution.epsilon: must be a number, got {self.epsilon!r}"
                )
            elif not self.epsilon > 0:  # rejects NaN too
                problems.append(
                    f"execution.epsilon: must be positive, got {self.epsilon!r}"
                )
        if self.k_neighbors is not None:
            if isinstance(self.k_neighbors, bool) or not isinstance(self.k_neighbors, int):
                problems.append(
                    f"execution.k_neighbors: must be an integer, got {self.k_neighbors!r}"
                )
            elif self.k_neighbors < 1:
                problems.append(
                    f"execution.k_neighbors: must be >= 1, got {self.k_neighbors!r}"
                )
        if self.metric is not None:
            from repro.clustering.distances import DATASET_METRICS

            if self.metric not in DATASET_METRICS:
                problems.append(
                    "execution.metric: must be one of "
                    f"{', '.join(DATASET_METRICS)}; got {self.metric!r}"
                )
        if (
            self.distance_backend is not None
            and self.distance_backend != "neighbors"
            and (self.epsilon is not None or self.k_neighbors is not None)
        ):
            problems.append(
                "execution.epsilon/k_neighbors: only meaningful with "
                f"distance_backend = \"neighbors\", but distance_backend is "
                f"{self.distance_backend!r}"
            )
        if (
            self.distance_backend == "neighbors"
            and self.metric is not None
            and self.metric != "euclidean"
        ):
            problems.append(
                "execution.metric: distance_backend = \"neighbors\" supports "
                f"metric = \"euclidean\" only (KD-tree index), got "
                f"{self.metric!r}; use an exact distance backend for this metric"
            )
        if problems:
            raise SpecError("execution", problems)

    def to_spec(self) -> dict:
        """JSON/TOML-ready mapping; inherit-the-default fields are omitted."""
        spec: dict[str, object] = {}
        if self.backend is not None:
            spec["backend"] = self.backend
        if self.n_jobs is not None:
            spec["n_jobs"] = self.n_jobs
        if self.distance_backend is not None:
            spec["distance_backend"] = self.distance_backend
        if self.epsilon is not None:
            spec["epsilon"] = self.epsilon
        if self.k_neighbors is not None:
            spec["k_neighbors"] = self.k_neighbors
        if self.metric is not None:
            spec["metric"] = self.metric
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping) -> "ExecutionSpec":
        """Validate a mapping (e.g. an ``[execution]`` table) into a spec.

        Collects every problem before raising :class:`SpecError`.
        """
        spec = check_spec_mapping(spec, "execution")
        known = ("backend", "n_jobs", "distance_backend", "epsilon", "k_neighbors", "metric")
        problems = unknown_key_problems(spec, known, "execution")
        kwargs = {key: spec[key] for key in known if key in spec}
        built = None
        try:
            built = cls(**kwargs)
        except SpecError as exc:
            problems.extend(exc.problems)
        if problems or built is None:
            raise SpecError("execution", problems)
        return built


def derive_seed(master_seed: int, *coordinates: int) -> int:
    """Deterministic child seed for the task at ``coordinates``.

    The seed depends only on ``(master_seed, *coordinates)`` — not on how
    many tasks ran before this one — which is what makes parallel and serial
    execution bit-identical.
    """
    entropy = [int(master_seed) & (2**64 - 1)]
    entropy.extend(int(coordinate) & (2**64 - 1) for coordinate in coordinates)
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, np.uint64)[0] % (2**63 - 1))


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean "all cores"; negative values follow the joblib
    convention (``-1`` = all cores, ``-2`` = all but one, ...).
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return int(n_jobs)


class Executor(ABC):
    """Applies a callable to a sequence of independent tasks."""

    #: Backend name (one of :data:`BACKENDS`).
    name: str = ""

    @abstractmethod
    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task, returning results in task order.

        ``on_result(index, result)`` — when given — is invoked in the
        *submitting* process as each task finishes (task order for the
        serial backend, completion order for the pools), which is what
        lets callers persist partial progress incrementally: results
        delivered before an interruption have already been handed over.

        The first exception raised by a task is re-raised here.
        """


def _run_inline(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    on_result: Callable[[int, Any], None] | None,
) -> list[Any]:
    results: list[Any] = []
    for index, task in enumerate(tasks):
        results.append(fn(task))
        if on_result is not None:
            on_result(index, results[-1])
    return results


class SerialExecutor(Executor):
    """In-process, single-threaded execution (the reference backend)."""

    name = "serial"

    def __init__(
        self,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        self.initializer = initializer
        self.initargs = initargs

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task inline, in task order."""
        if self.initializer is not None:
            self.initializer(*self.initargs)
        return _run_inline(fn, tasks, on_result)


class _PoolExecutor(Executor):
    """Shared scaffolding for the :mod:`concurrent.futures` backends."""

    def __init__(
        self,
        n_jobs: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.initializer = initializer
        self.initargs = initargs

    def _pool(self, max_workers: int):  # pragma: no cover - trivial dispatch
        raise NotImplementedError

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task through the pool, in task order.

        Falls back to inline execution for a single worker or task, uses a
        chunked ``pool.map`` when no ``on_result`` callback is given, and
        per-task submission otherwise so completions stream to the caller.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        max_workers = min(self.n_jobs, len(tasks))
        if max_workers == 1:
            if self.initializer is not None:
                self.initializer(*self.initargs)
            return _run_inline(fn, tasks, on_result)
        with self._pool(max_workers) as pool:
            if on_result is None:
                chunksize = max(1, len(tasks) // (max_workers * 4))
                return list(pool.map(fn, tasks, chunksize=chunksize))
            # Per-task submission so every completion can be handed to the
            # caller immediately (chunked map would batch deliveries).
            futures = {pool.submit(fn, task): index for index, task in enumerate(tasks)}
            results: list[Any] = [None] * len(tasks)
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                on_result(index, results[index])
            return results


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution: zero pickling cost, shares the process caches.

    Best when the work releases the GIL (numpy-heavy tasks) or when task
    payloads are large relative to the compute.
    """

    name = "thread"

    def _pool(self, max_workers: int):
        return ThreadPoolExecutor(
            max_workers=max_workers,
            initializer=self.initializer,
            initargs=self.initargs,
        )


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution: true parallelism for pure-Python hot loops.

    Tasks, initargs and results must be picklable.  Shared payloads (e.g.
    the data matrix) belong in ``initializer``/``initargs`` — shipped once
    per worker — rather than in every task.  On fork-based platforms the
    workers additionally inherit caches already warmed in the parent.
    """

    name = "process"

    def _pool(self, max_workers: int):
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=self.initializer,
            initargs=self.initargs,
        )


def get_executor(
    backend: str = "serial",
    n_jobs: int | None = None,
    *,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> Executor:
    """Instantiate the executor for a backend name.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    n_jobs:
        Worker count for the pool backends (``None``/``0`` = all cores,
        negative = joblib-style); ignored by the serial backend.
    initializer / initargs:
        Optional per-worker setup hook (run once inline for the serial
        backend).  Use it to ship payloads shared by all tasks once per
        worker instead of once per task.
    """
    if backend == "serial":
        return SerialExecutor(initializer=initializer, initargs=initargs)
    if backend == "thread":
        return ThreadExecutor(n_jobs, initializer=initializer, initargs=initargs)
    if backend == "process":
        return ProcessExecutor(n_jobs, initializer=initializer, initargs=initargs)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


def execute(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    *,
    backend: str = "serial",
    n_jobs: int | None = None,
) -> list[Any]:
    """One-shot convenience wrapper around :func:`get_executor`."""
    return get_executor(backend, n_jobs).run(fn, list(tasks))
