"""Pairwise-constraint machinery for semi-supervised clustering.

This subpackage provides the substrate used by both scenarios of the CVCP
framework (Pourrajabi et al., EDBT 2014):

* :mod:`repro.constraints.constraint` — the :class:`Constraint` value type
  and the :class:`ConstraintSet` container.
* :mod:`repro.constraints.closure` — transitive closure of a constraint set
  and consistency checking (Figure 2 of the paper).
* :mod:`repro.constraints.graph` — graph views over constraint sets
  (components, adjacency, induced subsets).
* :mod:`repro.constraints.generation` — sampling labelled objects,
  deriving constraints from labels, building and sampling constraint pools
  (Section 4.1 of the paper).
* :mod:`repro.constraints.oracles` — pluggable supervision sources built on
  top of the generation primitives: the paper's perfect oracle plus noisy,
  budget-constrained and actively-acquiring variants, with a registry the
  pipeline config drives by name.
"""

from repro.constraints.constraint import (
    CANNOT_LINK,
    MUST_LINK,
    Constraint,
    ConstraintSet,
    cannot_link,
    must_link,
)
from repro.constraints.closure import (
    InconsistentConstraintsError,
    transitive_closure,
    is_consistent,
    must_link_components,
)
from repro.constraints.graph import ConstraintGraph
from repro.constraints.generation import (
    constraints_from_labels,
    sample_labeled_objects,
    build_constraint_pool,
    sample_constraint_subset,
)
from repro.constraints.oracles import (
    ActiveOracle,
    BudgetedOracle,
    ConstraintOracle,
    NoisyOracle,
    PerfectOracle,
    make_oracle,
    oracle_from_spec,
    oracle_names,
    register_oracle,
    repair_closure_consistency,
)

__all__ = [
    "MUST_LINK",
    "CANNOT_LINK",
    "Constraint",
    "ConstraintSet",
    "must_link",
    "cannot_link",
    "transitive_closure",
    "is_consistent",
    "must_link_components",
    "InconsistentConstraintsError",
    "ConstraintGraph",
    "constraints_from_labels",
    "sample_labeled_objects",
    "build_constraint_pool",
    "sample_constraint_subset",
    "ConstraintOracle",
    "PerfectOracle",
    "NoisyOracle",
    "BudgetedOracle",
    "ActiveOracle",
    "make_oracle",
    "oracle_from_spec",
    "oracle_names",
    "register_oracle",
    "repair_closure_consistency",
]
