"""Transitive closure of pairwise constraints.

Section 3.1 of the paper (Figure 2) motivates why the closure matters: from
``must-link(A, B)``, ``must-link(C, D)`` and ``cannot-link(B, C)`` one can
*derive* ``cannot-link(A, C)``, ``cannot-link(A, D)`` and
``cannot-link(B, D)``.  If an evaluation procedure splits constraints into
training and test folds without accounting for these derived constraints,
information leaks from the training folds into the test fold and the
estimated classification error is too optimistic.

The closure rules are the standard ones:

* must-link is an equivalence relation: the must-link components are the
  connected components of the must-link graph, and every pair inside a
  component is a (derived) must-link.
* cannot-link lifts to components: if any object of component ``S`` cannot
  link to any object of component ``T``, then every pair ``(s, t)`` with
  ``s ∈ S`` and ``t ∈ T`` is a (derived) cannot-link.

A constraint set is *inconsistent* if a cannot-link connects two objects of
the same must-link component.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.constraints.constraint import (
    CANNOT_LINK,
    MUST_LINK,
    Constraint,
    ConstraintSet,
)
from repro.utils.disjoint_set import DisjointSet


class InconsistentConstraintsError(ValueError):
    """Raised when the transitive closure of a constraint set is contradictory."""


def must_link_components(constraints: ConstraintSet) -> list[list[int]]:
    """Connected components of the must-link graph.

    Only objects that appear in at least one constraint (of either kind) are
    included.  Objects that appear only in cannot-link constraints form
    singleton components.

    Returns
    -------
    list of lists
        Each inner list holds the sorted object indices of one component.
        Components are sorted by their smallest member.
    """
    ds = DisjointSet()
    for index in constraints.involved_objects():
        ds.add(index)
    for constraint in constraints.must_links:
        ds.union(constraint.i, constraint.j)
    groups = ds.groups()
    return sorted((sorted(group) for group in groups), key=lambda g: g[0])


def is_consistent(constraints: ConstraintSet) -> bool:
    """Whether the constraint set admits at least one satisfying partition.

    A set is inconsistent exactly when some cannot-link constraint connects
    two objects of the same must-link component.
    """
    ds = DisjointSet()
    for index in constraints.involved_objects():
        ds.add(index)
    for constraint in constraints.must_links:
        ds.union(constraint.i, constraint.j)
    for constraint in constraints.cannot_links:
        if ds.find(constraint.i) == ds.find(constraint.j):
            return False
    return True


def transitive_closure(
    constraints: ConstraintSet,
    *,
    strict: bool = True,
) -> ConstraintSet:
    """Compute the full transitive closure of ``constraints``.

    Parameters
    ----------
    constraints:
        The explicit constraints.
    strict:
        If true (default), raise :class:`InconsistentConstraintsError` when
        the closure is contradictory.  If false, contradictions are resolved
        in favour of the must-link (the contradicting derived cannot-links
        are simply not emitted), which mirrors how a user-facing tool would
        degrade gracefully on noisy side information.

    Returns
    -------
    ConstraintSet
        A new constraint set containing every explicit and derived
        constraint.

    Notes
    -----
    The closure is quadratic in the size of the must-link components, which
    matches the semantics of constraints-from-labels used throughout the
    paper (labels for a class of ``m`` objects induce ``m·(m-1)/2``
    must-links).
    """
    if constraints.is_closed:
        # Closure is idempotent and every marked closure is consistent by
        # construction, so strict and lenient callers alike can reuse it.
        # This is the hot path of the CVCP grid: the folds hand each cell
        # an already-closed constraint set, and re-deriving its quadratic
        # closure per parameter value would dominate the extraction phase.
        return constraints.copy()

    ds = DisjointSet()
    for index in constraints.involved_objects():
        ds.add(index)
    for constraint in constraints.must_links:
        ds.union(constraint.i, constraint.j)

    components: dict[int, list[int]] = {}
    for index in constraints.involved_objects():
        components.setdefault(ds.find(index), []).append(index)

    closure = ConstraintSet()

    # All pairs inside one must-link component are must-links.
    for members in components.values():
        for i, j in combinations(sorted(members), 2):
            closure.add(Constraint(i, j, MUST_LINK))

    # Cannot-links lift to component pairs.
    cannot_component_pairs: set[tuple[int, int]] = set()
    for constraint in constraints.cannot_links:
        root_i = ds.find(constraint.i)
        root_j = ds.find(constraint.j)
        if root_i == root_j:
            if strict:
                raise InconsistentConstraintsError(
                    f"cannot-link({constraint.i}, {constraint.j}) contradicts the "
                    "must-link closure: both objects are in the same must-link component"
                )
            continue
        key = (root_i, root_j) if root_i < root_j else (root_j, root_i)
        cannot_component_pairs.add(key)

    for root_i, root_j in cannot_component_pairs:
        for i in components[root_i]:
            for j in components[root_j]:
                closure.add(Constraint(i, j, CANNOT_LINK))

    closure._closed = True
    return closure


def closure_size(constraints: ConstraintSet) -> tuple[int, int]:
    """Return ``(n_must_link, n_cannot_link)`` of the closure without materialising it.

    Useful for tests and for reporting how much information the explicit
    constraints actually carry.
    """
    ds = DisjointSet()
    for index in constraints.involved_objects():
        ds.add(index)
    for constraint in constraints.must_links:
        ds.union(constraint.i, constraint.j)

    sizes: dict[int, int] = {}
    for index in constraints.involved_objects():
        root = ds.find(index)
        sizes[root] = sizes.get(root, 0) + 1

    n_must = sum(size * (size - 1) // 2 for size in sizes.values())

    cannot_component_pairs: set[tuple[int, int]] = set()
    for constraint in constraints.cannot_links:
        root_i = ds.find(constraint.i)
        root_j = ds.find(constraint.j)
        if root_i == root_j:
            raise InconsistentConstraintsError(
                f"cannot-link({constraint.i}, {constraint.j}) contradicts the must-link closure"
            )
        key = (root_i, root_j) if root_i < root_j else (root_j, root_i)
        cannot_component_pairs.add(key)
    n_cannot = sum(sizes[a] * sizes[b] for a, b in cannot_component_pairs)
    return n_must, n_cannot


def derived_constraints(constraints: ConstraintSet) -> ConstraintSet:
    """Constraints present in the closure but not given explicitly."""
    closure = transitive_closure(constraints)
    derived = ConstraintSet()
    for constraint in closure:
        if constraint not in constraints:
            derived.add(constraint)
    return derived


def closure_of_labels(labels: dict[int, object]) -> ConstraintSet:
    """Closure induced by a partial labelling ``{object_index: class_label}``.

    Two labelled objects with equal labels yield a must-link, with different
    labels a cannot-link.  (The result is already transitively closed.)
    """
    closure = ConstraintSet()
    items = sorted(labels.items())
    for (i, label_i), (j, label_j) in combinations(items, 2):
        kind = MUST_LINK if label_i == label_j else CANNOT_LINK
        closure.add(Constraint(i, j, kind))
    closure._closed = True
    return closure


def restrict_and_close(
    constraints: ConstraintSet, objects: Iterable[int], *, strict: bool = True
) -> ConstraintSet:
    """Restrict ``constraints`` to ``objects`` and re-close the result.

    This is the primitive used by the Scenario II fold construction
    (Section 3.1.2): constraints crossing the object split are removed and
    the transitive closure is recomputed independently on each side.
    """
    return transitive_closure(constraints.restricted_to(objects), strict=strict)
