"""Graph view over a constraint set.

Section 3.1 of the paper describes the constraints as an edge-weighted graph
over the data objects (weight 1 for must-link, 0 for cannot-link).  The
:class:`ConstraintGraph` wraps a :class:`~repro.constraints.constraint.ConstraintSet`
with the graph-level queries the fold-construction machinery needs:
adjacency, connected components (over all constraints or over must-links
only), and edge-cut statistics for a given object partition.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.constraints.constraint import CANNOT_LINK, MUST_LINK, Constraint, ConstraintSet
from repro.utils.disjoint_set import DisjointSet


class ConstraintGraph:
    """Undirected graph whose vertices are objects and edges are constraints."""

    def __init__(self, constraints: ConstraintSet) -> None:
        self._constraints = constraints
        self._adjacency: dict[int, dict[int, int]] = {}
        for constraint in constraints:
            self._adjacency.setdefault(constraint.i, {})[constraint.j] = constraint.kind
            self._adjacency.setdefault(constraint.j, {})[constraint.i] = constraint.kind

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> ConstraintSet:
        """The underlying constraint set."""
        return self._constraints

    @property
    def n_vertices(self) -> int:
        """Number of objects touched by at least one constraint."""
        return len(self._adjacency)

    @property
    def n_edges(self) -> int:
        """Number of constraints (each is one undirected edge)."""
        return len(self._constraints)

    def vertices(self) -> list[int]:
        """Sorted vertex (object) indices."""
        return sorted(self._adjacency)

    def neighbors(self, index: int) -> dict[int, int]:
        """Mapping ``neighbor -> constraint kind`` for object ``index``."""
        return dict(self._adjacency.get(index, {}))

    def degree(self, index: int) -> int:
        """Number of constraints touching object ``index``."""
        return len(self._adjacency.get(index, {}))

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def connected_components(self, *, must_link_only: bool = False) -> list[list[int]]:
        """Connected components of the graph.

        Parameters
        ----------
        must_link_only:
            If true, only must-link edges connect vertices (this yields the
            must-link components used by the transitive closure); otherwise
            both constraint kinds are treated as edges.
        """
        ds = DisjointSet(self._adjacency)
        for constraint in self._constraints:
            if must_link_only and not constraint.is_must_link:
                continue
            ds.union(constraint.i, constraint.j)
        groups = ds.groups()
        return sorted((sorted(group) for group in groups), key=lambda g: g[0])

    def component_of(self, index: int, *, must_link_only: bool = False) -> list[int]:
        """The component containing object ``index`` (empty if unknown)."""
        for component in self.connected_components(must_link_only=must_link_only):
            if index in component:
                return component
        return []

    # ------------------------------------------------------------------
    # Partition interactions (used by fold construction diagnostics)
    # ------------------------------------------------------------------
    def cut_edges(self, fold_assignment: Mapping[int, int]) -> ConstraintSet:
        """Constraints whose endpoints fall in different folds.

        ``fold_assignment`` maps object index to a fold identifier.  Objects
        missing from the mapping are ignored (their edges are not reported).
        """
        cut = ConstraintSet()
        for constraint in self._constraints:
            fold_i = fold_assignment.get(constraint.i)
            fold_j = fold_assignment.get(constraint.j)
            if fold_i is None or fold_j is None:
                continue
            if fold_i != fold_j:
                cut.add(constraint)
        return cut

    def induced(self, objects: Iterable[int]) -> "ConstraintGraph":
        """Subgraph induced by ``objects`` (constraints fully inside the set)."""
        return ConstraintGraph(self._constraints.restricted_to(objects))

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    def adjacency_matrix(self, n_objects: int) -> np.ndarray:
        """Dense ``(n_objects, n_objects)`` matrix view.

        Entries are ``+1`` for must-link, ``-1`` for cannot-link and ``0``
        for "no constraint".  Useful for vectorised penalty computations in
        constrained clustering algorithms.
        """
        matrix = np.zeros((n_objects, n_objects), dtype=np.int8)
        for constraint in self._constraints:
            value = 1 if constraint.kind == MUST_LINK else -1
            matrix[constraint.i, constraint.j] = value
            matrix[constraint.j, constraint.i] = value
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstraintGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"


def graph_from_pairs(
    must_links: Iterable[tuple[int, int]] = (),
    cannot_links: Iterable[tuple[int, int]] = (),
) -> ConstraintGraph:
    """Convenience constructor mirroring :meth:`ConstraintSet.from_arrays`."""
    constraints = ConstraintSet()
    for i, j in must_links:
        constraints.add(Constraint(i, j, MUST_LINK))
    for i, j in cannot_links:
        constraints.add(Constraint(i, j, CANNOT_LINK))
    return ConstraintGraph(constraints)
