"""Constraint value type and constraint-set container.

A pairwise instance-level constraint relates two data objects, identified by
their integer indices in the data matrix, and is either a *must-link*
(the two objects should end up in the same cluster) or a *cannot-link*
(the two objects should end up in different clusters).

Constraints are undirected: ``must-link(a, b)`` and ``must-link(b, a)`` are
the same constraint.  The :class:`Constraint` type normalises the index
order so the pair ``(min(a, b), max(a, b))`` identifies the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Marker for must-link constraints (the paper's "class 1").
MUST_LINK = 1

#: Marker for cannot-link constraints (the paper's "class 0").
CANNOT_LINK = 0

_KIND_NAMES = {MUST_LINK: "must-link", CANNOT_LINK: "cannot-link"}


@dataclass(frozen=True, order=True)
class Constraint:
    """A single undirected pairwise constraint between objects ``i`` and ``j``.

    Parameters
    ----------
    i, j:
        Indices of the two objects.  They are normalised so that ``i < j``.
    kind:
        Either :data:`MUST_LINK` or :data:`CANNOT_LINK`.
    """

    i: int
    j: int
    kind: int

    def __post_init__(self) -> None:
        if self.i == self.j:
            raise ValueError(f"a constraint needs two distinct objects, got ({self.i}, {self.j})")
        if self.kind not in (MUST_LINK, CANNOT_LINK):
            raise ValueError(f"kind must be MUST_LINK or CANNOT_LINK, got {self.kind!r}")
        low, high = (self.j, self.i) if self.i > self.j else (self.i, self.j)
        object.__setattr__(self, "i", int(low))
        object.__setattr__(self, "j", int(high))
        object.__setattr__(self, "kind", int(self.kind))

    @property
    def pair(self) -> tuple[int, int]:
        """The normalised ``(i, j)`` pair with ``i < j``."""
        return (self.i, self.j)

    @property
    def is_must_link(self) -> bool:
        """Whether this is a must-link constraint."""
        return self.kind == MUST_LINK

    @property
    def is_cannot_link(self) -> bool:
        """Whether this is a cannot-link constraint."""
        return self.kind == CANNOT_LINK

    def involves(self, index: int) -> bool:
        """Whether the constraint touches object ``index``."""
        return index == self.i or index == self.j

    def other(self, index: int) -> int:
        """Return the endpoint that is not ``index``.

        Raises
        ------
        ValueError
            If ``index`` is not an endpoint of this constraint.
        """
        if index == self.i:
            return self.j
        if index == self.j:
            return self.i
        raise ValueError(f"object {index} is not part of constraint {self}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{_KIND_NAMES[self.kind]}({self.i}, {self.j})"


def must_link(i: int, j: int) -> Constraint:
    """Convenience constructor for a must-link constraint."""
    return Constraint(i, j, MUST_LINK)


def cannot_link(i: int, j: int) -> Constraint:
    """Convenience constructor for a cannot-link constraint."""
    return Constraint(i, j, CANNOT_LINK)


class ConstraintSet:
    """A deduplicated collection of pairwise constraints.

    The container behaves like a set of :class:`Constraint` objects but also
    offers the array views and per-object lookups the clustering algorithms
    and the CVCP cross-validation machinery need.

    Adding the same pair twice with the same kind is a no-op; adding the same
    pair with *conflicting* kinds raises :class:`ValueError` (such a set
    could never be satisfied and almost always indicates a bookkeeping bug
    upstream).
    """

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._by_pair: dict[tuple[int, int], Constraint] = {}
        self._closed = False
        for constraint in constraints:
            self.add(constraint)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        must_links: Sequence[tuple[int, int]] = (),
        cannot_links: Sequence[tuple[int, int]] = (),
    ) -> "ConstraintSet":
        """Build a set from two sequences of index pairs."""
        constraints = [Constraint(i, j, MUST_LINK) for i, j in must_links]
        constraints += [Constraint(i, j, CANNOT_LINK) for i, j in cannot_links]
        return cls(constraints)

    def copy(self) -> "ConstraintSet":
        """Return a shallow copy (constraints are immutable)."""
        clone = ConstraintSet()
        clone._by_pair = dict(self._by_pair)
        clone._closed = self._closed
        return clone

    @property
    def is_closed(self) -> bool:
        """Whether this set is a known transitive closure.

        Set by :func:`repro.constraints.closure.transitive_closure` (and
        the other closure constructors) on their results and cleared by
        any mutation; closure is idempotent, so re-closing a marked set
        short-circuits — the win that makes the CVCP grid's per-cell
        re-closures of the already-closed fold constraints free.
        """
        return self._closed

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint) -> None:
        """Add one constraint, rejecting direct contradictions."""
        existing = self._by_pair.get(constraint.pair)
        if existing is not None and existing.kind != constraint.kind:
            raise ValueError(
                f"conflicting constraint for pair {constraint.pair}: "
                f"{_KIND_NAMES[existing.kind]} already present, tried to add "
                f"{_KIND_NAMES[constraint.kind]}"
            )
        self._by_pair[constraint.pair] = constraint
        self._closed = False

    def add_must_link(self, i: int, j: int) -> None:
        """Add a must-link constraint between objects ``i`` and ``j``."""
        self.add(Constraint(i, j, MUST_LINK))

    def add_cannot_link(self, i: int, j: int) -> None:
        """Add a cannot-link constraint between objects ``i`` and ``j``."""
        self.add(Constraint(i, j, CANNOT_LINK))

    def update(self, constraints: Iterable[Constraint]) -> None:
        """Add every constraint from ``constraints``."""
        for constraint in constraints:
            self.add(constraint)

    def discard(self, constraint: Constraint) -> None:
        """Remove a constraint if present (matching pair and kind)."""
        existing = self._by_pair.get(constraint.pair)
        if existing is not None and existing.kind == constraint.kind:
            del self._by_pair[constraint.pair]
            self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_pair)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._by_pair.values())

    def __contains__(self, constraint: Constraint) -> bool:
        existing = self._by_pair.get(constraint.pair)
        return existing is not None and existing.kind == constraint.kind

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self._by_pair == other._by_pair

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConstraintSet(n_must_link={self.n_must_link}, "
            f"n_cannot_link={self.n_cannot_link})"
        )

    def kind_of(self, i: int, j: int) -> int | None:
        """Return the kind of the constraint on ``(i, j)``, or ``None``."""
        if i == j:
            return None
        pair = (i, j) if i < j else (j, i)
        existing = self._by_pair.get(pair)
        return None if existing is None else existing.kind

    @property
    def must_links(self) -> list[Constraint]:
        """All must-link constraints (stable insertion order)."""
        return [c for c in self if c.is_must_link]

    @property
    def cannot_links(self) -> list[Constraint]:
        """All cannot-link constraints (stable insertion order)."""
        return [c for c in self if c.is_cannot_link]

    @property
    def n_must_link(self) -> int:
        """Number of must-link constraints in the set."""
        return sum(1 for c in self if c.is_must_link)

    @property
    def n_cannot_link(self) -> int:
        """Number of cannot-link constraints in the set."""
        return sum(1 for c in self if c.is_cannot_link)

    def involved_objects(self) -> list[int]:
        """Sorted list of every object index touched by any constraint."""
        objects: set[int] = set()
        for constraint in self:
            objects.add(constraint.i)
            objects.add(constraint.j)
        return sorted(objects)

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    def must_link_array(self) -> np.ndarray:
        """``(m, 2)`` integer array of must-link pairs (may be empty)."""
        pairs = [c.pair for c in self if c.is_must_link]
        if not pairs:
            return np.empty((0, 2), dtype=np.intp)
        return np.asarray(pairs, dtype=np.intp)

    def cannot_link_array(self) -> np.ndarray:
        """``(m, 2)`` integer array of cannot-link pairs (may be empty)."""
        pairs = [c.pair for c in self if c.is_cannot_link]
        if not pairs:
            return np.empty((0, 2), dtype=np.intp)
        return np.asarray(pairs, dtype=np.intp)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(pairs, kinds)`` flattened into ``(i, j, kind)`` arrays."""
        if not self._by_pair:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty.copy(), empty.copy()
        i_idx = np.fromiter((c.i for c in self), dtype=np.intp, count=len(self))
        j_idx = np.fromiter((c.j for c in self), dtype=np.intp, count=len(self))
        kinds = np.fromiter((c.kind for c in self), dtype=np.intp, count=len(self))
        return i_idx, j_idx, kinds

    # ------------------------------------------------------------------
    # Subsetting / mapping
    # ------------------------------------------------------------------
    def restricted_to(self, objects: Iterable[int]) -> "ConstraintSet":
        """Keep only constraints whose *both* endpoints are in ``objects``."""
        allowed = set(int(o) for o in objects)
        return ConstraintSet(
            c for c in self if c.i in allowed and c.j in allowed
        )

    def without_objects(self, objects: Iterable[int]) -> "ConstraintSet":
        """Drop every constraint touching any object in ``objects``."""
        banned = set(int(o) for o in objects)
        return ConstraintSet(
            c for c in self if c.i not in banned and c.j not in banned
        )

    def remap(self, index_map: dict[int, int]) -> "ConstraintSet":
        """Re-index constraints through ``index_map`` (old index -> new index).

        Constraints touching an object not present in the map are dropped.
        This is useful when clustering a subset of the data where objects
        have been re-indexed.
        """
        remapped = ConstraintSet()
        for constraint in self:
            if constraint.i in index_map and constraint.j in index_map:
                remapped.add(
                    Constraint(index_map[constraint.i], index_map[constraint.j], constraint.kind)
                )
        return remapped

    def merged_with(self, other: "ConstraintSet") -> "ConstraintSet":
        """Return the union of this set and ``other``."""
        merged = self.copy()
        merged.update(other)
        return merged

    def satisfied_by(self, labels: Sequence[int] | np.ndarray) -> int:
        """Count constraints satisfied by a flat partition ``labels``.

        Objects labelled ``-1`` (noise) are treated as singleton clusters:
        a noise object is never in the same cluster as any other object.
        """
        labels = np.asarray(labels)
        satisfied = 0
        for constraint in self:
            same = _same_cluster(labels, constraint.i, constraint.j)
            if constraint.is_must_link and same:
                satisfied += 1
            elif constraint.is_cannot_link and not same:
                satisfied += 1
        return satisfied


def _same_cluster(labels: np.ndarray, i: int, j: int) -> bool:
    """Whether objects ``i`` and ``j`` share a (non-noise) cluster."""
    label_i = labels[i]
    label_j = labels[j]
    if label_i < 0 or label_j < 0:
        return False
    return bool(label_i == label_j)
