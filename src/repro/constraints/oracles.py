"""Pluggable constraint oracles: the supervision source as a first-class axis.

The paper's experimental setup (Section 4.1) assumes an *idealised* oracle:
ground-truth pairs are sampled, transitively closed, and handed to CVCP
verbatim.  Real supervision is rarely that clean — annotators make
mistakes, querying them costs money, and a smart client asks the most
informative questions first.  This module turns the supervision source into
a pluggable axis so every experiment in the repository can run under any of
these regimes:

* ``PerfectOracle`` — the paper's setup, bit-for-bit compatible with the
  pre-oracle constraint generation for a fixed seed;
* ``NoisyOracle`` — every answer is flipped with a per-query probability,
  optionally followed by a closure-consistency repair;
* ``BudgetedOracle`` — a hard query budget spent in one of three
  acquisition orderings (``random``, ``farthest_first``, ``min_max``);
* ``ActiveOracle`` — uncertainty-driven acquisition that spends its budget
  on the pairs the current cross-validation folds disagree about most.

Oracles are small frozen dataclasses: picklable (they travel through the
process execution backend), hashable, and serialisable to a JSON ``spec``
dict that the artifact store folds into every trial key — changing any
oracle parameter therefore invalidates exactly the cached trials it
affects and nothing else.

Registry
--------
Implementations register under a short name (``"perfect"``, ``"noisy"``,
``"budgeted"``, ``"active"``); ``make_oracle(name, **params)`` instantiates
by name (this is what the pipeline ``[oracle]`` config table drives) and
``oracle_from_spec`` round-trips the ``spec()`` dict.

Examples
--------
>>> from repro.constraints.oracles import NoisyOracle, make_oracle
>>> import numpy as np
>>> y = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
>>> oracle = NoisyOracle(flip_probability=0.2, repair=True)
>>> constraints = oracle.pairwise_constraints(y, 0.5, random_state=0)
>>> oracle.spec() == make_oracle(**oracle.spec()).spec()
True
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Sequence

import numpy as np

from repro.constraints.closure import must_link_components
from repro.constraints.constraint import CANNOT_LINK, MUST_LINK, Constraint, ConstraintSet
from repro.constraints.generation import (
    build_constraint_pool,
    constraint_pool_size,
    random_constraints,
    sample_constraint_subset,
    sample_labeled_objects,
)
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_labels

#: Acquisition orderings understood by ``BudgetedOracle``.
ORDERINGS: tuple[str, ...] = ("random", "farthest_first", "min_max")

#: Scenario names an oracle can serve (mirrors the experiment drivers).
ORACLE_SCENARIOS: tuple[str, ...] = ("labels", "constraints")

_REGISTRY: dict[str, type["ConstraintOracle"]] = {}


def register_oracle(cls: type["ConstraintOracle"]) -> type["ConstraintOracle"]:
    """Class decorator adding an oracle implementation to the registry.

    The class must define a non-empty ``name`` class attribute; registering
    two classes under the same name raises ``ValueError`` (a typo guard).
    """
    if not getattr(cls, "name", ""):
        raise ValueError(f"oracle class {cls.__name__} must define a non-empty name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"oracle name {cls.name!r} already registered by {existing.__name__}")
    _REGISTRY[cls.name] = cls
    return cls


def oracle_names() -> tuple[str, ...]:
    """The registered oracle names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_oracle(name: str, **params) -> "ConstraintOracle":
    """Instantiate a registered oracle by name.

    Unknown names and unknown/invalid parameters raise ``ValueError`` with a
    message suitable for surfacing through config validation.
    """
    if name not in _REGISTRY:
        raise ValueError(f"unknown oracle {name!r}; available: {', '.join(oracle_names())}")
    cls = _REGISTRY[name]
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for oracle {name!r}: {', '.join(unknown)} "
            f"(expected {', '.join(sorted(known)) or 'no parameters'})"
        )
    return cls(**params)


def oracle_from_spec(spec: dict) -> "ConstraintOracle":
    """Rebuild an oracle from the dict returned by ``ConstraintOracle.spec``."""
    if not isinstance(spec, dict) or "name" not in spec:
        raise ValueError(f"an oracle spec is a dict with a 'name' key, got {spec!r}")
    params = {key: value for key, value in spec.items() if key != "name"}
    return make_oracle(spec["name"], **params)


@dataclass(frozen=True)
class ConstraintOracle(ABC):
    """A supervision source answering queries against a hidden ground truth.

    Subclasses implement the two scenario entry points; both receive the
    ground-truth labels ``y`` (the oracle's hidden knowledge), the amount of
    side information requested, a seed or generator, and optionally the data
    matrix ``X`` (required by the distance-guided acquisition orderings).

    Determinism contract: given the same arguments and seed, an oracle must
    return the same side information regardless of platform, execution
    backend, or call history — the experiment drivers rely on this to keep
    cached artifacts and parallel backends bit-identical.
    """

    #: Registry key of the implementation (class attribute, not a field).
    name: ClassVar[str] = ""

    def spec(self) -> dict:
        """JSON-serialisable description: ``{"name": ..., **parameters}``.

        The dict round-trips through ``oracle_from_spec`` and is folded into
        every artifact-store key, so two oracles with equal specs must
        answer queries identically.
        """
        payload = {"name": self.name}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, float):
                value = float(value)
            elif isinstance(value, (bool, int, str)) or value is None:
                pass
            else:  # pragma: no cover - subclasses keep fields scalar
                raise TypeError(f"oracle field {field.name!r} is not JSON-scalar: {value!r}")
            payload[field.name] = value
        return payload

    def to_spec(self) -> dict:
        """The shared spec protocol (see :mod:`repro.utils.specs`).

        Identical to :meth:`spec`; the alias exists so oracles satisfy the
        same ``to_spec``/``from_spec`` contract as the pipeline tables and
        bench records.
        """
        return self.spec()

    @classmethod
    def from_spec(cls, spec: dict) -> "ConstraintOracle":
        """Rebuild an oracle from a spec mapping, with protocol-typed errors.

        Wraps :func:`oracle_from_spec`; invalid mappings raise
        :class:`~repro.utils.specs.SpecError` (a ``ValueError`` subclass,
        so pre-protocol ``except ValueError`` call sites keep working).
        When called on a concrete subclass, the spec must name that
        subclass's oracle.
        """
        from repro.utils.specs import SpecError

        try:
            oracle = oracle_from_spec(dict(spec) if isinstance(spec, dict) else spec)
        except (ValueError, TypeError) as exc:
            raise SpecError("oracle", [str(exc)]) from exc
        if cls is not ConstraintOracle and not isinstance(oracle, cls):
            raise SpecError(
                "oracle",
                [f"spec names oracle {oracle.name!r}, not a {cls.__name__}"],
            )
        return oracle

    @abstractmethod
    def labeled_objects(
        self,
        y: Sequence[int] | np.ndarray,
        fraction: float,
        *,
        random_state: RandomStateLike = None,
        X: np.ndarray | None = None,
    ) -> dict[int, int]:
        """Scenario I: reveal (the oracle's view of) some objects' labels.

        Returns a mapping ``{object_index: class_label}``.
        """

    @abstractmethod
    def pairwise_constraints(
        self,
        y: Sequence[int] | np.ndarray,
        amount: float,
        *,
        random_state: RandomStateLike = None,
        X: np.ndarray | None = None,
    ) -> ConstraintSet:
        """Scenario II: answer pairwise must-link/cannot-link queries."""

    def side_information(
        self,
        y: Sequence[int] | np.ndarray,
        scenario: str,
        amount: float,
        *,
        random_state: RandomStateLike = None,
        X: np.ndarray | None = None,
    ) -> tuple[dict[int, int], ConstraintSet]:
        """Dispatch on the scenario name; returns ``(labels, constraints)``.

        Exactly one element of the pair is populated: ``labels`` for the
        label scenario, ``constraints`` for the constraint scenario.
        """
        if scenario == "labels":
            return self.labeled_objects(y, amount, random_state=random_state, X=X), ConstraintSet()
        if scenario == "constraints":
            return {}, self.pairwise_constraints(y, amount, random_state=random_state, X=X)
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {ORACLE_SCENARIOS}")


@register_oracle
@dataclass(frozen=True)
class PerfectOracle(ConstraintOracle):
    """The paper's idealised oracle (Section 4.1) — never wrong, never tired.

    Label scenario: reveal a uniform random fraction of the objects with
    their true labels.  Constraint scenario: build the candidate pool from
    ``pool_fraction_per_class`` of each class, generate all pairwise
    constraints between the selected objects, and hand over a uniform random
    ``amount`` of that pool.

    For a fixed seed this reproduces the pre-oracle constraint generation
    bit-for-bit: the implementation calls the same
    ``repro.constraints.generation`` primitives in the same order with the
    same generator, so the random stream is untouched.

    Parameters
    ----------
    pool_fraction_per_class:
        Fraction of each class selected into the constraint pool
        (the paper uses 10%).
    """

    name: ClassVar[str] = "perfect"

    pool_fraction_per_class: float = 0.10

    def __post_init__(self) -> None:
        if not 0 < self.pool_fraction_per_class <= 1:
            raise ValueError(
                f"pool_fraction_per_class must be in (0, 1], got {self.pool_fraction_per_class!r}"
            )

    def labeled_objects(self, y, fraction, *, random_state=None, X=None) -> dict[int, int]:
        """Reveal a uniform random fraction of the objects with true labels."""
        return sample_labeled_objects(y, fraction, random_state=random_state)

    def pairwise_constraints(self, y, amount, *, random_state=None, X=None) -> ConstraintSet:
        """Sample ``amount`` of the paper-style constraint pool, truthfully."""
        rng = check_random_state(random_state)
        pool = build_constraint_pool(
            y, fraction_per_class=self.pool_fraction_per_class, random_state=rng
        )
        return sample_constraint_subset(pool, amount, random_state=rng)


def repair_closure_consistency(constraints: ConstraintSet) -> ConstraintSet:
    """Drop cannot-links that contradict the must-link components.

    A noisy answer stream can produce a constraint set whose transitive
    closure is contradictory: a cannot-link whose endpoints are joined by a
    chain of must-links.  This repair keeps every must-link (trusting the
    stronger, transitive relation) and removes exactly the contradicting
    cannot-links, so the result always admits a satisfying partition.

    The repair is conservative: it never invents constraints, so the output
    is a subset of the input.
    """
    component_of: dict[int, int] = {}
    for component_id, members in enumerate(must_link_components(constraints)):
        for index in members:
            component_of[index] = component_id
    repaired = ConstraintSet()
    for constraint in constraints:
        if constraint.is_cannot_link and component_of[constraint.i] == component_of[constraint.j]:
            continue
        repaired.add(constraint)
    return repaired


@register_oracle
@dataclass(frozen=True)
class NoisyOracle(ConstraintOracle):
    """A fallible annotator: every answer is flipped with a fixed probability.

    The oracle first produces the perfect side information (consuming the
    random stream exactly like ``PerfectOracle``, so a flip probability of 0
    returns identical answers), then corrupts it query by query:

    * constraint scenario — each constraint's kind is flipped
      (must-link ↔ cannot-link) with probability ``flip_probability``;
    * label scenario — each revealed object's label is replaced with a
      uniformly chosen *different* class with probability
      ``flip_probability``.

    With ``repair=True`` the flipped constraint set is passed through
    ``repair_closure_consistency``, which drops the cannot-links that
    contradict the must-link components — modelling a annotation UI that
    refuses logically impossible answers.  Without repair the inconsistent
    set is returned as-is; the CVCP fold construction tolerates it (its
    closures run in non-strict mode) and the noise shows up as a harder
    constraint-classification problem, which is exactly what the
    noise-robustness experiment measures.

    Parameters
    ----------
    flip_probability:
        Per-query corruption probability in ``[0, 1]``.
    repair:
        Whether to re-establish closure consistency after flipping.
    pool_fraction_per_class:
        Pool construction parameter, as in ``PerfectOracle``.
    """

    name: ClassVar[str] = "noisy"

    flip_probability: float = 0.1
    repair: bool = False
    pool_fraction_per_class: float = 0.10

    def __post_init__(self) -> None:
        if not 0 <= self.flip_probability <= 1:
            raise ValueError(f"flip_probability must be in [0, 1], got {self.flip_probability!r}")
        if not 0 < self.pool_fraction_per_class <= 1:
            raise ValueError(
                f"pool_fraction_per_class must be in (0, 1], got {self.pool_fraction_per_class!r}"
            )

    def labeled_objects(self, y, fraction, *, random_state=None, X=None) -> dict[int, int]:
        """Reveal labels, each flipped to a random other class w.p. ``flip_probability``."""
        y = check_labels(y)
        rng = check_random_state(random_state)
        revealed = sample_labeled_objects(y, fraction, random_state=rng)
        classes = [int(cls) for cls in np.unique(y)]
        if len(classes) < 2:
            return revealed
        noisy: dict[int, int] = {}
        for index in sorted(revealed):
            label = revealed[index]
            # Both draws happen for every object regardless of the outcome,
            # so the stream advances identically at every flip probability —
            # that is what keeps noise-robustness sweeps paired per trial.
            flip = rng.random() < self.flip_probability
            alternative = int(rng.integers(0, len(classes) - 1))
            if flip:
                label = int([cls for cls in classes if cls != label][alternative])
            noisy[index] = label
        return noisy

    def pairwise_constraints(self, y, amount, *, random_state=None, X=None) -> ConstraintSet:
        """Perfect pool sampling, then per-constraint kind flips (and optional repair)."""
        rng = check_random_state(random_state)
        pool = build_constraint_pool(
            y, fraction_per_class=self.pool_fraction_per_class, random_state=rng
        )
        subset = sample_constraint_subset(pool, amount, random_state=rng)
        flipped = ConstraintSet()
        for constraint in sorted(subset):
            kind = constraint.kind
            if rng.random() < self.flip_probability:
                kind = CANNOT_LINK if kind == MUST_LINK else MUST_LINK
            flipped.add(Constraint(constraint.i, constraint.j, kind))
        if self.repair:
            return repair_closure_consistency(flipped)
        return flipped


def _pairwise_distances_to(X: np.ndarray, index: int) -> np.ndarray:
    """Euclidean distances from object ``index`` to every object."""
    return np.linalg.norm(X - X[index], axis=1)


def _traversal_order(X: np.ndarray, rng: np.random.Generator, *, farthest: bool) -> list[int]:
    """Deterministic object ordering by greedy distance traversal.

    ``farthest=True`` is the classic farthest-first traversal (each step
    picks the object maximising the minimum distance to the selected set —
    an exploration order that spreads queries across clusters).
    ``farthest=False`` is its complement, the *min-max* order: each step
    picks the object minimising the maximum distance to the selected set,
    keeping queries inside dense regions where cluster boundaries are
    genuinely ambiguous.  The start object is the one farthest from
    (respectively nearest to) the data mean; all ties break towards the
    lower index, so the order is fully deterministic given ``X``.
    """
    n_samples = X.shape[0]
    from_mean = np.linalg.norm(X - X.mean(axis=0), axis=1)
    start = int(np.argmax(from_mean) if farthest else np.argmin(from_mean))
    order = [start]
    # Distance from every object to the selected set: min for farthest-first
    # exploration, max for the min-max densification order.
    to_selected = _pairwise_distances_to(X, start)
    remaining = np.ones(n_samples, dtype=bool)
    remaining[start] = False
    while remaining.any():
        candidates = np.flatnonzero(remaining)
        scores = to_selected[candidates]
        position = int(np.argmax(scores) if farthest else np.argmin(scores))
        chosen = int(candidates[position])
        order.append(chosen)
        remaining[chosen] = False
        distances = _pairwise_distances_to(X, chosen)
        to_selected = (
            np.minimum(to_selected, distances) if farthest else np.maximum(to_selected, distances)
        )
    return order


def _truth_kind(y: np.ndarray, i: int, j: int) -> int:
    return MUST_LINK if y[i] == y[j] else CANNOT_LINK


@register_oracle
@dataclass(frozen=True)
class BudgetedOracle(ConstraintOracle):
    """An oracle that answers at most ``budget`` queries, then goes home.

    Budget-constrained acquisition mirrors how annotation actually gets
    bought: a fixed number of questions, spent according to a strategy (in
    the spirit of budget-aware search strategies such as "Zoom, Don't
    Wander").  Three orderings are provided:

    * ``random`` — uniformly random distinct pairs (the Wagstaff et al.
      baseline), truncated at the budget;
    * ``farthest_first`` — objects are visited in farthest-first traversal
      order and each new object is queried against the already-visited ones;
      spreads the budget across the space so every cluster is touched;
    * ``min_max`` — the complementary dense-region order (each step visits
      the object minimising the maximum distance to the visited set);
      concentrates the budget where boundaries are ambiguous.

    The distance-guided orderings require the data matrix ``X``.  Answers
    themselves are always truthful; combine with ``NoisyOracle`` semantics
    by post-processing if both axes are needed.

    In the label scenario the ordering picks *which objects* are revealed
    (at most ``budget`` of them).  In both scenarios the requested
    ``amount`` still applies first; the budget is a hard cap on top.

    Parameters
    ----------
    budget:
        Maximum number of answered queries (revealed objects in the label
        scenario, constraints in the constraint scenario).
    ordering:
        One of ``"random"``, ``"farthest_first"``, ``"min_max"``.
    pool_fraction_per_class:
        Pool construction parameter for sizing the constraint request,
        as in ``PerfectOracle``.
    """

    name: ClassVar[str] = "budgeted"

    budget: int = 100
    ordering: str = "random"
    pool_fraction_per_class: float = 0.10

    def __post_init__(self) -> None:
        if isinstance(self.budget, bool) or not isinstance(self.budget, int) or self.budget < 1:
            raise ValueError(f"budget must be a positive integer, got {self.budget!r}")
        if self.ordering not in ORDERINGS:
            raise ValueError(f"ordering must be one of {', '.join(ORDERINGS)}, got {self.ordering!r}")
        if not 0 < self.pool_fraction_per_class <= 1:
            raise ValueError(
                f"pool_fraction_per_class must be in (0, 1], got {self.pool_fraction_per_class!r}"
            )

    def _require_X(self, X: np.ndarray | None) -> np.ndarray:
        if X is None:
            raise ValueError(
                f"the {self.ordering!r} ordering is distance-guided and needs the data matrix X"
            )
        return np.asarray(X, dtype=np.float64)

    def labeled_objects(self, y, fraction, *, random_state=None, X=None) -> dict[int, int]:
        """Reveal at most ``budget`` objects, picked in the acquisition order."""
        y = check_labels(y)
        rng = check_random_state(random_state)
        n_samples = y.shape[0]
        n_reveal = min(max(int(round(fraction * n_samples)), 2), n_samples, self.budget)
        if self.ordering == "random":
            chosen = [int(index) for index in rng.choice(n_samples, size=n_reveal, replace=False)]
        else:
            order = _traversal_order(self._require_X(X), rng, farthest=self.ordering == "farthest_first")
            chosen = order[:n_reveal]
        return {int(index): int(y[index]) for index in chosen}

    def pairwise_constraints(self, y, amount, *, random_state=None, X=None) -> ConstraintSet:
        """Answer at most ``budget`` truthful queries in the acquisition order."""
        y = check_labels(y)
        rng = check_random_state(random_state)
        n_samples = y.shape[0]
        max_pairs = n_samples * (n_samples - 1) // 2
        # Size the request like the perfect oracle sizes its pool subset,
        # then cap it at the query budget (and at the number of pairs).
        pool_size = constraint_pool_size(y, fraction_per_class=self.pool_fraction_per_class)
        requested = max(int(round(amount * pool_size)), 2)
        n_queries = min(requested, self.budget, max_pairs)
        if self.ordering == "random":
            return random_constraints(y, n_queries, random_state=rng)
        order = _traversal_order(self._require_X(X), rng, farthest=self.ordering == "farthest_first")
        constraints = ConstraintSet()
        for position in range(1, len(order)):
            new = order[position]
            for previous in order[:position]:
                constraints.add(Constraint(previous, new, _truth_kind(y, previous, new)))
                if len(constraints) >= n_queries:
                    return constraints
        return constraints


@register_oracle
@dataclass(frozen=True)
class ActiveOracle(ConstraintOracle):
    """Uncertainty-driven acquisition guided by fold-level disagreement.

    The oracle spends its budget in rounds.  It seeds itself with a small
    random batch of truthful constraints, then repeatedly:

    1. builds constraint-scenario cross-validation folds over everything
       acquired so far (``repro.core.folds.constraint_scenario_folds`` —
       the same machinery CVCP evaluates with);
    2. scores a sample of candidate pairs by *fold disagreement*: for each
       fold, the relation the fold's training closure implies for the pair
       (must-link, cannot-link, or unknown); the score counts the folds
       that deviate from the majority answer, so pairs the folds cannot
       agree on score highest;
    3. queries the ``batch_size`` most uncertain pairs and adds the
       truthful answers to the acquired set.

    Acquisition stops when the budget is exhausted.  The label scenario has
    no fold-disagreement analogue, so there the oracle degrades to a
    budget-capped uniform reveal.

    Parameters
    ----------
    budget:
        Total number of answered pairwise queries.
    batch_size:
        Queries issued per acquisition round.
    disagreement_folds:
        Fold count used when measuring disagreement.
    candidate_factor:
        Candidate pairs sampled per round, as a multiple of ``batch_size``.
    """

    name: ClassVar[str] = "active"

    budget: int = 100
    batch_size: int = 10
    disagreement_folds: int = 4
    candidate_factor: int = 8

    def __post_init__(self) -> None:
        for field_name in ("budget", "batch_size", "disagreement_folds", "candidate_factor"):
            value = getattr(self, field_name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(f"{field_name} must be a positive integer, got {value!r}")
        if self.disagreement_folds < 2:
            raise ValueError(f"disagreement_folds must be >= 2, got {self.disagreement_folds!r}")

    def labeled_objects(self, y, fraction, *, random_state=None, X=None) -> dict[int, int]:
        """Budget-capped uniform reveal (no fold-disagreement analogue for labels)."""
        y = check_labels(y)
        rng = check_random_state(random_state)
        n_samples = y.shape[0]
        n_reveal = min(max(int(round(fraction * n_samples)), 2), n_samples, self.budget)
        chosen = rng.choice(n_samples, size=n_reveal, replace=False)
        return {int(index): int(y[index]) for index in chosen}

    def pairwise_constraints(self, y, amount, *, random_state=None, X=None) -> ConstraintSet:
        """Acquire constraints in rounds, querying the most fold-contested pairs."""
        # Imported here: core.folds already depends on repro.constraints, so
        # a module-level import would be circular.
        from repro.core.folds import constraint_scenario_folds

        y = check_labels(y)
        rng = check_random_state(random_state)
        n_samples = y.shape[0]
        max_pairs = n_samples * (n_samples - 1) // 2
        pool_size = constraint_pool_size(y, fraction_per_class=0.10)
        requested = max(int(round(amount * pool_size)), 2)
        n_queries = min(requested, self.budget, max_pairs)

        seed_size = min(max(self.batch_size, 2), n_queries)
        acquired = random_constraints(y, seed_size, random_state=rng)
        answered = {constraint.pair for constraint in acquired}

        while len(acquired) < n_queries:
            folds = constraint_scenario_folds(
                acquired, self.disagreement_folds, random_state=rng
            )
            closures = [fold.training_constraints for fold in folds]
            batch = min(self.batch_size, n_queries - len(acquired))
            candidates = self._sample_candidates(rng, n_samples, answered, batch)
            if not candidates:
                break
            scored = sorted(
                candidates,
                key=lambda pair: (-_fold_disagreement(closures, pair), pair),
            )
            for i, j in scored[:batch]:
                acquired.add(Constraint(i, j, _truth_kind(y, i, j)))
                answered.add((i, j))
        return acquired

    def _sample_candidates(
        self,
        rng: np.random.Generator,
        n_samples: int,
        answered: set[tuple[int, int]],
        batch: int,
    ) -> list[tuple[int, int]]:
        """Random unanswered pairs to score this round (deterministic order)."""
        wanted = self.candidate_factor * batch
        max_pairs = n_samples * (n_samples - 1) // 2
        candidates: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        attempts = 0
        while len(candidates) < wanted and attempts < 20 * wanted:
            attempts += 1
            i, j = rng.choice(n_samples, size=2, replace=False)
            pair = (int(min(i, j)), int(max(i, j)))
            if pair in answered or pair in seen:
                if len(answered) + len(seen) >= max_pairs:
                    break
                continue
            seen.add(pair)
            candidates.append(pair)
        return candidates


def _fold_disagreement(closures: list[ConstraintSet], pair: tuple[int, int]) -> int:
    """How many folds deviate from the majority answer about ``pair``.

    Each fold answers must-link, cannot-link, or unknown (the pair is not in
    the fold's training closure).  A pair every fold agrees on scores 0; the
    score grows with the number of dissenting folds, so maximally contested
    pairs are queried first.
    """
    answers = [closure.kind_of(pair[0], pair[1]) for closure in closures]
    counts: dict[object, int] = {}
    for answer in answers:
        counts[answer] = counts.get(answer, 0) + 1
    return len(answers) - max(counts.values())
