"""Generating side information from a ground-truth labelling.

The experimental setup of the paper (Section 4.1) derives the two kinds of
side information from the ground-truth class labels:

* **Label scenario** — a random subset of objects (5%, 10% or 20% of the
  data set) is revealed with its class label
  (:func:`sample_labeled_objects`).
* **Constraint scenario** — a *constraint pool* is built by selecting 10% of
  the objects from each class and generating **all** pairwise constraints
  between the selected objects (:func:`build_constraint_pool`); the
  algorithm then receives a random subset (10%, 20% or 50%) of that pool
  (:func:`sample_constraint_subset`).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from repro.constraints.constraint import CANNOT_LINK, MUST_LINK, Constraint, ConstraintSet
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_fraction, check_labels


def sample_labeled_objects(
    labels: Sequence[int] | np.ndarray,
    fraction: float,
    *,
    random_state: RandomStateLike = None,
    stratified: bool = False,
    min_per_class: int = 0,
) -> dict[int, int]:
    """Randomly reveal the labels of a fraction of the objects.

    Parameters
    ----------
    labels:
        Ground-truth class labels for every object.
    fraction:
        Fraction of all objects to reveal, in ``(0, 1]``.
    random_state:
        Seed or generator.
    stratified:
        If true, sample the same fraction from every class instead of
        sampling uniformly from the whole data set (the paper samples
        uniformly; stratification is provided for robustness studies).
    min_per_class:
        With ``stratified=True``, reveal at least this many objects per
        class (capped at the class size).

    Returns
    -------
    dict
        ``{object_index: class_label}`` for the revealed objects.
    """
    labels = check_labels(labels)
    fraction = check_fraction(fraction, name="fraction")
    rng = check_random_state(random_state)

    n_samples = labels.shape[0]
    if stratified:
        revealed: dict[int, int] = {}
        for cls in np.unique(labels):
            members = np.flatnonzero(labels == cls)
            n_reveal = max(int(round(fraction * members.size)), min_per_class)
            n_reveal = min(n_reveal, members.size)
            if n_reveal == 0:
                continue
            chosen = rng.choice(members, size=n_reveal, replace=False)
            for index in chosen:
                revealed[int(index)] = int(labels[index])
        return revealed

    n_reveal = max(int(round(fraction * n_samples)), 2)
    n_reveal = min(n_reveal, n_samples)
    chosen = rng.choice(n_samples, size=n_reveal, replace=False)
    return {int(index): int(labels[index]) for index in chosen}


def constraints_from_labels(labeled: dict[int, int] | Sequence[tuple[int, int]]) -> ConstraintSet:
    """Derive all pairwise constraints implied by a partial labelling.

    Two objects with the same label yield a must-link, with different labels
    a cannot-link (Section 3.1.1).  The result is transitively closed by
    construction.

    Parameters
    ----------
    labeled:
        Either a mapping ``{object_index: class_label}`` or a sequence of
        ``(object_index, class_label)`` pairs.
    """
    if not isinstance(labeled, dict):
        labeled = dict(labeled)
    constraints = ConstraintSet()
    items = sorted(labeled.items())
    for (i, label_i), (j, label_j) in combinations(items, 2):
        kind = MUST_LINK if label_i == label_j else CANNOT_LINK
        constraints.add(Constraint(i, j, kind))
    return constraints


def _n_selected_per_class(class_size: int, fraction_per_class: float, min_per_class: int) -> int:
    """How many objects of one class enter the constraint pool.

    Single source of the pool-sizing rule: at least ``min_per_class``,
    rounded ``fraction_per_class`` of the class otherwise, never more than
    the class itself.  Shared by :func:`build_constraint_pool` and
    :func:`constraint_pool_size` so the two can never drift apart.
    """
    return min(max(int(round(fraction_per_class * class_size)), min_per_class), class_size)


def constraint_pool_size(
    labels: Sequence[int] | np.ndarray,
    *,
    fraction_per_class: float = 0.10,
    min_per_class: int = 2,
) -> int:
    """Number of constraints :func:`build_constraint_pool` would generate.

    Useful for sizing query requests (the budgeted and active oracles scale
    their budgets against the paper-style pool) without materialising the
    quadratic pool itself.
    """
    labels = check_labels(labels)
    fraction_per_class = check_fraction(fraction_per_class, name="fraction_per_class")
    selected = sum(
        _n_selected_per_class(int(np.sum(labels == cls)), fraction_per_class, min_per_class)
        for cls in np.unique(labels)
    )
    return selected * (selected - 1) // 2


def build_constraint_pool(
    labels: Sequence[int] | np.ndarray,
    *,
    fraction_per_class: float = 0.10,
    min_per_class: int = 2,
    random_state: RandomStateLike = None,
) -> ConstraintSet:
    """Build the paper's candidate *pool* of constraints.

    Section 4.1: "we first used the ground truth to generate a candidate
    pool of constraints by randomly selecting 10% of the objects from each
    class and generating all constraints between these objects".

    Parameters
    ----------
    labels:
        Ground-truth class labels.
    fraction_per_class:
        Fraction of each class to select (default 10%).
    min_per_class:
        Select at least this many objects per class so that small classes
        still contribute constraints (capped at the class size).
    random_state:
        Seed or generator.
    """
    labels = check_labels(labels)
    fraction_per_class = check_fraction(fraction_per_class, name="fraction_per_class")
    rng = check_random_state(random_state)

    selected: dict[int, int] = {}
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        n_select = _n_selected_per_class(members.size, fraction_per_class, min_per_class)
        chosen = rng.choice(members, size=n_select, replace=False)
        for index in chosen:
            selected[int(index)] = int(labels[index])
    return constraints_from_labels(selected)


def sample_constraint_subset(
    pool: ConstraintSet,
    fraction: float,
    *,
    random_state: RandomStateLike = None,
    min_constraints: int = 2,
) -> ConstraintSet:
    """Randomly sample a fraction of the constraints in ``pool``.

    The subset is sampled uniformly over constraints (not over objects), as
    in the paper's constraint scenario where 10%, 20% or 50% of the pool is
    given to the clustering algorithm.
    """
    fraction = check_fraction(fraction, name="fraction")
    rng = check_random_state(random_state)

    all_constraints = list(pool)
    if not all_constraints:
        return ConstraintSet()
    n_select = max(int(round(fraction * len(all_constraints))), min_constraints)
    n_select = min(n_select, len(all_constraints))
    chosen = rng.choice(len(all_constraints), size=n_select, replace=False)
    return ConstraintSet(all_constraints[int(index)] for index in chosen)


def random_constraints(
    labels: Sequence[int] | np.ndarray,
    n_constraints: int,
    *,
    random_state: RandomStateLike = None,
) -> ConstraintSet:
    """Sample ``n_constraints`` random ground-truth-consistent constraints.

    Pairs of objects are drawn uniformly at random (without replacement over
    pairs); the constraint kind is read off the ground truth.  This is the
    classic generation scheme of Wagstaff et al. (2001) and is provided as
    an alternative to the paper's pool-based scheme.
    """
    labels = check_labels(labels)
    rng = check_random_state(random_state)
    n_samples = labels.shape[0]
    max_pairs = n_samples * (n_samples - 1) // 2
    if n_constraints > max_pairs:
        raise ValueError(
            f"cannot draw {n_constraints} distinct pairs from {n_samples} objects "
            f"(only {max_pairs} pairs exist)"
        )

    constraints = ConstraintSet()
    seen: set[tuple[int, int]] = set()
    while len(constraints) < n_constraints:
        i, j = rng.choice(n_samples, size=2, replace=False)
        pair = (int(min(i, j)), int(max(i, j)))
        if pair in seen:
            continue
        seen.add(pair)
        kind = MUST_LINK if labels[pair[0]] == labels[pair[1]] else CANNOT_LINK
        constraints.add(Constraint(pair[0], pair[1], kind))
    return constraints
