"""Stable programmatic facade over the reproduction stack.

Four entry points cover what external callers — the CLI, the ``repro
serve`` HTTP layer, notebooks — need, with frozen request/response
dataclasses instead of sprawling keyword lists:

* :func:`open_store` — the shared content-addressed artifact store;
* :func:`load_spec` — a :class:`~repro.experiments.pipeline.PipelineSpec`
  from a config file *or* an in-memory mapping;
* :func:`run_pipeline` — execute a spec through the store, returning a
  :class:`PipelineRunReport`;
* :func:`select_parameter` / :func:`fit` — CVCP parameter selection and
  a fitted clustering as declarative :class:`SelectionRequest` /
  plain-argument calls returning :class:`SelectionReport` /
  :class:`FitReport`.

Everything here routes through the same internals as the batch CLI, so a
pipeline submitted through this facade (or over HTTP) produces a
``summary.json`` byte-identical to ``repro run`` of the same spec, and
identical requests are served from cached trials.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.core.cvcp import CVCP
from repro.core.executor import ExecutionSpec
from repro.datasets.base import Dataset
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.config import QUICK_CONFIG
from repro.experiments.pipeline import (
    ALGORITHMS,
    SCENARIOS,
    PipelineSpec,
    load_pipeline_spec,
    pipeline_spec_from_mapping,
)
from repro.experiments.pipeline import run_pipeline as _run_pipeline_spec
from repro.experiments.runner import (
    algorithm_factory,
    make_side_information,
    parameter_values_for,
    run_trials,
)
from repro.utils.rng import check_random_state
from repro.utils.specs import SpecError, check_spec_mapping, unknown_key_problems

__all__ = [
    "FitReport",
    "PipelineRunReport",
    "SelectionReport",
    "SelectionRequest",
    "fit",
    "load_spec",
    "open_store",
    "run_pipeline",
    "select_parameter",
]


def open_store(root: str | Path, *, refresh: bool = False) -> ArtifactStore:
    """Open (or create on first write) the artifact store at ``root``."""
    return ArtifactStore(root, refresh=refresh)


def load_spec(source: str | Path | Mapping | PipelineSpec) -> PipelineSpec:
    """A validated pipeline spec from a file path, mapping, or spec.

    Accepts a TOML/JSON config path, an already-parsed config mapping
    (what the serve layer receives over HTTP), or a ready
    :class:`~repro.experiments.pipeline.PipelineSpec` (returned as-is).
    Raises :class:`~repro.experiments.pipeline.ConfigError` listing every
    validation problem.
    """
    if isinstance(source, PipelineSpec):
        return source
    if isinstance(source, Mapping):
        return pipeline_spec_from_mapping(source)
    return load_pipeline_spec(source)


@dataclass(frozen=True)
class PipelineRunReport:
    """Everything one :func:`run_pipeline` call produced, frozen.

    ``summary`` is the deterministic mapping persisted as
    ``summary.json`` (byte-identical across CLI, API and serve runs of
    the same spec); ``stats`` is the store's hit/miss/write counters for
    this run.
    """

    spec: PipelineSpec
    summary: dict
    report_text: str
    report_paths: tuple[Path, ...]
    stats: dict

    def as_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "summary": self.summary,
            "report_paths": [str(path) for path in self.report_paths],
            "stats": dict(self.stats),
        }


def run_pipeline(
    source: str | Path | Mapping | PipelineSpec,
    *,
    store: ArtifactStore | None = None,
    execution: ExecutionSpec | None = None,
    artifacts_root: str | Path | None = None,
    write_reports: bool = True,
) -> PipelineRunReport:
    """Execute a pipeline spec through the artifact store.

    ``execution`` overrides the spec's execution engine (the engines and
    exact distance tiers are bit-identical, so overriding them never
    invalidates cached artifacts; the approximate ``neighbors`` tier keys
    its own artifacts); ``artifacts_root`` relocates the store — the serve
    layer pins it to the server's root so every client shares one cache.
    """
    spec = load_spec(source)
    if artifacts_root is not None:
        spec = spec.with_overrides(artifacts_root=Path(artifacts_root))
    if execution is not None:
        if execution.metric is not None and spec.config.metric == "precomputed":
            # The matrix-backed data set admits no other metric.
            raise SpecError(
                "run",
                [
                    "execution.metric: cannot override the metric of a precomputed"
                    f" pipeline with {execution.metric!r}"
                ],
            )
        spec = spec.with_overrides(
            config=spec.config.with_execution(
                backend=execution.backend,
                n_jobs=execution.n_jobs,
                distance_backend=execution.distance_backend,
                epsilon=execution.epsilon,
                k_neighbors=execution.k_neighbors,
                metric=execution.metric,
            )
        )
    result = _run_pipeline_spec(spec, store=store, write_reports=write_reports)
    return PipelineRunReport(
        spec=result.spec,
        summary=result.summary,
        report_text=result.report_text,
        report_paths=tuple(result.report_paths),
        stats=dict(result.stats),
    )


@dataclass(frozen=True)
class SelectionRequest:
    """A declarative CVCP parameter-selection request.

    The serve layer accepts this as the ``{"select": {...}}`` POST body;
    programmatic callers construct it directly.  Validation collects
    every problem into one :class:`~repro.utils.specs.SpecError`.
    """

    algorithm: str = "fosc"
    dataset: str = "Iris"
    scenario: str = "labels"
    amount: float = 0.1
    n_trials: int = 1
    n_folds: int = 4
    seed: int = 20140324
    execution: ExecutionSpec = ExecutionSpec()

    def __post_init__(self) -> None:
        problems = []
        if self.algorithm not in ALGORITHMS:
            problems.append(
                f"select.algorithm: must be one of {', '.join(ALGORITHMS)}; got {self.algorithm!r}"
            )
        canonical = {name.lower(): name for name in DATASET_NAMES}
        if not isinstance(self.dataset, str) or self.dataset.lower() not in canonical:
            problems.append(
                f"select.dataset: unknown data set {self.dataset!r} "
                f"(available: {', '.join(DATASET_NAMES)})"
            )
        else:
            object.__setattr__(self, "dataset", canonical[self.dataset.lower()])
        if self.scenario not in SCENARIOS:
            problems.append(
                f"select.scenario: must be one of {', '.join(SCENARIOS)}; got {self.scenario!r}"
            )
        if (
            isinstance(self.amount, bool)
            or not isinstance(self.amount, (int, float))
            or not 0 < self.amount <= 1
        ):
            problems.append(f"select.amount: must be a fraction in (0, 1], got {self.amount!r}")
        else:
            object.__setattr__(self, "amount", float(self.amount))
        for key, minimum in (("n_trials", 1), ("n_folds", 2), ("seed", 0)):
            value = getattr(self, key)
            if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
                problems.append(f"select.{key}: must be an integer >= {minimum}, got {value!r}")
        if not isinstance(self.execution, ExecutionSpec):
            problems.append(
                f"select.execution: must be an ExecutionSpec, got {self.execution!r}"
            )
        elif self.execution.metric is not None:
            # Selection requests name registry data sets, so the metric
            # rides on the execution spec; reject the combinations that
            # would otherwise traceback inside the trial loop.
            metric = self.execution.metric
            if metric == "precomputed":
                problems.append(
                    'select.execution.metric: "precomputed" needs the matrix itself;'
                    " run a pipeline with a [dataset] path instead"
                )
            elif metric != "euclidean" and self.algorithm == "mpck":
                problems.append(
                    f'select.execution.metric: algorithm = "mpck" learns per-cluster'
                    f" Euclidean metrics and cannot run under metric = {metric!r};"
                    ' use algorithm = "fosc"'
                )
        if problems:
            raise SpecError("select", problems)

    def to_spec(self) -> dict:
        """JSON-ready mapping (the serve POST body under ``"select"``)."""
        spec: dict = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "scenario": self.scenario,
            "amount": self.amount,
            "n_trials": self.n_trials,
            "n_folds": self.n_folds,
            "seed": self.seed,
        }
        execution = self.execution.to_spec()
        if execution:
            spec["execution"] = execution
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping) -> "SelectionRequest":
        """Validate a request mapping, collecting every problem."""
        spec = check_spec_mapping(spec, "select")
        known = (
            "algorithm", "dataset", "scenario", "amount", "n_trials", "n_folds", "seed",
            "execution",
        )
        problems = unknown_key_problems(spec, known, "select")
        kwargs: dict = {key: spec[key] for key in known if key in spec and key != "execution"}
        if "execution" in spec:
            try:
                kwargs["execution"] = ExecutionSpec.from_spec(spec["execution"])
            except SpecError as exc:
                problems.extend(f"select.{problem}" for problem in exc.problems)
        built = None
        try:
            built = cls(**kwargs)
        except SpecError as exc:
            problems.extend(exc.problems)
        if problems or built is None:
            raise SpecError("select", problems)
        return built


@dataclass(frozen=True)
class SelectionReport:
    """What CVCP selected for a :class:`SelectionRequest`, frozen.

    ``trials`` holds every trial's full measurements
    (:meth:`~repro.experiments.runner.TrialResult.to_dict` mappings);
    the scalar fields aggregate them — ``selected_value`` is the first
    trial's selection (deterministic for a fixed seed), the qualities and
    correlation are means across trials.
    """

    request: SelectionRequest
    parameter_name: str
    selected_value: int
    selected_quality: float
    expected_quality: float
    correlation: float
    trials: tuple[dict, ...]
    stats: dict

    def as_dict(self) -> dict:
        return {
            "request": self.request.to_spec(),
            "parameter_name": self.parameter_name,
            "selected_value": self.selected_value,
            "selected_quality": self.selected_quality,
            "expected_quality": self.expected_quality,
            "correlation": self.correlation,
            "trials": [dict(trial) for trial in self.trials],
            "stats": dict(self.stats),
        }


def select_parameter(
    request: SelectionRequest, *, store: ArtifactStore | None = None
) -> SelectionReport:
    """Run CVCP parameter selection for a declarative request.

    Trials run through :func:`repro.experiments.runner.run_trials`, so
    with a ``store`` every completed trial is persisted and an identical
    request is served entirely from cache.
    """
    config = QUICK_CONFIG.with_overrides(
        seed=request.seed, n_trials=request.n_trials, n_folds=request.n_folds
    ).with_execution(
        backend=request.execution.backend,
        n_jobs=request.execution.n_jobs,
        distance_backend=request.execution.distance_backend,
        metric=request.execution.metric,
    )
    dataset = get_dataset(request.dataset, random_state=config.seed, metric=config.metric)
    estimator = algorithm_factory(
        request.algorithm, config, random_state=config.seed, metric=dataset.metric
    )
    trials = run_trials(
        dataset,
        request.algorithm,
        request.scenario,
        request.amount,
        request.n_trials,
        config=config,
        random_state=config.seed,
        store=store,
    )
    mean = lambda values: float(sum(values) / len(values))  # noqa: E731
    return SelectionReport(
        request=request,
        parameter_name=estimator.tuned_parameter,
        selected_value=trials[0].cvcp_value,
        selected_quality=mean([trial.cvcp_quality for trial in trials]),
        expected_quality=mean([trial.expected_quality for trial in trials]),
        correlation=mean([trial.correlation for trial in trials]),
        trials=tuple(trial.to_dict() for trial in trials),
        stats=store.stats.as_dict() if store is not None else {},
    )


@dataclass(frozen=True)
class FitReport:
    """A fitted clustering: the selected parameter and its partition."""

    algorithm: str
    dataset: str
    parameter_name: str
    parameter_value: int
    best_score: float
    labels: tuple[int, ...]
    n_clusters: int

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "parameter_name": self.parameter_name,
            "parameter_value": self.parameter_value,
            "best_score": self.best_score,
            "labels": list(self.labels),
            "n_clusters": self.n_clusters,
        }


def fit(
    algorithm: str,
    dataset: str | Dataset,
    *,
    scenario: str = "labels",
    amount: float = 0.1,
    n_folds: int = 4,
    seed: int = 20140324,
    execution: ExecutionSpec | None = None,
) -> FitReport:
    """Select a parameter with CVCP and refit with all side information.

    The one-call service entry point: samples ``amount`` of ``scenario``
    side information from the data set's ground truth, cross-validates
    the algorithm's parameter range, refits the winner, and returns the
    resulting partition.
    """
    if algorithm not in ALGORITHMS:
        raise SpecError("fit", [f"fit.algorithm: must be one of {', '.join(ALGORITHMS)}; got {algorithm!r}"])
    if scenario not in SCENARIOS:
        raise SpecError("fit", [f"fit.scenario: must be one of {', '.join(SCENARIOS)}; got {scenario!r}"])
    config = QUICK_CONFIG.with_overrides(seed=seed, n_folds=n_folds)
    if isinstance(dataset, str):
        dataset = get_dataset(dataset, random_state=seed)
    execution = execution if execution is not None else ExecutionSpec()
    if execution.metric is None and dataset.metric != "euclidean":
        # A cosine/precomputed data set keeps its own metric unless the
        # caller overrides it explicitly.
        execution = dataclasses.replace(execution, metric=dataset.metric)
    if execution.metric not in (None, "euclidean") and algorithm == "mpck":
        raise SpecError(
            "fit",
            [
                'fit.algorithm: "mpck" learns per-cluster Euclidean metrics and cannot'
                f" run under metric = {execution.metric!r}; use algorithm = \"fosc\""
            ],
        )
    rng = check_random_state(seed)
    side = make_side_information(dataset, scenario, amount, random_state=rng)
    estimator = algorithm_factory(algorithm, config, random_state=rng, metric=dataset.metric)
    values = parameter_values_for(algorithm, dataset, config)
    search = CVCP(
        estimator,
        values,
        n_folds=n_folds,
        refit=True,
        random_state=rng,
        execution=execution,
    )
    if scenario == "labels":
        search.fit(dataset.X, labeled_objects=side.labeled_objects)
    else:
        search.fit(dataset.X, constraints=side.constraints)
    labels = tuple(int(label) for label in search.labels_)
    return FitReport(
        algorithm=algorithm,
        dataset=dataset.name,
        parameter_name=estimator.tuned_parameter,
        parameter_value=search.best_params_[estimator.tuned_parameter],
        best_score=float(search.best_score_),
        labels=labels,
        n_clusters=len({label for label in labels if label >= 0}),
    )
