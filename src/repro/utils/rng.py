"""Random-number-generator handling.

All stochastic components of the library accept a ``random_state`` argument
that may be ``None``, an integer seed, or an existing
:class:`numpy.random.Generator`; :func:`check_random_state` normalises it.
"""

from __future__ import annotations

import numpy as np

RandomStateLike = None | int | np.random.Generator


def check_random_state(random_state: RandomStateLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed for
        a reproducible generator, or an existing generator which is returned
        unchanged.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed, or a numpy.random.Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Derive ``n`` independent child seeds from ``rng``.

    The experiment drivers persist per-trial artifacts keyed by these seeds
    (see :mod:`repro.experiments.artifacts`); drawing plain integers rather
    than generators keeps the keys serialisable while
    ``np.random.default_rng(seed)`` reproduces the exact child stream.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(seed) for seed in seeds]


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by experiment drivers to give every trial its own stream while
    keeping the whole experiment reproducible from a single seed.
    """
    return [np.random.default_rng(seed) for seed in spawn_seeds(rng, n)]
