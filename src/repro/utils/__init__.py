"""Small shared utilities (validation, RNG handling, disjoint sets, caches)."""

from repro.utils.cache import (
    CacheStats,
    MemoCache,
    array_fingerprint,
    cached_pairwise_distances,
    clear_distance_cache,
    configure_distance_cache,
    distance_cache_stats,
)
from repro.utils.disjoint_set import DisjointSet
from repro.utils.rng import check_random_state
from repro.utils.validation import (
    check_array_2d,
    check_labels,
    check_fraction,
    check_positive_int,
)

__all__ = [
    "CacheStats",
    "MemoCache",
    "array_fingerprint",
    "cached_pairwise_distances",
    "clear_distance_cache",
    "configure_distance_cache",
    "distance_cache_stats",
    "DisjointSet",
    "check_random_state",
    "check_array_2d",
    "check_labels",
    "check_fraction",
    "check_positive_int",
]
