"""Small shared utilities (validation, RNG handling, disjoint sets)."""

from repro.utils.disjoint_set import DisjointSet
from repro.utils.rng import check_random_state
from repro.utils.validation import (
    check_array_2d,
    check_labels,
    check_fraction,
    check_positive_int,
)

__all__ = [
    "DisjointSet",
    "check_random_state",
    "check_array_2d",
    "check_labels",
    "check_fraction",
    "check_positive_int",
]
