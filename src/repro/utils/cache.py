"""Process-safe memoised caches for expensive, recomputed intermediates.

The CVCP grid evaluates every candidate parameter value on every fold, and
each density-based task (FOSC-OPTICSDend, OPTICS, agglomerative linkage,
silhouette evaluation) starts by computing the full O(n²) pairwise-distance
matrix of the *same* data matrix.  The matrix only depends on ``(X, metric)``,
so a small memo turns |values| × n_folds recomputations into one.

Design notes
------------
* **Keying.**  Arrays are keyed by a content fingerprint (shape, dtype and a
  BLAKE2 digest of the raw bytes), not by ``id()``: the executor may hand a
  pickled copy of ``X`` to every worker task, and copies must still hit.
* **Thread safety.**  A single re-entrant lock guards lookup *and* compute,
  so concurrent thread-backend tasks compute a missing matrix exactly once.
* **Process safety.**  The cache is plain per-process module state — worker
  processes each hold their own memo and never share mutable state, so there
  is nothing to corrupt across processes.  On fork-based platforms a cache
  warmed in the parent (see :meth:`repro.core.cvcp.CVCP.fit`) is inherited
  by the children for free.
* **Immutability.**  Cached matrices are returned with ``writeable=False``;
  callers that need to mutate (e.g. agglomerative linkage) already copy.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Default maximum number of distance matrices kept per process.
DEFAULT_MAX_ITEMS = 8


def array_fingerprint(array: np.ndarray) -> str:
    """Content fingerprint of an array: shape, dtype and a digest of the bytes.

    Contiguous arrays are hashed straight from their buffer; non-contiguous
    views are staged through small row blocks instead of one hidden
    full-size contiguous copy, so fingerprinting (and therefore every cache
    lookup) never doubles the input's memory footprint.  The digest is the
    C-order byte stream either way, so a view and its contiguous copy share
    a fingerprint.
    """
    from scipy import sparse

    if sparse.issparse(array):
        matrix = array.tocsr()
        digest = hashlib.blake2b(digest_size=16)
        for part in (matrix.data, matrix.indices, matrix.indptr):
            part = np.ascontiguousarray(part)
            digest.update(part.view(np.uint8).data)
        return f"csr:{matrix.shape}:{matrix.dtype.str}:{digest.hexdigest()}"
    array = np.asarray(array)
    digest = hashlib.blake2b(digest_size=16)
    if array.flags.c_contiguous:
        digest.update(array.view(np.uint8).data)
    else:
        row_bytes = max(int(array[0:1].nbytes), 1)
        block = max(1, (4 << 20) // row_bytes)  # ~4 MiB staging buffer
        for start in range(0, array.shape[0], block):
            digest.update(array[start:start + block].tobytes())
    return f"{array.shape}:{array.dtype.str}:{digest.hexdigest()}"


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache (per process)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def _value_nbytes(value: object) -> int:
    return int(getattr(value, "nbytes", 0))


class MemoCache:
    """A bounded, thread-safe LRU memo with hit/miss accounting.

    Bounded by entry count (``max_items``) and, optionally, by the total
    ``nbytes`` of the cached values (``max_bytes``) — the bound that matters
    when the values are O(n²) matrices.  ``max_items=0`` disables caching
    entirely (every request computes and nothing is retained).
    """

    def __init__(
        self, max_items: int = DEFAULT_MAX_ITEMS, max_bytes: int | None = None
    ) -> None:
        if max_items < 0:
            raise ValueError(f"max_items must be >= 0, got {max_items}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_items = max_items
        self.max_bytes = max_bytes
        self._entries: OrderedDict[object, object] = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.RLock()
        self._stats = CacheStats()

    def _evict_over_bounds(self) -> None:
        def over() -> bool:
            if len(self._entries) > self.max_items:
                return True
            return (
                self.max_bytes is not None
                and self._total_bytes > self.max_bytes
                and len(self._entries) > 1  # keep at least the newest entry
            )

        while over():
            _, evicted = self._entries.popitem(last=False)
            self._total_bytes -= _value_nbytes(evicted)
            self._stats.evictions += 1

    def get_or_compute(self, key: object, compute: Callable[[], object]) -> object:
        """Return the cached value for ``key``, computing it on first use.

        The lock is held across the compute so concurrent threads asking for
        the same key run it exactly once.
        """
        if self.max_items == 0:
            return compute()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return self._entries[key]
            value = compute()
            self._stats.misses += 1
            self._entries[key] = value
            self._total_bytes += _value_nbytes(value)
            self._evict_over_bounds()
            self._stats.size = len(self._entries)
            return value

    def peek(self, key: object) -> object | None:
        """Return the cached value for ``key`` without computing, or ``None``.

        A present key counts as a hit (and refreshes its LRU recency);
        absence is *not* counted as a miss — the caller decides whether to
        compute, so the eventual :meth:`get_or_compute` records it.
        """
        if self.max_items == 0:
            return None
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return self._entries[key]
            return None

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0
            self._stats = CacheStats()

    def stats(self) -> CacheStats:
        """A snapshot of the current accounting."""
        with self._lock:
            return CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                size=len(self._entries),
                bytes=self._total_bytes,
            )


#: The per-process pairwise-distance memo.
_distance_cache = MemoCache()


def cached_pairwise_distances(
    X: np.ndarray, metric: str = "euclidean", *, distance_backend: str | None = None
) -> np.ndarray:
    """Full ``(n, n)`` distance matrix for ``X``, memoised per process.

    Drop-in replacement for
    :func:`repro.clustering.distances.pairwise_distances`; the returned
    matrix is read-only because it is shared between callers.

    ``distance_backend`` selects the storage tier (see
    :mod:`repro.core.distance_backend`; ``None`` consults
    ``REPRO_DISTANCE_BACKEND``).  The resolved backend is part of the memo
    key, so every tier sees the same hit/miss pattern for the same request
    sequence; all tiers return bit-identical values.  The input is
    fingerprinted as-is — a cache hit never converts or copies ``X``.
    """
    from scipy import sparse

    from repro.core.distance_backend import get_distance_backend

    backend = get_distance_backend(distance_backend)
    if not sparse.issparse(X):
        X = np.asarray(X)
    key = (array_fingerprint(X), metric, backend.name)

    def compute() -> np.ndarray:
        matrix = backend.pairwise(X, metric=metric)
        matrix.setflags(write=False)
        return matrix

    return _distance_cache.get_or_compute(key, compute)


def distance_cache_stats() -> CacheStats:
    """Hit/miss accounting of the per-process distance cache."""
    return _distance_cache.stats()


def clear_distance_cache() -> None:
    """Drop all memoised distance matrices (mainly for tests and benchmarks).

    Also drops the neighbour-graph memo of the ``neighbors`` tier and the
    tree-structure memo built on top of the distances, so one call resets
    every per-process distance-derived cache.
    """
    _distance_cache.clear()
    # Imported lazily: both modules import this one at top level.
    from repro.clustering.hierarchy import clear_structure_cache
    from repro.core.neighbor_graph import clear_neighbor_graph_cache

    clear_neighbor_graph_cache()
    clear_structure_cache()


def configure_distance_cache(max_items: int, max_bytes: int | None = None) -> None:
    """Re-bound the per-process distance cache; clears the current contents.

    ``max_items`` caps the number of matrices, ``max_bytes`` their total
    size; ``max_items=0`` disables memoisation entirely (useful when single
    matrices are too large to retain).
    """
    global _distance_cache
    _distance_cache = MemoCache(max_items=max_items, max_bytes=max_bytes)
