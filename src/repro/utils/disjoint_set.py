"""Union-find (disjoint-set) data structure.

Used for must-link components in the constraint closure, for connected
components of constraint graphs, and for building single-linkage
dendrograms from minimum-spanning-tree edges.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator


class DisjointSet:
    """Union-find with path compression and union by size.

    Elements can be any hashable value and are added lazily via
    :meth:`add`, :meth:`find`, or :meth:`union`.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._n_components = 0
        for element in elements:
            self.add(element)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint groups currently tracked."""
        return self._n_components

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton group if not yet present."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._n_components += 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s group."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the groups of ``a`` and ``b``; return the surviving root."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return root_a

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are currently in the same group."""
        return self.find(a) == self.find(b)

    def group_size(self, element: Hashable) -> int:
        """Size of the group containing ``element``."""
        return self._size[self.find(element)]

    def groups(self) -> list[list[Hashable]]:
        """All groups as lists of members (each list in insertion order)."""
        by_root: dict[Hashable, list[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), []).append(element)
        return list(by_root.values())
