"""Input validation helpers shared across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_array_2d(X: object, *, name: str = "X", dtype: type = np.float64) -> np.ndarray:
    """Validate that ``X`` is a non-empty 2-d numeric array and return it.

    Accepts anything :func:`numpy.asarray` accepts; raises ``ValueError``
    with a descriptive message otherwise.  scipy sparse matrices pass
    through as CSR ``float64`` without densifying — only their stored
    values are checked for finiteness.
    """
    try:
        from scipy import sparse
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        sparse = None
    if sparse is not None and sparse.issparse(X):
        matrix = X.tocsr()
        if matrix.dtype != np.float64:
            matrix = matrix.astype(np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"{name} must be a 2-d array, got shape {matrix.shape}")
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ValueError(f"{name} must not be empty, got shape {matrix.shape}")
        if not np.all(np.isfinite(matrix.data)):
            raise ValueError(f"{name} contains NaN or infinite values")
        return matrix
    array = np.asarray(X, dtype=dtype)
    if array.ndim != 2:
        raise ValueError(f"{name} must be a 2-d array, got shape {array.shape}")
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise ValueError(f"{name} must not be empty, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return array


def check_labels(labels: object, n_samples: int | None = None, *, name: str = "labels") -> np.ndarray:
    """Validate a 1-d integer label vector (noise encoded as ``-1`` allowed)."""
    array = np.asarray(labels)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-d, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must not be empty")
    if n_samples is not None and array.shape[0] != n_samples:
        raise ValueError(
            f"{name} has {array.shape[0]} entries but {n_samples} samples were expected"
        )
    if array.dtype.kind not in "iu":
        # Allow label vectors given as floats or strings only if losslessly
        # convertible to integers; class labels in this library are integers.
        try:
            as_int = array.astype(np.int64)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{name} must contain integers, got dtype {array.dtype}") from exc
        if array.dtype.kind == "f" and not np.all(as_int == array):
            raise ValueError(f"{name} must contain integers, got non-integral floats")
        array = as_int
    return array.astype(np.int64, copy=False)


def check_fraction(value: float, *, name: str = "fraction", allow_zero: bool = False) -> float:
    """Validate a fraction in ``(0, 1]`` (or ``[0, 1]`` if ``allow_zero``)."""
    value = float(value)
    lower_ok = value >= 0.0 if allow_zero else value > 0.0
    if not lower_ok or value > 1.0:
        bounds = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bounds}, got {value}")
    return value


def check_positive_int(value: object, *, name: str = "value", minimum: int = 1) -> int:
    """Validate an integer ``>= minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def unique_labels(labels: Sequence[int] | np.ndarray, *, ignore_noise: bool = True) -> np.ndarray:
    """Sorted unique labels, optionally dropping the noise label ``-1``."""
    array = np.asarray(labels)
    uniques = np.unique(array)
    if ignore_noise:
        uniques = uniques[uniques >= 0]
    return uniques
