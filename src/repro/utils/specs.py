"""The shared ``to_spec()`` / ``from_spec()`` declarative-surface protocol.

The repository grew three ad-hoc "describe me as a JSON-able mapping"
surfaces — oracle ``spec()`` dicts, the pipeline's ``[execution]`` /
``[fleet]`` / ``[serve]`` config tables, and the bench record schemas.
This module is the one contract they all implement:

* ``obj.to_spec()`` returns a JSON-serialisable mapping that fully
  describes the object (no ``None`` placeholders: absent keys mean
  "default", which keeps the mappings round-trippable through TOML,
  which has no null);
* ``Type.from_spec(mapping)`` validates the mapping — collecting *every*
  problem, not just the first — and rebuilds an equal object, raising
  :class:`SpecError` otherwise;
* ``Type.from_spec(obj.to_spec()) == obj`` holds for every implementor
  (the round-trip law; ``tests/test_api.py`` locks it in).

:class:`SpecError` is the shared validation-error type.  It subclasses
``ValueError`` so pre-protocol ``except ValueError`` call sites keep
working, and carries the machine-readable ``source`` and ``problems``
attributes the CLI and the serve layer render from.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, runtime_checkable


class SpecError(ValueError):
    """A spec mapping failed validation; ``problems`` lists every issue.

    Parameters
    ----------
    source:
        What was being validated — a file path, a table name
        (``"execution"``), or a record kind (``"bench-serve record"``).
    problems:
        One human-readable message per issue found.  Validators collect
        all of them before raising, so a config with five mistakes is
        fixed in one edit, not five.
    label:
        Noun used in the headline message (subclasses override it to
        keep their historical wording).
    """

    def __init__(self, source: str, problems: Iterable[str], *, label: str = "spec") -> None:
        self.source = source
        self.problems = list(problems)
        details = "\n".join(f"  - {problem}" for problem in self.problems)
        super().__init__(f"invalid {label} {source}:\n{details}")


@runtime_checkable
class Specable(Protocol):
    """Structural type of every ``to_spec``/``from_spec`` implementor."""

    def to_spec(self) -> dict: ...  # pragma: no cover - protocol stub

    @classmethod
    def from_spec(cls, spec: Mapping) -> "Specable": ...  # pragma: no cover - protocol stub


def check_spec_mapping(spec: object, source: str) -> Mapping:
    """Common ``from_spec`` entry guard: the input must be a mapping."""
    if not isinstance(spec, Mapping):
        raise SpecError(source, [f"must be a table/object, got {type(spec).__name__}"])
    return spec


def unknown_key_problems(spec: Mapping, known: tuple[str, ...], table: str) -> list[str]:
    """One problem message per key of ``spec`` not in ``known``."""
    return [
        f"{table}.{key}: unknown key (expected {', '.join(known)})"
        for key in spec
        if key not in known
    ]


def assert_roundtrip(obj: Specable) -> None:
    """Raise ``AssertionError`` unless ``from_spec(to_spec(obj)) == obj``.

    A debugging/test helper, not a hot-path check.
    """
    rebuilt = type(obj).from_spec(obj.to_spec())
    if rebuilt != obj:
        raise AssertionError(f"spec round-trip changed the value: {obj!r} -> {rebuilt!r}")
