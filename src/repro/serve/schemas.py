"""Request/response schemas of the serve layer.

Everything the HTTP surface exchanges with clients is defined here as
frozen dataclasses with explicit ``as_dict`` (responses) or
``to_spec``/``from_spec`` (config) conversions, so the wire format is a
stable, documented contract rather than whatever the handlers happen to
serialise.  The module is deliberately import-light (stdlib +
:mod:`repro.utils.specs` only): :mod:`repro.experiments.pipeline` imports
:class:`ServeSettings` for the ``[serve]`` config table without pulling in
the HTTP machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.utils.specs import SpecError, check_spec_mapping, unknown_key_problems

#: Lifecycle states a submitted job moves through, in order.
JOB_STATES: tuple[str, ...] = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class ServeSettings:
    """The ``[serve]`` config table: knobs of the ``repro serve`` layer.

    Attributes
    ----------
    host:
        Interface the server binds (loopback by default — the API is
        unauthenticated, so exposing it wider is an explicit choice).
    port:
        TCP port; ``0`` asks the OS for an ephemeral port (the CLI prints
        the bound address, tests rely on this).
    workers:
        Bounded worker-pool size: how many jobs run concurrently.  Each
        job already parallelises internally through the executor
        backends, so a small pool is the right default.
    max_pending:
        Submissions beyond this many queued-or-running jobs are refused
        with HTTP 429 instead of growing an unbounded queue.
    """

    host: str = "127.0.0.1"
    port: int = 8601
    workers: int = 2
    max_pending: int = 32

    def __post_init__(self) -> None:
        problems = []
        if not isinstance(self.host, str) or not self.host:
            problems.append(f"serve.host: must be a non-empty host string, got {self.host!r}")
        if (
            isinstance(self.port, bool)
            or not isinstance(self.port, int)
            or not 0 <= self.port <= 65535
        ):
            problems.append(
                f"serve.port: must be an integer in [0, 65535] (0 = ephemeral), got {self.port!r}"
            )
        for key in ("workers", "max_pending"):
            value = getattr(self, key)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                problems.append(f"serve.{key}: must be a positive integer, got {value!r}")
        if problems:
            raise SpecError("serve", problems)

    def with_overrides(
        self,
        *,
        host: str | None = None,
        port: int | None = None,
        workers: int | None = None,
        max_pending: int | None = None,
    ) -> "ServeSettings":
        """Copy with the given fields replaced (CLI flag overrides); ``None`` keeps."""
        updates = {
            key: value
            for key, value in (
                ("host", host),
                ("port", port),
                ("workers", workers),
                ("max_pending", max_pending),
            )
            if value is not None
        }
        return replace(self, **updates) if updates else self

    def to_spec(self) -> dict:
        """JSON/TOML-ready ``[serve]`` table mapping."""
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "max_pending": self.max_pending,
        }

    @classmethod
    def from_spec(cls, spec: Mapping) -> "ServeSettings":
        """Validate a ``[serve]`` table mapping, collecting every problem."""
        spec = check_spec_mapping(spec, "serve")
        known = ("host", "port", "workers", "max_pending")
        problems = unknown_key_problems(spec, known, "serve")
        kwargs = {key: spec[key] for key in known if key in spec}
        built = None
        try:
            built = cls(**kwargs)
        except SpecError as exc:
            problems.extend(exc.problems)
        if problems or built is None:
            raise SpecError("serve", problems)
        return built


@dataclass(frozen=True)
class JobProgress:
    """Per-cell progress of one job, streamed from the artifact store.

    ``done_units`` counts completed work units (trials for grid kinds,
    dataset×amount cells otherwise) out of ``total_units``; the trial
    counters split completed units into computed-fresh vs served-from-
    cache, and ``cells_written`` counts interim CVCP grid cells persisted
    mid-trial (the resume granularity).
    """

    total_units: int = 0
    done_units: int = 0
    cells_written: int = 0
    trials_computed: int = 0
    trials_cached: int = 0

    def as_dict(self) -> dict:
        return {
            "total_units": self.total_units,
            "done_units": self.done_units,
            "cells_written": self.cells_written,
            "trials_computed": self.trials_computed,
            "trials_cached": self.trials_cached,
        }


@dataclass(frozen=True)
class JobView:
    """An immutable snapshot of one job, as the API returns it.

    ``digest`` is the content digest of the submitted spec — identical
    submissions share it, which is how duplicates are detected;
    ``deduplicated`` marks a submission that joined an already-active
    identical job instead of enqueueing a new one.
    """

    id: str
    state: str
    name: str
    kind: str
    digest: str
    deduplicated: bool
    progress: JobProgress
    error: str | None = None

    def as_dict(self) -> dict:
        payload = {
            "id": self.id,
            "state": self.state,
            "name": self.name,
            "kind": self.kind,
            "digest": self.digest,
            "deduplicated": self.deduplicated,
            "progress": self.progress.as_dict(),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload
