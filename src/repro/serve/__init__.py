"""Clustering-as-a-service: a long-lived HTTP API over the artifact store.

``repro serve`` turns the batch pipeline into a service: clients POST
pipeline specs (or parameter-selection requests) to ``/v1/jobs``, poll
per-cell progress streamed from the executor's ``on_result`` hook, and
fetch the finished ``summary.json``/``report.txt`` — byte-identical to
what the batch CLI writes for the same spec, because both routes run
through :mod:`repro.api` and share the content-addressed
:class:`~repro.experiments.artifacts.ArtifactStore`.  Identical
submissions are deduplicated against active jobs and served from cache
once complete.

Layout:

* :mod:`repro.serve.schemas` — frozen request/response dataclasses and
  the ``[serve]`` config table (:class:`ServeSettings`);
* :mod:`repro.serve.jobs` — the bounded worker pool
  (:class:`JobManager`) bridging HTTP submissions to :mod:`repro.api`;
* :mod:`repro.serve.server` — the stdlib threading HTTP server and its
  route handlers;
* :mod:`repro.serve.client` — a small urllib client
  (:class:`ServeClient`) used by the tests, the load bench and CI.

The heavy submodules load lazily so importing
:class:`~repro.serve.schemas.ServeSettings` (which the pipeline config
layer does) never drags in the HTTP machinery.
"""

from repro.serve.schemas import JOB_STATES, JobProgress, JobView, ServeSettings

__all__ = [
    "JOB_STATES",
    "JobManager",
    "JobProgress",
    "JobView",
    "QueueFullError",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServeSettings",
    "make_server",
]

_LAZY = {
    "JobManager": "repro.serve.jobs",
    "QueueFullError": "repro.serve.jobs",
    "ReproServer": "repro.serve.server",
    "make_server": "repro.serve.server",
    "ServeClient": "repro.serve.client",
    "ServeError": "repro.serve.client",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
