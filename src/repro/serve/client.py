"""A small urllib client for the ``repro serve`` API.

Used by the end-to-end tests, the ``repro bench serve`` load bench and
the CI smoke job — and handy interactively:

>>> client = ServeClient("http://127.0.0.1:8601")
>>> job = client.submit({"experiment": {...}})          # doctest: +SKIP
>>> done = client.wait(job["id"])                       # doctest: +SKIP
>>> summary = client.report_bytes(job["id"], "json")    # doctest: +SKIP

Errors come back as :class:`ServeError` carrying the HTTP status and the
decoded error payload (including the server's ``problems`` list for 400s).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response from the serve API."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        problems = payload.get("problems") or []
        details = "".join(f"\n  - {problem}" for problem in problems)
        super().__init__(f"HTTP {status}: {payload.get('error', 'request failed')}{details}")


class ServeClient:
    """Minimal synchronous client over :mod:`urllib` (no dependencies)."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None) -> tuple[int, bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": raw.decode("utf-8", "replace") or str(exc)}
            raise ServeError(exc.code, payload) from None

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        _, raw = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/v1/health")

    def store_stats(self) -> dict:
        return self._json("GET", "/v1/store/stats")

    def submit(self, payload: dict) -> dict:
        """POST a job body; returns the job snapshot (see ``JobView``)."""
        return self._json("POST", "/v1/jobs", payload)

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, *, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Poll until the job leaves the queue; returns its final snapshot.

        Raises :class:`TimeoutError` if the job is still active after
        ``timeout`` seconds.  A failed job is returned, not raised — its
        ``error`` field says why.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {view['state']} after {timeout:g}s")
            time.sleep(poll)

    def report_bytes(self, job_id: str, fmt: str = "json") -> bytes:
        """The finished report, byte-for-byte as written on the server."""
        _, raw = self._request("GET", f"/v1/jobs/{job_id}/report?format={fmt}")
        return raw
