"""The ``repro serve`` HTTP server: stdlib threading server + routes.

Endpoints (all JSON unless noted):

========================== ======================================================
``GET  /v1/health``        liveness + version
``GET  /v1/store/stats``   server-wide artifact-store statistics
``POST /v1/jobs``          submit a pipeline spec or ``{"select": ...}`` request
``GET  /v1/jobs``          snapshots of every job
``GET  /v1/jobs/{id}``     one job's state + per-cell progress
``GET  /v1/jobs/{id}/report``  the finished report — ``?format=json`` returns the
                           exact ``summary.json`` bytes, ``?format=txt`` the
                           ``report.txt`` bytes (byte-identical to a CLI run)
========================== ======================================================

Error mapping: validation problems → 400 with a ``problems`` list (the
same messages ``repro validate-config`` prints), unknown ids/routes →
404, a report requested before the job is done → 409, a full queue →
429.  Submissions return 202 (or 200 when deduplicated onto an active
identical job).

Built on :class:`http.server.ThreadingHTTPServer` (daemon threads, so
in-flight handlers never block shutdown) — the service adds no
dependencies beyond the Python standard library.
"""

from __future__ import annotations

import json
import os
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import repro
from repro.serve.jobs import JobManager, QueueFullError
from repro.serve.schemas import ServeSettings
from repro.utils.specs import SpecError

__all__ = ["ReproServer", "make_server"]


class ReproServer(ThreadingHTTPServer):
    """Threading HTTP server owning one :class:`JobManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager

    @property
    def url(self) -> str:
        """Base URL of the bound socket (resolves ephemeral ports)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self) -> None:  # noqa: D102 - inherited semantics + pool stop
        super().shutdown()
        self.manager.shutdown(wait=False)


def make_server(root: str | os.PathLike, settings: ServeSettings) -> ReproServer:
    """Bind a server for the artifacts root per the ``[serve]`` settings."""
    manager = JobManager(root, workers=settings.workers, max_pending=settings.max_pending)
    return ReproServer((settings.host, settings.port), manager)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ReproServer

    # Handler plumbing ---------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        pass  # request logging is the CLI's job, not stderr noise

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_error(self, status: int, message: str, problems: list[str] | None = None) -> None:
        payload: dict = {"error": message}
        if problems:
            payload["problems"] = problems
        self._send_json(status, payload)

    # Routes -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        manager = self.server.manager
        if parts == ["v1", "health"]:
            self._send_json(200, {"status": "ok", "version": repro.__version__})
        elif parts == ["v1", "store", "stats"]:
            self._send_json(200, manager.store_stats())
        elif parts == ["v1", "jobs"]:
            self._send_json(200, {"jobs": [view.as_dict() for view in manager.list_views()]})
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            view = manager.view(parts[2])
            if view is None:
                self._send_error(404, f"unknown job {parts[2]!r}")
            else:
                self._send_json(200, view.as_dict())
        elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "report":
            fmt = parse_qs(url.query).get("format", ["json"])[0]
            self._send_report(parts[2], fmt)
        else:
            self._send_error(404, f"unknown route {url.path!r}")

    def _send_report(self, job_id: str, fmt: str) -> None:
        manager = self.server.manager
        view = manager.view(job_id)
        if view is None:
            self._send_error(404, f"unknown job {job_id!r}")
            return
        if view.state != "done":
            self._send_error(409, f"job {job_id} is {view.state}; its report is not ready")
            return
        if fmt not in ("json", "txt"):
            self._send_error(400, f"unknown report format {fmt!r} (expected json or txt)")
            return
        # Pipeline jobs return the report *files* byte-for-byte — the
        # parity contract with CLI runs of the same spec.
        for path in manager.report_paths_of(job_id):
            if path.suffix == f".{fmt}":
                self._send_bytes(
                    200,
                    path.read_bytes(),
                    "application/json" if fmt == "json" else "text/plain; charset=utf-8",
                )
                return
        if fmt == "json":
            result = manager.result_of(job_id)
            if result is not None:
                self._send_json(200, result)
                return
        self._send_error(404, f"job {job_id} has no {fmt} report")

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts != ["v1", "jobs"]:
            self._send_error(404, f"unknown route {url.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            view = self.server.manager.submit(payload)
        except QueueFullError as exc:
            self._send_error(429, str(exc))
            return
        except SpecError as exc:
            self._send_error(400, "invalid job", exc.problems)
            return
        self._send_json(200 if view.deduplicated else 202, view.as_dict())
