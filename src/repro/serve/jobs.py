"""The serve layer's bounded job pool over the artifact store.

:class:`JobManager` bridges HTTP submissions to :mod:`repro.api`: each
accepted job runs :func:`repro.api.run_pipeline` (pipeline-spec bodies)
or :func:`repro.api.select_parameter` (``{"select": {...}}`` bodies) on a
bounded ``ThreadPoolExecutor``, against an
:class:`~repro.experiments.artifacts.ArtifactStore` rooted at the
server's artifacts directory.  Consequences of that shared store:

* identical specs submitted twice produce byte-identical reports, and
  the second run is served from cached trials;
* a submission byte-identical to a *currently active* job does not
  enqueue at all — it joins the in-flight job (``deduplicated`` in the
  response);
* ``repro run --worker`` fleets pointed at the same artifacts root drain
  the same trial grid, so HTTP submissions compose with batch workers.

Per-job progress is streamed from the store's ``on_event`` observer
hook: every ``trial`` hit/write advances ``done_units`` (split into
cached vs computed), every interim ``cell`` write bumps
``cells_written`` — the same granularity at which a killed job resumes.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Mapping

from repro import api
from repro.experiments.artifacts import ArtifactStore, key_digest
from repro.experiments.fleet import enumerate_units
from repro.serve.schemas import JobProgress, JobView
from repro.utils.specs import SpecError, check_spec_mapping

__all__ = ["JobManager", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Submission refused: ``max_pending`` jobs are already queued or running."""


class _Job:
    """Mutable job state; every read/write happens under the manager lock."""

    __slots__ = (
        "id", "digest", "name", "kind", "spec", "request", "state", "error",
        "total_units", "done_units", "cells_written", "trials_computed",
        "trials_cached", "report_paths", "result", "dedup_joins",
    )

    def __init__(self, job_id: str, digest: str, name: str, kind: str) -> None:
        self.id = job_id
        self.digest = digest
        self.name = name
        self.kind = kind
        self.spec = None
        self.request = None
        self.state = "queued"
        self.error: str | None = None
        self.total_units = 0
        self.done_units = 0
        self.cells_written = 0
        self.trials_computed = 0
        self.trials_cached = 0
        self.report_paths: tuple[Path, ...] = ()
        self.result: dict | None = None
        self.dedup_joins = 0


class JobManager:
    """Validate, deduplicate and execute jobs on a bounded worker pool.

    Parameters
    ----------
    root:
        Artifacts root every job runs against.  Posted specs have their
        ``[artifacts]`` root overridden to this directory — clients share
        the server's cache; they don't pick store locations.
    workers:
        Pool size: jobs running concurrently (each job parallelises
        internally through its own execution backend).
    max_pending:
        Hard cap on queued-plus-running jobs; submissions beyond it raise
        :class:`QueueFullError` (HTTP 429).
    """

    def __init__(self, root: str | Path, *, workers: int = 2, max_pending: int = 32) -> None:
        self.root = Path(root)
        self.store = ArtifactStore(self.root)
        self.max_pending = int(max_pending)
        self._pool = ThreadPoolExecutor(max_workers=int(workers), thread_name_prefix="repro-serve")
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._active: dict[str, str] = {}  # spec digest -> job id, while queued/running
        self._ids = itertools.count(1)
        self._totals = {"hits": 0, "misses": 0, "writes": 0}

    # ------------------------------------------------------------------
    def submit(self, payload: Mapping) -> JobView:
        """Validate and enqueue one job; returns its immediate snapshot.

        Raises :class:`~repro.utils.specs.SpecError` (or its
        :class:`~repro.experiments.pipeline.ConfigError` subclass) on an
        invalid body and :class:`QueueFullError` on a full queue.  A body
        identical to an active job joins it instead of enqueueing
        (``deduplicated=True`` in the returned view).
        """
        payload = check_spec_mapping(payload, "job")
        digest = key_digest("serve-job", dict(payload))
        with self._lock:
            active_id = self._active.get(digest)
            if active_id is not None:
                job = self._jobs[active_id]
                job.dedup_joins += 1
                return self._view(job, deduplicated=True)
        # Validation happens outside the lock (it can touch the dataset
        # registry); rejects never consume queue capacity.
        job = self._prepare(payload, digest)
        with self._lock:
            # Re-check: an identical job may have been enqueued while we
            # were validating.
            active_id = self._active.get(digest)
            if active_id is not None:
                existing = self._jobs[active_id]
                existing.dedup_joins += 1
                return self._view(existing, deduplicated=True)
            pending = sum(
                1 for other in self._jobs.values() if other.state in ("queued", "running")
            )
            if pending >= self.max_pending:
                raise QueueFullError(
                    f"job queue is full ({pending} active, max_pending={self.max_pending})"
                )
            job.id = f"job-{next(self._ids)}"
            self._jobs[job.id] = job
            self._active[digest] = job.id
            view = self._view(job)
        self._pool.submit(self._run, job)
        return view

    def _prepare(self, payload: Mapping, digest: str) -> _Job:
        """Validate a request body into an (unregistered) job."""
        if "select" in payload:
            problems = [
                f"job.{key}: unknown key alongside 'select' (a selection request has"
                " exactly one top-level key)"
                for key in payload
                if key != "select"
            ]
            if problems:
                raise SpecError("job", problems)
            request = api.SelectionRequest.from_spec(payload["select"])
            job = _Job("", digest, f"select-{request.algorithm}-{request.dataset}", "select")
            job.request = request
            job.total_units = request.n_trials
            return job
        spec = api.load_spec(payload).with_overrides(artifacts_root=self.root)
        job = _Job("", digest, spec.name, spec.kind)
        job.spec = spec
        job.total_units = len(enumerate_units(spec))
        return job

    def _run(self, job: _Job) -> None:
        with self._lock:
            job.state = "running"
        store = ArtifactStore(
            self.root, on_event=lambda event, kind: self._observe(job, event, kind)
        )
        try:
            if job.kind == "select":
                report = api.select_parameter(job.request, store=store)
                result = report.as_dict()
                paths: tuple[Path, ...] = ()
            else:
                pipeline_report = api.run_pipeline(job.spec, store=store)
                result = pipeline_report.as_dict()
                paths = pipeline_report.report_paths
            with self._lock:
                job.result = result
                job.report_paths = paths
                job.state = "done"
        except Exception as exc:  # noqa: BLE001 - the job's error IS the result
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
        finally:
            with self._lock:
                self._active.pop(job.digest, None)

    def _observe(self, job: _Job, event: str, kind: str) -> None:
        """Store observer: fold one hit/miss/write into job + server totals."""
        with self._lock:
            key = {"hit": "hits", "miss": "misses", "write": "writes"}[event]
            self._totals[key] += 1
            if kind == "cell" and event == "write":
                job.cells_written += 1
            elif kind == "trial":
                if event == "hit":
                    job.trials_cached += 1
                    job.done_units += 1
                elif event == "write":
                    job.trials_computed += 1
                    job.done_units += 1

    # ------------------------------------------------------------------
    def _view(self, job: _Job, *, deduplicated: bool | None = None) -> JobView:
        """Immutable snapshot; caller must hold the lock."""
        return JobView(
            id=job.id,
            state=job.state,
            name=job.name,
            kind=job.kind,
            digest=job.digest,
            deduplicated=deduplicated if deduplicated is not None else job.dedup_joins > 0,
            progress=JobProgress(
                total_units=job.total_units,
                done_units=job.done_units,
                cells_written=job.cells_written,
                trials_computed=job.trials_computed,
                trials_cached=job.trials_cached,
            ),
            error=job.error,
        )

    def view(self, job_id: str) -> JobView | None:
        """Snapshot of one job, or ``None`` for an unknown id."""
        with self._lock:
            job = self._jobs.get(job_id)
            return self._view(job) if job is not None else None

    def list_views(self) -> list[JobView]:
        """Snapshots of every job, in submission order."""
        with self._lock:
            return [self._view(job) for job in self._jobs.values()]

    def result_of(self, job_id: str) -> dict | None:
        """The finished job's result payload (``None`` unless done)."""
        with self._lock:
            job = self._jobs.get(job_id)
            return dict(job.result) if job is not None and job.result is not None else None

    def report_paths_of(self, job_id: str) -> tuple[Path, ...]:
        with self._lock:
            job = self._jobs.get(job_id)
            return job.report_paths if job is not None else ()

    def store_stats(self) -> dict:
        """Server-wide store statistics (the ``/v1/store/stats`` payload)."""
        with self._lock:
            totals = dict(self._totals)
            states = [job.state for job in self._jobs.values()]
        requests = totals["hits"] + totals["misses"]
        return {
            "root": str(self.root),
            "artifacts": self.store.count(),
            "hits": totals["hits"],
            "misses": totals["misses"],
            "writes": totals["writes"],
            "hit_rate": (totals["hits"] / requests) if requests else 0.0,
            "jobs_total": len(states),
            "jobs_active": sum(1 for state in states if state in ("queued", "running")),
        }

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        self._pool.shutdown(wait=wait, cancel_futures=True)
