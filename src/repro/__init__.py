"""repro — reproduction of "Model Selection for Semi-Supervised Clustering".

Pourrajabi, Moulavi, Campello, Zimek, Sander & Goebel, EDBT 2014.

The package implements the paper's **CVCP** framework (Cross-Validation for
finding Clustering Parameters) together with every substrate its evaluation
relies on — the two semi-supervised clustering algorithms (MPCK-Means and
FOSC-OPTICSDend), the constraint machinery, the internal and external
evaluation measures, synthetic analogues of the evaluation data sets, and
the experiment harness that regenerates the paper's tables and figures.

Quick start::

    from repro import CVCP, MPCKMeans, make_iris_like, sample_labeled_objects

    data = make_iris_like(random_state=0)
    side_information = sample_labeled_objects(data.y, 0.10, random_state=0)
    search = CVCP(MPCKMeans(random_state=0), parameter_values=range(2, 8),
                  n_folds=5, random_state=0)
    search.fit(data.X, labeled_objects=side_information)
    print(search.best_params_, search.best_score_)
"""

from repro.constraints import (
    Constraint,
    ConstraintSet,
    MUST_LINK,
    CANNOT_LINK,
    must_link,
    cannot_link,
    transitive_closure,
    constraints_from_labels,
    sample_labeled_objects,
    build_constraint_pool,
    sample_constraint_subset,
)
from repro.clustering import (
    KMeans,
    COPKMeans,
    MPCKMeans,
    SeededKMeans,
    ConstrainedKMeans,
    AgglomerativeClustering,
    OPTICS,
    FOSC,
    FOSCOpticsDend,
)
from repro.core import (
    CVCP,
    CVCPResult,
    CVCPAlgorithmSelector,
    SilhouetteSelector,
    select_parameter,
    constraint_f_score,
    expected_quality,
)
from repro.evaluation import (
    overall_f_measure,
    adjusted_rand_index,
    normalized_mutual_information,
    silhouette_score,
    paired_t_test,
)
from repro.datasets import (
    Dataset,
    make_iris_like,
    make_wine_like,
    make_ionosphere_like,
    make_ecoli_like,
    make_zyeast_like,
    make_aloi_k5_like,
    make_aloi_collection,
    get_dataset,
    get_dataset_collection,
)

__version__ = "0.10.0"

__all__ = [
    "__version__",
    # constraints
    "Constraint",
    "ConstraintSet",
    "MUST_LINK",
    "CANNOT_LINK",
    "must_link",
    "cannot_link",
    "transitive_closure",
    "constraints_from_labels",
    "sample_labeled_objects",
    "build_constraint_pool",
    "sample_constraint_subset",
    # clustering
    "KMeans",
    "COPKMeans",
    "MPCKMeans",
    "SeededKMeans",
    "ConstrainedKMeans",
    "AgglomerativeClustering",
    "OPTICS",
    "FOSC",
    "FOSCOpticsDend",
    # core
    "CVCP",
    "CVCPResult",
    "CVCPAlgorithmSelector",
    "SilhouetteSelector",
    "select_parameter",
    "constraint_f_score",
    "expected_quality",
    # evaluation
    "overall_f_measure",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "silhouette_score",
    "paired_t_test",
    # datasets
    "Dataset",
    "make_iris_like",
    "make_wine_like",
    "make_ionosphere_like",
    "make_ecoli_like",
    "make_zyeast_like",
    "make_aloi_k5_like",
    "make_aloi_collection",
    "get_dataset",
    "get_dataset_collection",
]
