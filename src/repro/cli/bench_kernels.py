"""Kernel micro-benchmarks + baseline regression gate for ``repro bench kernels``.

Times each of the four hot clustering kernels (see
:mod:`repro.clustering.kernels`) in both implementations — ``reference``
(interpreter-bound loops) and ``vectorized`` (masked NumPy array
operations) — at three problem sizes, asserts that the two produce
bit-identical results, and records the wall-clocks and speedups.  The
record can be gated against the committed ``BENCH_kernels.json`` baseline,
mirroring the ``BENCH_parallel.json`` protocol of the grid bench:

* a **parity mismatch** is always an error (raised during the run, or a
  gate failure when a loaded record flags one) — the kernels' contract is
  bit-identity, so a divergence is a bug, never noise;
* the **vectorized wall-clock** is gated against the baseline with a
  configurable slowdown budget (``--max-slowdown``);
* the **speedup** (reference / vectorized) is gated against per-kernel
  floors stored in the baseline — a machine-independent ratio, so it stays
  meaningful on runners much faster or slower than the recording machine.

Inputs are generated deterministically per size (blobs data set, memoised
distance matrix, constraint closure from a 10% label sample), and every
timing is best-of-``rounds`` on freshly prepared inputs, so records are
comparable across invocations.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.clustering import kernels as kernel_module
from repro.clustering.distances import k_nearest_distances, pairwise_distances
from repro.clustering.fosc import FOSC
from repro.clustering.hierarchy import CondensedTree, mutual_reachability
from repro.clustering.kmeans import kmeans_plus_plus_init
from repro.clustering.mpckmeans import _EPS, MPCKMeans
from repro.constraints.closure import transitive_closure
from repro.constraints.constraint import MUST_LINK
from repro.constraints.generation import constraints_from_labels, sample_labeled_objects
from repro.datasets.synthetic import make_blobs
from repro.utils.specs import SpecError, check_spec_mapping

#: The four timed kernels, in pipeline order.
KERNEL_NAMES = ("optics", "single_linkage", "fosc", "mpck_assign")

#: Benchmark problem sizes (number of objects).  ``large`` is the size the
#: acceptance speedups are quoted at; ``small`` keeps CI smoke runs cheap.
KERNEL_BENCH_SIZES = {"small": 200, "medium": 500, "large": 1200}

#: Deterministic input-generation seeds (data set / labels / MPCK state).
KERNEL_BENCH_SEED = 20140324
_DATA_SEED = 11
_LABEL_SEED = 3
_MPCK_SEED = 7

#: MinPts / min-cluster-size used for the density kernels.
_MIN_PTS = 5

#: Key of the baseline section inside ``BENCH_kernels.json``.
BASELINE_SECTION = "bench_kernels"


class KernelBenchCase:
    """Prepared inputs + both implementations of one kernel at one size."""

    def __init__(
        self,
        kernel: str,
        reference: Callable[[], object],
        vectorized: Callable[[], object],
        equal: Callable[[object, object], bool],
    ) -> None:
        self.kernel = kernel
        self.reference = reference
        self.vectorized = vectorized
        self._equal = equal

    def assert_parity(self) -> None:
        """Run both implementations once and require bit-identical results."""
        if not self._equal(self.reference(), self.vectorized()):
            raise RuntimeError(
                f"kernel {self.kernel!r} diverged: vectorized and reference "
                "implementations produced different results (the contract is "
                "bit-identity, so this is a bug)"
            )


def make_cases(n_samples: int) -> dict[str, KernelBenchCase]:
    """Prepare deterministic inputs and timed callables for every kernel."""
    third = n_samples // 3
    dataset = make_blobs(
        [third, third, n_samples - 2 * third],
        4,
        center_spread=8.0,
        cluster_std=1.0,
        random_state=_DATA_SEED,
        name=f"bench-kernels-{n_samples}",
    )
    X, y = dataset.X, dataset.y
    distances = pairwise_distances(X)
    core = k_nearest_distances(distances, _MIN_PTS)
    mreach = mutual_reachability(distances, core)
    edges = kernel_module.minimum_spanning_tree_vectorized(mreach)
    merges = kernel_module.single_linkage_tree_vectorized(edges, n_samples)

    labeled = sample_labeled_objects(y, 0.1, random_state=_LABEL_SEED)
    closure = transitive_closure(constraints_from_labels(labeled), strict=False)
    i_idx, j_idx, kinds = closure.as_arrays()
    is_must = kinds == MUST_LINK

    def ordering_equal(a: object, b: object) -> bool:
        return np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def fosc_reference() -> tuple:
        tree = CondensedTree(merges, n_samples, _MIN_PTS)
        selection = FOSC().extract(tree, closure)
        return selection.selected_clusters, selection.labels, selection.objective

    def fosc_vectorized() -> tuple:
        data = kernel_module.condense_tree(merges, n_samples, _MIN_PTS)
        selected, labels, objective, _ = kernel_module.fosc_extract(
            data, i_idx, j_idx, is_must, 1e-3
        )
        return selected, labels, objective

    def fosc_equal(a: tuple, b: tuple) -> bool:
        return a[0] == b[0] and np.array_equal(a[1], b[1]) and a[2] == b[2]

    # MPCK assignment inputs: a mid-optimisation state (k-means++ centres,
    # perturbed metrics) so the sweep does non-trivial work.
    rng = np.random.default_rng(_MPCK_SEED)
    n_clusters = 3
    centers = kmeans_plus_plus_init(X, n_clusters, rng)
    weights = rng.lognormal(0.0, 0.3, size=(n_clusters, X.shape[1]))
    point_center = MPCKMeans._point_center_distances(X, centers, weights)
    labels0 = np.argmin(point_center, axis=1).astype(np.int64)
    log_det = np.array(
        [float(np.sum(np.log(np.maximum(weights[h], _EPS)))) for h in range(n_clusters)]
    )
    spans = X.max(axis=0) - X.min(axis=0)
    max_sq = np.array(
        [float(np.dot(spans * weights[h], spans)) for h in range(n_clusters)]
    )
    must_indptr, must_indices = kernel_module.build_neighbor_csr(
        closure.must_link_array(), n_samples
    )
    cannot_indptr, cannot_indices = kernel_module.build_neighbor_csr(
        closure.cannot_link_array(), n_samples
    )
    order = rng.permutation(n_samples)

    def mpck(mode: str) -> Callable[[], np.ndarray]:
        def run() -> np.ndarray:
            return kernel_module.mpck_assign(
                X, weights, labels0, point_center, log_det, max_sq,
                must_indptr, must_indices, cannot_indptr, cannot_indices,
                order, 1.0, kernels=mode,
            )
        return run

    def single_linkage(mode: str) -> Callable[[], np.ndarray]:
        def run() -> np.ndarray:
            tree_edges = kernel_module.minimum_spanning_tree(mreach, kernels=mode)
            return kernel_module.single_linkage_tree(tree_edges, n_samples, kernels=mode)
        return run

    return {
        "optics": KernelBenchCase(
            "optics",
            lambda: kernel_module.optics_ordering_reference(distances, core),
            lambda: kernel_module.optics_ordering_vectorized(distances, core),
            ordering_equal,
        ),
        "single_linkage": KernelBenchCase(
            "single_linkage",
            single_linkage("reference"),
            single_linkage("vectorized"),
            np.array_equal,
        ),
        "fosc": KernelBenchCase("fosc", fosc_reference, fosc_vectorized, fosc_equal),
        "mpck_assign": KernelBenchCase(
            "mpck_assign", mpck("reference"), mpck("vectorized"), np.array_equal
        ),
    }


def _best_of(fn: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench_kernels(
    sizes: tuple[str, ...] = tuple(KERNEL_BENCH_SIZES),
    *,
    rounds: int = 1,
    kernels: tuple[str, ...] = KERNEL_NAMES,
) -> dict:
    """Time every kernel at every requested size and assert parity.

    Returns a fresh record in the CLI JSON format.  Raises
    ``RuntimeError`` if any kernel's implementations diverge (the
    bit-identity contract — a violation is always a bug, never noise).
    """
    unknown = [name for name in sizes if name not in KERNEL_BENCH_SIZES]
    if unknown:
        raise ValueError(
            f"unknown size(s) {', '.join(unknown)}; expected {', '.join(KERNEL_BENCH_SIZES)}"
        )
    unknown = [name for name in kernels if name not in KERNEL_NAMES]
    if unknown:
        raise ValueError(
            f"unknown kernel(s) {', '.join(unknown)}; expected {', '.join(KERNEL_NAMES)}"
        )

    results: dict[str, dict[str, dict]] = {kernel: {} for kernel in kernels}
    for size_name in sizes:
        cases = make_cases(KERNEL_BENCH_SIZES[size_name])
        for kernel in kernels:
            case = cases[kernel]
            case.assert_parity()
            reference_s = _best_of(case.reference, rounds)
            vectorized_s = _best_of(case.vectorized, rounds)
            results[kernel][size_name] = {
                "reference_s": reference_s,
                "vectorized_s": vectorized_s,
                "speedup": reference_s / vectorized_s,
                "parity": True,
                "rounds": max(1, rounds),
            }
    return {
        "kind": "repro-bench-kernels",
        "seed": KERNEL_BENCH_SEED,
        "sizes": {name: KERNEL_BENCH_SIZES[name] for name in sizes},
        "machine": {"cpu_count": os.cpu_count(), "python": platform.python_version()},
        "results": results,
    }


def normalize_record(record: dict) -> dict[str, dict[str, dict]]:
    """Normalise a fresh record to ``{kernel: {size: {..timings..}}}``.

    Raises
    ------
    ValueError
        If the record is not a ``repro-bench-kernels`` JSON or is missing
        its ``results`` section (e.g. a truncated CI artifact).
    """
    if record.get("kind") != "repro-bench-kernels":
        raise ValueError(
            "unrecognised kernel benchmark record (expected repro-bench-kernels JSON)"
        )
    results = record.get("results")
    if not isinstance(results, dict):
        raise ValueError(
            "malformed kernel benchmark record: missing its 'results' section"
        )
    return results


def to_spec(record: dict) -> dict:
    """The kernel benchmark record as a JSON-ready mapping."""
    return dict(record)


def from_spec(spec: object) -> dict[str, dict[str, dict]]:
    """Validate and normalise a kernel benchmark record mapping.

    Spec-protocol counterpart of :func:`normalize_record`: raises
    :class:`repro.utils.specs.SpecError` instead of a bare ``ValueError``.
    """
    checked = check_spec_mapping(spec, "kernel bench record")
    try:
        return normalize_record(dict(checked))
    except ValueError as exc:
        raise SpecError("kernel bench record", [str(exc)]) from exc


def compare_records(
    fresh: dict[str, dict[str, dict]],
    baseline: dict,
    *,
    max_slowdown: float = 0.25,
    expected_sizes: tuple[str, ...] | None = None,
) -> list[str]:
    """Regression problems of a fresh kernel record against the baseline.

    Returns an empty list when, for every ``(kernel, size)`` present in
    the baseline: the fresh record covers it with parity intact, its
    vectorized wall-clock is at most ``max_slowdown`` slower than the
    baseline, and its speedup is at least the baseline's per-kernel
    ``speedup_floor`` (a machine-independent ratio gate).

    ``expected_sizes`` names the sizes the fresh record was meant to cover
    — baseline sizes outside it are not flagged as missing, so a
    deliberate ``--sizes small`` run can still be gated (mirroring the
    grid bench's ``expected_backends``).  ``None`` (the CI gate) requires
    every baselined size to be present.
    """
    section = baseline.get(BASELINE_SECTION)
    if not isinstance(section, dict):
        return [f"baseline is missing the {BASELINE_SECTION!r} section"]
    baseline_vectorized = section.get("vectorized_s", {})
    floors = section.get("speedup_floor", {})

    problems: list[str] = []
    for kernel in sorted(baseline_vectorized):
        fresh_kernel = fresh.get(kernel)
        if not fresh_kernel:
            problems.append(f"{kernel}: present in the baseline but missing from the fresh record")
            continue
        floor = floors.get(kernel)
        for size, base_s in sorted(baseline_vectorized[kernel].items()):
            if expected_sizes is not None and size not in expected_sizes:
                continue
            entry = fresh_kernel.get(size)
            if entry is None:
                problems.append(f"{kernel}/{size}: missing from the fresh record")
                continue
            vectorized_s = entry.get("vectorized_s")
            speedup = entry.get("speedup")
            if vectorized_s is None or speedup is None:
                problems.append(
                    f"{kernel}/{size}: malformed fresh entry (missing vectorized_s/speedup)"
                )
                continue
            if not entry.get("parity", False):
                problems.append(f"{kernel}/{size}: parity mismatch flagged in the fresh record")
            slowdown = vectorized_s / base_s - 1.0
            if slowdown > max_slowdown:
                problems.append(
                    f"{kernel}/{size}: vectorized {vectorized_s:.4f}s is "
                    f"{slowdown:+.0%} vs baseline {base_s:.4f}s (allowed {max_slowdown:+.0%})"
                )
            if floor is not None and speedup < floor:
                problems.append(
                    f"{kernel}/{size}: speedup {speedup:.2f}x is below the "
                    f"baseline floor {floor:.2f}x"
                )
    return problems


def load_json(path: str | Path) -> dict:
    """Load a kernel benchmark record or baseline from disk."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def format_kernel_table(
    fresh: dict[str, dict[str, dict]], baseline: dict | None = None
) -> str:
    """Fixed-width summary of a normalised record (optionally vs baseline)."""
    baseline_vectorized = {}
    if baseline is not None:
        baseline_vectorized = baseline.get(BASELINE_SECTION, {}).get("vectorized_s", {})
    lines = [
        f"{'kernel':<16} {'size':<8} {'reference':>11} {'vectorized':>11} "
        f"{'speedup':>8} {'vs baseline':>12}"
    ]
    for kernel in KERNEL_NAMES:
        if kernel not in fresh:
            continue
        for size in KERNEL_BENCH_SIZES:
            entry = fresh[kernel].get(size)
            if entry is None:
                continue
            base = baseline_vectorized.get(kernel, {}).get(size)
            nan = float("nan")
            reference_s = entry.get("reference_s", nan)
            vectorized_s = entry.get("vectorized_s", nan)
            speedup = entry.get("speedup", nan)
            delta = f"{vectorized_s / base - 1.0:+.0%}" if base else "-"
            lines.append(
                f"{kernel:<16} {size:<8} {reference_s:>10.4f}s "
                f"{vectorized_s:>10.4f}s {speedup:>7.2f}x {delta:>12}"
            )
    return "\n".join(lines)
