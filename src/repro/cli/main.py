"""Argument parsing and dispatch for the ``repro`` command-line interface."""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.cli import bench as bench_module
from repro.cli import bench_fleet as bench_fleet_module
from repro.cli import bench_kernels as bench_kernels_module
from repro.cli import bench_scale as bench_scale_module
from repro.cli import bench_online as bench_online_module
from repro.cli import bench_serve as bench_serve_module
from repro.cli import bench_text as bench_text_module
from repro.core.distance_backend import DISTANCE_BACKENDS
from repro.core.executor import BACKENDS, ExecutionSpec
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.fleet import fleet_status, format_fleet_status, run_worker
from repro.experiments.online import STREAM_ORDERS, StreamSpec
from repro.experiments.pipeline import (
    ConfigError,
    load_pipeline_spec,
    validate_pipeline_file,
)
from repro.experiments.reporting import format_table
from repro.utils.specs import SpecError


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser with all of its subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Config-driven experiment pipelines for the CVCP reproduction "
            "(Pourrajabi et al., EDBT 2014), backed by a resumable artifact store."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="execute a TOML/JSON pipeline config end-to-end",
        description=(
            "Run the experiment pipeline described by a config file. Completed "
            "cells are served from the artifact store, so re-running resumes "
            "instead of recomputing; the cache-hit count is reported after the run."
        ),
    )
    run_parser.add_argument("config", help="path to a .toml or .json pipeline config")
    _add_run_options(run_parser)
    run_parser.add_argument(
        "--force",
        action="store_true",
        help="ignore stored artifacts and recompute (fresh results overwrite in place)",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered report on stdout",
    )
    run_parser.add_argument(
        "--worker",
        action="store_true",
        help=(
            "join a work-stealing fleet: claim (trial x cell) units via lease files in "
            "the shared artifact store, then render reports entirely from cache "
            "(bit-identical to a single-process run; launch any number of these)"
        ),
    )
    run_parser.add_argument(
        "--worker-id",
        metavar="ID",
        help="stable worker identity for leases and the status view (default: host-pid-nonce)",
    )
    run_parser.add_argument(
        "--lease-ttl",
        type=float,
        metavar="SECONDS",
        help="override [fleet] lease_ttl_s: heartbeat-less age after which a lease is stealable",
    )
    run_parser.add_argument(
        "--poll-interval",
        type=float,
        metavar="SECONDS",
        help="override [fleet] poll_interval_s: sleep between no-progress passes",
    )

    status_parser = subparsers.add_parser(
        "status",
        help="show fleet progress for a pipeline config (units, leases, workers)",
        description=(
            "Point-in-time fleet view of a pipeline's shared artifact store: how many "
            "grid units are done, which leases are held or stale, and the liveness and "
            "steal counters of every registered worker."
        ),
    )
    status_parser.add_argument("config", help="path to a .toml or .json pipeline config")
    status_parser.add_argument(
        "--artifacts-root",
        metavar="DIR",
        help="override the artifact-store location from the config",
    )
    status_parser.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="emit the status record as JSON instead of the terminal view",
    )

    dashboard_parser = subparsers.add_parser(
        "dashboard",
        help="render the static-HTML quality dashboard from BENCH_*.json + run artifacts",
        description=(
            "Generate a self-contained HTML dashboard: bench trajectory across the "
            "committed BENCH_*.json baselines, per-grid completion and worker liveness "
            "from an artifact store, cache hit/miss/steal rates, and selection-accuracy "
            "drift from stored run summaries."
        ),
    )
    dashboard_parser.add_argument(
        "--out",
        metavar="PATH",
        default="dashboard.html",
        help="where to write the HTML (default: dashboard.html)",
    )
    dashboard_parser.add_argument(
        "--bench-dir",
        metavar="DIR",
        default=".",
        help="directory scanned for BENCH_*.json records (default: current directory)",
    )
    dashboard_parser.add_argument(
        "--artifacts-root",
        metavar="DIR",
        help="artifact store to report fleet/worker/run state from (optional)",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="re-render reports for a config from stored artifacts",
        description=(
            "Regenerate the report files of a pipeline. Work already persisted in "
            "the artifact store is reused, so this is cheap after a completed run."
        ),
    )
    report_parser.add_argument("config", help="path to a .toml or .json pipeline config")
    _add_run_options(report_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve pipelines and parameter selection over HTTP (clustering-as-a-service)",
        description=(
            "Start the stdlib HTTP layer over the artifact store: clients POST pipeline "
            "specs or {'select': ...} requests to /v1/jobs, poll per-cell progress, and "
            "fetch reports byte-identical to CLI runs of the same spec. Submissions "
            "identical to an active job join it instead of re-running, and re-submitted "
            "finished jobs are served from cached trials."
        ),
    )
    serve_parser.add_argument(
        "config",
        nargs="?",
        help="optional pipeline config supplying the [serve] table and artifacts root",
    )
    serve_parser.add_argument(
        "--host",
        help="bind address (default: the config's [serve] host, else 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        help="TCP port; 0 binds an ephemeral port (default: [serve] port, else 8601)",
    )
    serve_parser.add_argument(
        "--workers",
        dest="serve_workers",
        type=int,
        help="jobs running concurrently (default: [serve] workers, else 2)",
    )
    serve_parser.add_argument(
        "--max-pending",
        dest="serve_max_pending",
        type=int,
        help="active-job cap before submissions get HTTP 429 (default: 32)",
    )
    serve_parser.add_argument(
        "--artifacts-root",
        metavar="DIR",
        help="artifact store every job runs against (default: the config's root)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the CVCP grid per backend and compare against a baseline",
        description=(
            "Run the fixed small benchmark grid on each execution backend, or load a "
            "fresh record with --compare, and optionally gate it against the committed "
            "baseline (exit 1 on a selection mismatch or a slowdown beyond --max-slowdown)."
        ),
    )
    bench_parser.add_argument(
        "--backends",
        default=",".join(BACKENDS),
        help=f"comma-separated backends to run (default: {','.join(BACKENDS)})",
    )
    bench_parser.add_argument(
        "--n-jobs",
        type=int,
        default=2,
        help="workers for the parallel backends (default: 2)",
    )
    bench_parser.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="timing rounds per backend; best is kept (default: 1)",
    )
    bench_parser.add_argument(
        "--json",
        dest="json_out",
        metavar="PATH",
        help="write the fresh record to PATH",
    )
    bench_parser.add_argument(
        "--compare",
        metavar="FRESH",
        help="load a fresh record (CLI or pytest-benchmark JSON) instead of running the grid",
    )
    bench_parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline JSON to gate against (e.g. BENCH_parallel.json)",
    )
    bench_parser.add_argument(
        "--max-slowdown",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default: 0.25 = 25%%)",
    )

    bench_subparsers = bench_parser.add_subparsers(dest="bench_target")
    kernels_parser = bench_subparsers.add_parser(
        "kernels",
        help="micro-benchmark the vectorised clustering kernels vs their reference loops",
        description=(
            "Time each of the four hot clustering kernels (OPTICS reachability sweep, "
            "single-linkage MST + dendrogram, FOSC condensed-tree extraction, MPCK-Means "
            "assignment) in both implementations at three problem sizes, assert that the "
            "two are bit-identical, and optionally gate the record against the committed "
            "BENCH_kernels.json baseline (exit 1 on a parity mismatch, a slowdown beyond "
            "--max-slowdown, or a speedup below the baseline's per-kernel floor)."
        ),
    )
    # The parent ``bench`` parser shares several dests (--rounds, --json,
    # --compare, --baseline, --max-slowdown) with this subparser; defaults
    # are SUPPRESSed here so a flag given *before* the ``kernels`` token
    # (e.g. ``repro bench --rounds 3 kernels``) is not silently clobbered
    # by the subparser's defaults.  Effective defaults live in
    # ``_command_bench_kernels``.
    kernels_parser.add_argument(
        "--sizes",
        default=argparse.SUPPRESS,
        help=(
            "comma-separated problem sizes to run "
            f"(default: {','.join(bench_kernels_module.KERNEL_BENCH_SIZES)})"
        ),
    )
    kernels_parser.add_argument(
        "--rounds",
        type=int,
        default=argparse.SUPPRESS,
        help="timing rounds per kernel and implementation; best is kept (default: 1)",
    )
    kernels_parser.add_argument(
        "--json",
        dest="json_out",
        metavar="PATH",
        default=argparse.SUPPRESS,
        help="write the fresh record to PATH",
    )
    kernels_parser.add_argument(
        "--compare",
        metavar="FRESH",
        default=argparse.SUPPRESS,
        help="load a fresh kernel record instead of running the benchmarks",
    )
    kernels_parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=argparse.SUPPRESS,
        help="baseline JSON to gate against (e.g. BENCH_kernels.json)",
    )
    kernels_parser.add_argument(
        "--max-slowdown",
        type=float,
        default=argparse.SUPPRESS,
        help="allowed fractional vectorized-wall-clock slowdown vs baseline (default: 0.25)",
    )

    scale_parser = bench_subparsers.add_parser(
        "scale",
        help="benchmark the distance backends at large n (wall-clock + peak RSS)",
        description=(
            "Time one full density-clustering fit per (distance backend × problem size) "
            "cell, each in a fresh subprocess with a cold spill directory, recording "
            "wall-clock and peak RSS. Label bit-identity across backends and across the "
            "serial/thread/process executors is asserted before any timing is recorded. "
            "Optionally gate the record against the committed BENCH_scale.json baseline "
            "(exit 1 on a parity mismatch, a wall-clock slowdown beyond --max-slowdown, "
            "an RSS growth beyond --rss-slack, or a memmap cell above the memory budget)."
        ),
    )
    # This subparser deliberately uses its own dests (scale_*): the parent
    # ``bench`` parser's --backends/--json/... defaults would otherwise be
    # indistinguishable from user input on the shared namespace.
    scale_parser.add_argument(
        "--backends",
        dest="scale_backends",
        default=",".join(DISTANCE_BACKENDS),
        help=f"comma-separated distance backends to run (default: {','.join(DISTANCE_BACKENDS)})",
    )
    scale_parser.add_argument(
        "--sizes",
        dest="scale_sizes",
        default=None,
        help=(
            "comma-separated sizes to run for every backend "
            f"(choices: {','.join(bench_scale_module.SCALE_SIZES)}; default: the "
            "per-backend schedule — dense/blockwise up to n5000, memmap up to "
            "n10000, neighbors up to n100000)"
        ),
    )
    scale_parser.add_argument(
        "--rounds",
        dest="scale_rounds",
        type=int,
        default=1,
        help="timing rounds per cell; best wall-clock is kept (default: 1)",
    )
    scale_parser.add_argument(
        "--parity-only",
        action="store_true",
        help="assert backend and executor parity, skip the timed cells (CI smoke)",
    )
    scale_parser.add_argument(
        "--json",
        dest="scale_json",
        metavar="PATH",
        default=None,
        help="write the fresh record to PATH",
    )
    scale_parser.add_argument(
        "--compare",
        dest="scale_compare",
        metavar="FRESH",
        default=None,
        help="load a fresh scale record instead of running the benchmark",
    )
    scale_parser.add_argument(
        "--baseline",
        dest="scale_baseline",
        metavar="PATH",
        default=None,
        help="baseline JSON to gate against (e.g. BENCH_scale.json)",
    )
    scale_parser.add_argument(
        "--max-slowdown",
        dest="scale_max_slowdown",
        type=float,
        default=0.25,
        help="allowed fractional wall-clock slowdown vs baseline (default: 0.25)",
    )
    scale_parser.add_argument(
        "--rss-slack",
        dest="scale_rss_slack",
        type=float,
        default=0.35,
        help="allowed fractional peak-RSS growth vs baseline (default: 0.35)",
    )

    fleet_parser = bench_subparsers.add_parser(
        "fleet",
        help="benchmark work-stealing wall-clock vs worker count (1/2/4)",
        description=(
            "Drain a grid of fixed-cost synthetic units through the real lease/steal/store "
            "machinery at several worker counts (each worker a fresh subprocess sharing one "
            "store), recording wall-clock, speedup and store parity; optionally also run the "
            "quickstart pipeline single-process vs 2-worker and assert summary.json "
            "byte-identity. Gate the record against the committed BENCH_fleet.json baseline "
            "(exit 1 when a speedup drops below its floor or any parity bit is false)."
        ),
    )
    # Like ``scale``, this subparser uses its own dests (fleet_*) so the
    # parent ``bench`` parser's shared-flag defaults cannot clobber it.
    fleet_parser.add_argument(
        "--workers",
        dest="fleet_workers",
        default=",".join(str(count) for count in bench_fleet_module.FLEET_BENCH_WORKER_COUNTS),
        help=(
            "comma-separated worker counts to measure (default: "
            f"{','.join(str(count) for count in bench_fleet_module.FLEET_BENCH_WORKER_COUNTS)})"
        ),
    )
    fleet_parser.add_argument(
        "--units",
        dest="fleet_units",
        type=int,
        default=bench_fleet_module.N_UNITS,
        help=f"synthetic units in the scheduling grid (default: {bench_fleet_module.N_UNITS})",
    )
    fleet_parser.add_argument(
        "--unit-cost",
        dest="fleet_unit_cost",
        type=float,
        default=bench_fleet_module.UNIT_COST_S,
        metavar="SECONDS",
        help=f"fixed wall-clock cost per unit (default: {bench_fleet_module.UNIT_COST_S})",
    )
    fleet_parser.add_argument(
        "--no-quickstart",
        dest="fleet_no_quickstart",
        action="store_true",
        help="skip the real-grid quickstart parity section (scheduling grid only)",
    )
    fleet_parser.add_argument(
        "--json",
        dest="fleet_json",
        metavar="PATH",
        default=None,
        help="write the fresh record to PATH",
    )
    fleet_parser.add_argument(
        "--compare",
        dest="fleet_compare",
        metavar="FRESH",
        default=None,
        help="load a fresh fleet record instead of running the benchmark",
    )
    fleet_parser.add_argument(
        "--baseline",
        dest="fleet_baseline",
        metavar="PATH",
        default=None,
        help="baseline JSON to gate against (e.g. BENCH_fleet.json)",
    )
    fleet_parser.add_argument(
        "--max-slowdown",
        dest="fleet_max_slowdown",
        type=float,
        default=0.75,
        help="allowed fractional 1-worker wall-clock slowdown vs baseline (default: 0.75)",
    )

    serve_bench_parser = bench_subparsers.add_parser(
        "serve",
        help="load-benchmark the repro serve HTTP layer (rps, p99, dedup, cache, parity)",
        description=(
            "Spin an in-process server on an ephemeral port and measure the service "
            "contract: health-check throughput and latency percentiles, dedup of "
            "concurrent identical submissions, the cached-rerun hit rate, and report "
            "byte-parity with a batch run of the same spec. Gate the record against the "
            "committed BENCH_serve.json baseline (exit 1 when parity or dedup breaks, a "
            "floor is missed, or p99 regresses beyond --max-slowdown)."
        ),
    )
    # Like ``scale`` and ``fleet``, this subparser uses its own dests
    # (serve_*) so the parent ``bench`` parser's shared-flag defaults
    # cannot clobber it.
    serve_bench_parser.add_argument(
        "--clients",
        dest="serve_clients",
        type=int,
        default=bench_serve_module.N_CLIENTS,
        help=f"concurrent submitting clients (default: {bench_serve_module.N_CLIENTS})",
    )
    serve_bench_parser.add_argument(
        "--requests",
        dest="serve_requests",
        type=int,
        default=bench_serve_module.N_REQUESTS,
        help=(
            "health-check round-trips in the latency phase "
            f"(default: {bench_serve_module.N_REQUESTS})"
        ),
    )
    serve_bench_parser.add_argument(
        "--workers",
        dest="serve_bench_workers",
        type=int,
        default=2,
        help="server worker-pool size during the bench (default: 2)",
    )
    serve_bench_parser.add_argument(
        "--json",
        dest="serve_json",
        metavar="PATH",
        default=None,
        help="write the fresh record to PATH",
    )
    serve_bench_parser.add_argument(
        "--compare",
        dest="serve_compare",
        metavar="FRESH",
        default=None,
        help="load a fresh serve record instead of running the benchmark",
    )
    serve_bench_parser.add_argument(
        "--baseline",
        dest="serve_baseline",
        metavar="PATH",
        default=None,
        help="baseline JSON to gate against (e.g. BENCH_serve.json)",
    )
    serve_bench_parser.add_argument(
        "--max-slowdown",
        dest="serve_max_slowdown",
        type=float,
        default=1.0,
        help="allowed fractional p99 latency slowdown vs baseline (default: 1.0)",
    )

    online_bench_parser = bench_subparsers.add_parser(
        "online",
        help="benchmark incremental constraint-stream re-selection vs cold replays",
        description=(
            "Replay the quickstart constraint stream and, per delta, time the "
            "incremental re-selection (warm structure memo + carried-forward "
            "artifact store) against a from-scratch replay of the accumulated "
            "stream.  Both paths are asserted bit-identical before any timing "
            "counts.  With --baseline, gates the record against the committed "
            "BENCH_online.json floors (exit 1 on divergence or a broken floor)."
        ),
    )
    # Same dest-prefix discipline as the sibling sub-benches: all dests are
    # prefixed (online_*) so the parent ``bench`` parser's shared-flag
    # defaults cannot clobber them.
    online_bench_parser.add_argument(
        "--deltas",
        dest="online_deltas",
        type=int,
        default=bench_online_module.N_DELTAS,
        help=f"constraint-stream deltas to replay (default: {bench_online_module.N_DELTAS})",
    )
    online_bench_parser.add_argument(
        "--json",
        dest="online_json",
        metavar="PATH",
        default=None,
        help="write the fresh record to PATH",
    )
    online_bench_parser.add_argument(
        "--compare",
        dest="online_compare",
        metavar="FRESH",
        default=None,
        help="load a fresh online record instead of running the benchmark",
    )
    online_bench_parser.add_argument(
        "--baseline",
        dest="online_baseline",
        metavar="PATH",
        default=None,
        help="baseline JSON to gate against (e.g. BENCH_online.json)",
    )
    online_bench_parser.add_argument(
        "--max-slowdown",
        dest="online_max_slowdown",
        type=float,
        default=1.0,
        help=(
            "allowed fractional incremental wall-clock slowdown vs baseline "
            "(default: 1.0)"
        ),
    )

    text_bench_parser = bench_subparsers.add_parser(
        "text",
        help="benchmark the sparse text workload (CSR cosine, precomputed, ARI, memory)",
        description=(
            "Benchmark the metric stack on a planted-topic TF-IDF corpus: the CSR "
            "cosine kernel vs its densified run (wall-clock and tracemalloc peaks), "
            "the precomputed pass-through, and the planted-topic ARI of cosine "
            "FOSC-OPTICSDend.  Distance-tier, executor and cosine/precomputed "
            "parity are asserted bit-identical before any timing counts.  With "
            "--baseline, gates the record against the committed BENCH_text.json "
            "floors (exit 1 on a parity break, a broken floor, or a regression)."
        ),
    )
    # Same dest-prefix discipline as the sibling sub-benches: all dests are
    # prefixed (text_*) so the parent ``bench`` parser's shared-flag
    # defaults cannot clobber them.
    text_bench_parser.add_argument(
        "--rounds",
        dest="text_rounds",
        type=int,
        default=bench_text_module.ROUNDS,
        help=f"timing repetitions per kernel (default: {bench_text_module.ROUNDS})",
    )
    text_bench_parser.add_argument(
        "--json",
        dest="text_json",
        metavar="PATH",
        default=None,
        help="write the fresh record to PATH",
    )
    text_bench_parser.add_argument(
        "--compare",
        dest="text_compare",
        metavar="FRESH",
        default=None,
        help="load a fresh text record instead of running the benchmark",
    )
    text_bench_parser.add_argument(
        "--baseline",
        dest="text_baseline",
        metavar="PATH",
        default=None,
        help="baseline JSON to gate against (e.g. BENCH_text.json)",
    )
    text_bench_parser.add_argument(
        "--max-slowdown",
        dest="text_max_slowdown",
        type=float,
        default=1.0,
        help="allowed fractional wall-clock slowdown vs baseline (default: 1.0)",
    )

    datasets_parser = subparsers.add_parser("datasets", help="inspect the data-set registry")
    datasets_subparsers = datasets_parser.add_subparsers(dest="datasets_command", required=True)
    datasets_subparsers.add_parser("list", help="list registered data sets with their shapes")

    validate_parser = subparsers.add_parser(
        "validate-config",
        help="schema-check pipeline configs without running them",
        description="Exit 0 when every given config is valid; print each problem otherwise.",
    )
    validate_parser.add_argument("configs", nargs="+", help="config files to validate")

    return parser


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--artifacts-root",
        metavar="DIR",
        help="override the artifact-store location from the config",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        help="override the execution backend (results are bit-identical across backends)",
    )
    parser.add_argument("--n-jobs", type=int, help="override the worker count")
    parser.add_argument(
        "--distance-backend",
        choices=DISTANCE_BACKENDS,
        help=(
            "override the distance-matrix storage tier "
            "(results are bit-identical across the exact tiers; 'neighbors' "
            "is the approximate sparse tier)"
        ),
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        help=(
            "neighbour-graph radius for --distance-backend neighbors "
            "(default: REPRO_NEIGHBOR_EPSILON, else inf)"
        ),
    )
    parser.add_argument(
        "--k-neighbors",
        type=int,
        help=(
            "neighbour-graph out-degree for --distance-backend neighbors "
            "(default: REPRO_NEIGHBOR_K, else 32)"
        ),
    )
    parser.add_argument(
        "--metric",
        choices=("euclidean", "cosine"),
        help=(
            "override the distance metric every data set is evaluated under "
            '(non-Euclidean trials key their own artifacts; metric = "precomputed" '
            "needs the matrix itself — use a [dataset] path in the config)"
        ),
    )
    parser.add_argument(
        "--stream-deltas",
        type=int,
        metavar="N",
        help='number of constraint-stream deltas (kind = "online" only)',
    )
    parser.add_argument(
        "--stream-order",
        choices=STREAM_ORDERS,
        help='constraint arrival order for the replay (kind = "online" only)',
    )


def _command_run(args: argparse.Namespace, *, reports_only: bool = False) -> int:
    try:
        spec = load_pipeline_spec(args.config)
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read config {args.config}: {exc}", file=sys.stderr)
        return 2
    if args.artifacts_root:
        spec = spec.with_overrides(artifacts_root=Path(args.artifacts_root))
    stream_deltas = getattr(args, "stream_deltas", None)
    stream_order = getattr(args, "stream_order", None)
    if stream_deltas is not None or stream_order is not None:
        if spec.kind != "online":
            print(
                f'--stream-deltas/--stream-order only apply to kind = "online" '
                f"specs (kind is {spec.kind!r})",
                file=sys.stderr,
            )
            return 2
        try:
            # Round-trip through the spec validator so a CLI-supplied
            # delta count gets the same checks as a [stream] table.
            stream = StreamSpec.from_spec(
                spec.stream.with_overrides(
                    n_deltas=stream_deltas, order=stream_order
                ).to_spec()
            )
        except SpecError as exc:
            print(exc, file=sys.stderr)
            return 2
        spec = spec.with_overrides(stream=stream)
    refresh = bool(getattr(args, "force", False))
    store = ArtifactStore(spec.artifacts_root, refresh=refresh)
    quiet = bool(getattr(args, "quiet", False)) or reports_only

    if getattr(args, "worker", False):
        if refresh:
            # Fleet completion is "the artifact exists"; a refresh-mode
            # store would declare every unit permanently unfinished.
            print("--force cannot be combined with --worker", file=sys.stderr)
            return 2
        settings = spec.fleet.with_overrides(
            lease_ttl_s=getattr(args, "lease_ttl", None),
            poll_interval_s=getattr(args, "poll_interval", None),
        )
        report = run_worker(
            spec,
            store=store,
            settings=settings,
            worker_id=getattr(args, "worker_id", None),
            log=None if quiet else print,
        )
        result = report.result
    else:
        # Batch runs go through the same stable facade the serve layer
        # uses, so HTTP jobs and CLI runs are one code path (and their
        # reports byte-identical).
        from repro import api

        try:
            execution = ExecutionSpec(
                backend=args.backend,
                n_jobs=args.n_jobs,
                distance_backend=args.distance_backend,
                epsilon=args.epsilon,
                k_neighbors=args.k_neighbors,
                metric=args.metric,
            )
        except SpecError as exc:
            print(exc, file=sys.stderr)
            return 2
        try:
            result = api.run_pipeline(spec, store=store, execution=execution)
        except SpecError as exc:
            # e.g. --metric clashing with the spec's backend or data set
            print(exc, file=sys.stderr)
            return 2

    if not quiet:
        print(result.report_text)
    print(store.describe_stats())
    for path in result.report_paths:
        print(f"wrote {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeSettings, make_server

    settings = ServeSettings()
    artifacts_root = Path(".repro-artifacts")
    if args.config:
        try:
            spec = load_pipeline_spec(args.config)
        except ConfigError as exc:
            print(exc, file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"cannot read config {args.config}: {exc}", file=sys.stderr)
            return 2
        settings = spec.serve
        artifacts_root = Path(spec.artifacts_root)
    if args.artifacts_root:
        artifacts_root = Path(args.artifacts_root)
    try:
        settings = settings.with_overrides(
            host=args.host,
            port=args.port,
            workers=args.serve_workers,
            max_pending=args.serve_max_pending,
        )
    except SpecError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        server = make_server(artifacts_root, settings)
    except OSError as exc:
        print(f"cannot bind {settings.host}:{settings.port}: {exc}", file=sys.stderr)
        return 1
    print(f"serving on {server.url} (artifacts root: {artifacts_root})", flush=True)
    print(
        f"workers={settings.workers} max_pending={settings.max_pending}; Ctrl-C to stop",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.shutdown(wait=False)
        server.server_close()
    return 0


def _command_status(args: argparse.Namespace) -> int:
    try:
        spec = load_pipeline_spec(args.config)
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read config {args.config}: {exc}", file=sys.stderr)
        return 2
    if args.artifacts_root:
        spec = spec.with_overrides(artifacts_root=Path(args.artifacts_root))
    status = fleet_status(spec)
    if args.json_out:
        print(json.dumps(status.as_dict(), sort_keys=True, indent=2))
    else:
        print(format_fleet_status(status))
    return 0


def _command_dashboard(args: argparse.Namespace) -> int:
    from repro.experiments.dashboard import write_dashboard

    try:
        path = write_dashboard(
            args.out,
            bench_dir=args.bench_dir,
            artifacts_root=args.artifacts_root,
        )
    except OSError as exc:
        print(f"cannot write dashboard: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _command_bench_kernels(args: argparse.Namespace) -> int:
    # Shared-dest flags may come from the parent ``bench`` parser (given
    # before the ``kernels`` token), the subparser (after it), or neither
    # — in which case the getattr fallbacks below apply.
    sizes_spec = getattr(args, "sizes", ",".join(bench_kernels_module.KERNEL_BENCH_SIZES))
    rounds = getattr(args, "rounds", 1)
    json_out = getattr(args, "json_out", None)
    compare = getattr(args, "compare", None)
    baseline_path = getattr(args, "baseline", None)
    max_slowdown = getattr(args, "max_slowdown", 0.25)

    expected_sizes = None
    if compare:
        if json_out:
            print(
                "--json records a live benchmark run and cannot be combined with --compare "
                "(the fresh record already exists on disk)",
                file=sys.stderr,
            )
            return 2
        record = bench_kernels_module.load_json(compare)
    else:
        sizes = tuple(name.strip() for name in sizes_spec.split(",") if name.strip())
        # A deliberate subset run is gated only on the sizes it covers.
        expected_sizes = sizes
        try:
            record = bench_kernels_module.run_bench_kernels(sizes, rounds=rounds)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        if json_out:
            Path(json_out).write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {json_out}")

    try:
        fresh = bench_kernels_module.normalize_record(record)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    baseline = bench_kernels_module.load_json(baseline_path) if baseline_path else None
    print(bench_kernels_module.format_kernel_table(fresh, baseline))

    if baseline is not None:
        problems = bench_kernels_module.compare_records(
            fresh, baseline, max_slowdown=max_slowdown, expected_sizes=expected_sizes
        )
        if problems:
            print("kernel benchmark regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"kernel benchmark within baseline (max slowdown {max_slowdown:.0%})")
    return 0


def _command_bench_scale(args: argparse.Namespace) -> int:
    expected_cells = None
    if args.scale_compare:
        if args.scale_json:
            print(
                "--json records a live benchmark run and cannot be combined with --compare "
                "(the fresh record already exists on disk)",
                file=sys.stderr,
            )
            return 2
        record = bench_scale_module.load_json(args.scale_compare)
    else:
        backends = tuple(name.strip() for name in args.scale_backends.split(",") if name.strip())
        sizes = None
        if args.scale_sizes:
            sizes = tuple(name.strip() for name in args.scale_sizes.split(",") if name.strip())
        if args.parity_only:
            try:
                bench_scale_module.assert_distance_backend_parity()
                if "neighbors" in backends:
                    bench_scale_module.assert_neighbor_backend_parity()
                bench_scale_module.assert_executor_parity()
            except (RuntimeError, ValueError, OSError) as exc:
                # OSError covers an unwritable spill directory: one line on
                # stderr, not a traceback (the bench smokes grep for this).
                print(exc, file=sys.stderr)
                return 1
            print("distance-backend and executor parity ok (labels bit-identical)")
            return 0
        # A deliberate subset run is gated only on the cells it covers.
        if sizes is not None:
            expected_cells = {backend: sizes for backend in backends}
        else:
            expected_cells = {
                backend: bench_scale_module.DEFAULT_CELLS.get(backend, ()) for backend in backends
            }
        try:
            record = bench_scale_module.run_bench_scale(backends, sizes, rounds=args.scale_rounds)
        except (RuntimeError, ValueError, OSError) as exc:
            print(exc, file=sys.stderr)
            return 2 if isinstance(exc, ValueError) else 1
        if args.scale_json:
            Path(args.scale_json).write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.scale_json}")

    try:
        fresh = bench_scale_module.normalize_record(record)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    baseline = bench_scale_module.load_json(args.scale_baseline) if args.scale_baseline else None
    print(bench_scale_module.format_scale_table(fresh, baseline))

    if baseline is not None:
        problems = bench_scale_module.compare_records(
            fresh,
            baseline,
            max_slowdown=args.scale_max_slowdown,
            rss_slack=args.scale_rss_slack,
            expected_cells=expected_cells,
        )
        if problems:
            print("scale benchmark regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"scale benchmark within baseline (max slowdown {args.scale_max_slowdown:.0%}, "
            f"RSS slack {args.scale_rss_slack:.0%})"
        )
    return 0


def _command_bench_fleet(args: argparse.Namespace) -> int:
    expected_counts = None
    if args.fleet_compare:
        if args.fleet_json:
            print(
                "--json records a live benchmark run and cannot be combined with --compare "
                "(the fresh record already exists on disk)",
                file=sys.stderr,
            )
            return 2
        record = bench_fleet_module.load_json(args.fleet_compare)
    else:
        try:
            counts = tuple(
                int(token.strip()) for token in args.fleet_workers.split(",") if token.strip()
            )
        except ValueError:
            print(f"--workers must be comma-separated integers, got {args.fleet_workers!r}", file=sys.stderr)
            return 2
        # A deliberate subset run is gated only on the counts it covers.
        expected_counts = tuple(str(count) for count in counts)
        try:
            record = bench_fleet_module.run_bench_fleet(
                counts,
                n_units=args.fleet_units,
                unit_cost_s=args.fleet_unit_cost,
                include_quickstart=not args.fleet_no_quickstart,
            )
        except (RuntimeError, ValueError, OSError) as exc:
            print(exc, file=sys.stderr)
            return 2 if isinstance(exc, ValueError) else 1
        if args.fleet_json:
            Path(args.fleet_json).write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.fleet_json}")

    try:
        fresh = bench_fleet_module.normalize_record(record)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    baseline = bench_fleet_module.load_json(args.fleet_baseline) if args.fleet_baseline else None
    print(bench_fleet_module.format_fleet_table(fresh, baseline))

    if baseline is not None:
        problems = bench_fleet_module.compare_records(
            fresh,
            baseline,
            max_slowdown=args.fleet_max_slowdown,
            expected_counts=expected_counts,
        )
        if problems:
            print("fleet benchmark regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            "fleet benchmark within baseline (speedup floors met, parity bit-identical, "
            f"max slowdown {args.fleet_max_slowdown:.0%})"
        )
    return 0


def _command_bench_serve(args: argparse.Namespace) -> int:
    if args.serve_compare:
        if args.serve_json:
            print(
                "--json records a live benchmark run and cannot be combined with --compare "
                "(the fresh record already exists on disk)",
                file=sys.stderr,
            )
            return 2
        record = bench_serve_module.load_json(args.serve_compare)
    else:
        try:
            record = bench_serve_module.run_bench_serve(
                clients=args.serve_clients,
                requests=args.serve_requests,
                workers=args.serve_bench_workers,
            )
        except (RuntimeError, ValueError, OSError, TimeoutError) as exc:
            print(exc, file=sys.stderr)
            return 2 if isinstance(exc, ValueError) else 1
        if args.serve_json:
            Path(args.serve_json).write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.serve_json}")

    try:
        fresh = bench_serve_module.normalize_record(record)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    baseline = bench_serve_module.load_json(args.serve_baseline) if args.serve_baseline else None
    print(bench_serve_module.format_serve_table(fresh, baseline))

    if baseline is not None:
        problems = bench_serve_module.compare_records(
            fresh, baseline, max_slowdown=args.serve_max_slowdown
        )
        if problems:
            print("serve benchmark regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            "serve benchmark within baseline (parity byte-identical, duplicates absorbed, "
            f"floors met, max p99 slowdown {args.serve_max_slowdown:.0%})"
        )
    return 0


def _command_bench_online(args: argparse.Namespace) -> int:
    if args.online_compare:
        if args.online_json:
            print(
                "--json records a live benchmark run and cannot be combined with --compare "
                "(the fresh record already exists on disk)",
                file=sys.stderr,
            )
            return 2
        record = bench_online_module.load_json(args.online_compare)
    else:
        try:
            record = bench_online_module.run_bench_online(deltas=args.online_deltas)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.online_json:
            Path(args.online_json).write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.online_json}")

    try:
        fresh = bench_online_module.normalize_record(record)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    baseline = (
        bench_online_module.load_json(args.online_baseline) if args.online_baseline else None
    )
    print(bench_online_module.format_online_table(fresh, baseline))

    if baseline is not None:
        problems = bench_online_module.compare_records(
            fresh, baseline, max_slowdown=args.online_max_slowdown
        )
        if problems:
            print("online benchmark regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            "online benchmark within baseline (delta-equivalent, floors met, "
            f"max incremental slowdown {args.online_max_slowdown:.0%})"
        )
    return 0


def _command_bench_text(args: argparse.Namespace) -> int:
    if args.text_compare:
        if args.text_json:
            print(
                "--json records a live benchmark run and cannot be combined with --compare "
                "(the fresh record already exists on disk)",
                file=sys.stderr,
            )
            return 2
        record = bench_text_module.load_json(args.text_compare)
    else:
        try:
            record = bench_text_module.run_bench_text(rounds=args.text_rounds)
        except (RuntimeError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 2 if isinstance(exc, ValueError) else 1
        if args.text_json:
            Path(args.text_json).write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.text_json}")

    try:
        fresh = bench_text_module.normalize_record(record)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    baseline = bench_text_module.load_json(args.text_baseline) if args.text_baseline else None
    print(bench_text_module.format_text_table(fresh, baseline))

    if baseline is not None:
        problems = bench_text_module.compare_records(
            fresh, baseline, max_slowdown=args.text_max_slowdown
        )
        if problems:
            print("text benchmark regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            "text benchmark within baseline (parity bit-identical, floors met, "
            f"max slowdown {args.text_max_slowdown:.0%})"
        )
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if getattr(args, "bench_target", None) == "serve":
        return _command_bench_serve(args)
    if getattr(args, "bench_target", None) == "online":
        return _command_bench_online(args)
    if getattr(args, "bench_target", None) == "text":
        return _command_bench_text(args)
    if getattr(args, "bench_target", None) == "kernels":
        return _command_bench_kernels(args)
    if getattr(args, "bench_target", None) == "scale":
        return _command_bench_scale(args)
    if getattr(args, "bench_target", None) == "fleet":
        return _command_bench_fleet(args)
    expected_backends = None
    if args.compare:
        if args.json_out:
            print(
                "--json records a live grid run and cannot be combined with --compare "
                "(the fresh record already exists on disk)",
                file=sys.stderr,
            )
            return 2
        record = bench_module.load_json(args.compare)
    else:
        backends = tuple(name.strip() for name in args.backends.split(",") if name.strip())
        unknown = [name for name in backends if name not in BACKENDS]
        if unknown:
            print(
                f"unknown backend(s) {', '.join(unknown)}; expected {', '.join(BACKENDS)}",
                file=sys.stderr,
            )
            return 2
        # A deliberate subset run is gated only on the backends it covers.
        expected_backends = backends
        record = bench_module.run_bench(backends, n_jobs=args.n_jobs, rounds=args.rounds)
        if args.json_out:
            Path(args.json_out).write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {args.json_out}")

    fresh = bench_module.normalize_record(record)
    baseline = bench_module.load_json(args.baseline) if args.baseline else None
    print(bench_module.format_bench_table(fresh, baseline))

    if baseline is not None:
        problems = bench_module.compare_records(
            fresh,
            baseline,
            max_slowdown=args.max_slowdown,
            expected_backends=expected_backends,
        )
        if problems:
            print("benchmark regression detected:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"benchmark within baseline (max slowdown {args.max_slowdown:.0%})")
    return 0


def _command_datasets_list() -> int:
    rows = []
    for name in DATASET_NAMES:
        dataset = get_dataset(name, random_state=0)
        counts = np.unique(dataset.y, return_counts=True)[1]
        class_sizes = "/".join(str(int(count)) for count in counts)
        features = dataset.X.toarray() if dataset.is_sparse else dataset.X
        spread = f"{features.std(axis=0).min():.2f}..{features.std(axis=0).max():.2f}"
        note = "collection of 100 (paper)" if name == "ALOI" else "single"
        if dataset.is_sparse:
            note += " (sparse)"
        rows.append(
            [
                name,
                dataset.n_samples,
                dataset.n_features,
                dataset.n_classes,
                class_sizes,
                dataset.metric,
                spread,
                note,
            ]
        )
    headers = [
        "name", "n_samples", "n_features", "n_classes", "class_sizes", "metric",
        "feature_std", "kind",
    ]
    print(format_table(headers, rows, title="Registered data sets"))
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    status = 0
    for config in args.configs:
        problems = validate_pipeline_file(config)
        if problems:
            status = 2
            print(f"{config}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{config}: ok")
    return status


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "report":
            return _command_run(args, reports_only=True)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "status":
            return _command_status(args)
        if args.command == "dashboard":
            return _command_dashboard(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "datasets":
            return _command_datasets_list()
        if args.command == "validate-config":
            return _command_validate(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. piped into `head`); redirect the
        # remaining flushes into the void so shutdown stays silent.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
