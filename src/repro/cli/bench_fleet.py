"""Fleet orchestration benchmark + baseline gate for ``repro bench fleet``.

Measures how close the work-stealing layer (:mod:`repro.experiments.fleet`)
gets to the ideal 1/N wall-clock as the worker count grows, in a way that
is honest on any machine — including single-core CI runners:

* **Scheduling grid** — ``N_UNITS`` synthetic units of a fixed, known cost
  (a plain ``time.sleep``, which consumes no CPU) are drained through the
  *real* machinery: every worker is a fresh subprocess running
  :class:`~repro.experiments.fleet.LeaseManager` claims,
  :func:`~repro.experiments.fleet.work_steal` passes and content-addressed
  completion writes against a shared
  :class:`~repro.experiments.artifacts.ArtifactStore`.  Because the unit
  cost is wall-clock rather than CPU, N workers genuinely finish in
  ~1/N of the serial time on *one* core, so the measured speedup isolates
  exactly what this bench is about: claim/steal/heartbeat/poll overhead.
  Workers synchronise on a shared start barrier and the recorded wall is
  the longest *drain* phase — interpreter startup is a fixed per-process
  cost that amortizes to nothing on real grids, so including it would
  gate numpy's import time instead of the scheduler.
  The resulting store must be byte-identical across worker counts.
* **Quickstart parity** — the real quickstart pipeline is run once
  single-process and once with two ``repro run --worker`` processes
  sharing a store; the two ``summary.json`` files must be byte-identical
  (wall-clocks are recorded as context, not gated: real units are
  CPU-bound, so their scaling is machine-dependent).

``BENCH_fleet.json`` commits the recorded baseline; fresh records are
gated on the per-worker-count speedup floors (machine-independent), the
store-parity flags, the quickstart parity bit and a generous serial
wall-clock budget.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.artifacts import ArtifactStore, key_digest
from repro.experiments.fleet import LeaseManager, work_steal
from repro.utils.specs import SpecError, check_spec_mapping

#: Worker counts measured by default.
FLEET_BENCH_WORKER_COUNTS: tuple[int, ...] = (1, 2, 4)

#: Synthetic scheduling-grid shape: units × fixed per-unit wall cost.
N_UNITS = 32
UNIT_COST_S = 0.25

#: Lease TTL inside the bench workers (stealing is not the point here,
#: but a crashed bench run must not poison the next one's store).
_BENCH_TTL_S = 15.0

#: Minimum speedup the gate enforces per worker count (vs 1 worker).
DEFAULT_FLOORS: dict[str, float] = {"2": 1.6, "4": 2.4}

#: Artifact kind of the synthetic units.
UNIT_KIND = "fleetbench"

#: Key of the baseline section inside ``BENCH_fleet.json``.
BASELINE_SECTION = "bench_fleet"


def synthetic_unit_keys(n_units: int, unit_cost_s: float) -> list[dict]:
    """Content-addressed keys of the synthetic scheduling units."""
    cost_ms = int(round(unit_cost_s * 1000))
    return [
        {"bench": "fleet-steal", "unit": index, "n_units": int(n_units), "cost_ms": cost_ms}
        for index in range(n_units)
    ]


def store_digest(root: str | Path) -> str:
    """Content digest of every synthetic-unit artifact (the parity token)."""
    import hashlib

    kind_dir = Path(root) / UNIT_KIND
    digest = hashlib.sha256()
    for path in sorted(kind_dir.rglob("*.json")):
        digest.update(path.relative_to(kind_dir).as_posix().encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    return env


def _spawn_worker(root: Path, n_units: int, unit_cost_s: float, worker_id: str) -> subprocess.Popen:
    cost_ms = int(round(unit_cost_s * 1000))
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli.bench_fleet",
            "--worker",
            str(root),
            str(n_units),
            str(cost_ms),
            str(_BENCH_TTL_S),
            worker_id,
        ],
        env=_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _await_barrier(root: Path, n_workers: int, procs: list[subprocess.Popen]) -> None:
    """Wait until every worker posted its ready file, then release them."""
    deadline = time.monotonic() + 120.0
    while sum(1 for _ in root.glob("ready-*")) < n_workers:
        if any(proc.poll() not in (None, 0) for proc in procs):
            break  # a worker died before the barrier; _drain_workers reports it
        if time.monotonic() > deadline:
            for proc in procs:
                proc.kill()
            raise RuntimeError("fleet bench workers did not reach the start barrier within 120s")
        time.sleep(0.01)
    (root / "go").touch()


def _drain_workers(procs: list[subprocess.Popen], *, what: str) -> list[dict]:
    """Wait for every worker; returns their printed stats records."""
    stats: list[dict] = []
    failures: list[str] = []
    for proc in procs:
        try:
            stdout, stderr = proc.communicate(timeout=600)
        except subprocess.TimeoutExpired:
            proc.kill()
            stdout, stderr = proc.communicate()
            failures.append(f"{what}: worker timed out; stderr: {stderr.strip()[-400:]}")
            continue
        if proc.returncode != 0:
            failures.append(
                f"{what}: worker exited with code {proc.returncode}; "
                f"stderr: {stderr.strip()[-400:]}"
            )
            continue
        lines = stdout.strip().splitlines()
        try:
            stats.append(json.loads(lines[-1]))
        except (IndexError, json.JSONDecodeError):
            failures.append(f"{what}: worker produced no parseable stats line")
    if failures:
        raise RuntimeError("; ".join(failures))
    return stats


def run_scheduling_grid(
    worker_counts: tuple[int, ...] = FLEET_BENCH_WORKER_COUNTS,
    *,
    n_units: int = N_UNITS,
    unit_cost_s: float = UNIT_COST_S,
) -> tuple[dict[str, dict], dict[str, float]]:
    """Drain the synthetic grid at each worker count; returns (cells, speedup)."""
    for count in worker_counts:
        if not isinstance(count, int) or count < 1:
            raise ValueError(f"worker counts must be positive integers, got {count!r}")
    cells: dict[str, dict] = {}
    reference_digest: str | None = None
    for count in worker_counts:
        with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as root_name:
            root = Path(root_name)
            procs = [
                _spawn_worker(root, n_units, unit_cost_s, f"bench-w{count}-{index}")
                for index in range(count)
            ]
            _await_barrier(root, count, procs)
            worker_stats = _drain_workers(procs, what=f"{count}-worker grid")
            # All workers left the barrier within one 10ms poll of each
            # other, so the slowest drain IS the fleet's wall-clock.
            wall_s = max(record.get("drain_s", 0.0) for record in worker_stats)
            store = ArtifactStore(root)
            done = store.count(UNIT_KIND)
            if done != n_units:
                raise RuntimeError(
                    f"{count}-worker grid finished with {done}/{n_units} units completed"
                )
            digest = store_digest(root)
        if reference_digest is None:
            reference_digest = digest
        totals = {
            "claimed": sum(s.get("claimed", 0) for s in worker_stats),
            "stolen": sum(s.get("stolen", 0) for s in worker_stats),
            "already_done": sum(s.get("already_done", 0) for s in worker_stats),
            "waits": sum(s.get("waits", 0) for s in worker_stats),
        }
        cells[str(count)] = {
            "wall_s": wall_s,
            "parity": digest == reference_digest,
            "store_digest": digest,
            "stats": totals,
        }
    base_wall = cells[str(worker_counts[0])]["wall_s"]
    speedup = {
        name: base_wall / cell["wall_s"] for name, cell in cells.items() if name != str(worker_counts[0])
    }
    return cells, speedup


def discover_quickstart_config() -> Path | None:
    """The quickstart pipeline config, from the CWD or the source tree."""
    for candidate in (
        Path("examples/quickstart.toml"),
        Path(__file__).resolve().parent.parent.parent.parent / "examples" / "quickstart.toml",
    ):
        if candidate.is_file():
            return candidate
    return None


def run_quickstart_parity(config_path: Path, *, n_workers: int = 2) -> dict:
    """Real-grid parity: 2 shared-store workers vs one single-process run.

    Returns the measured walls and whether the two ``summary.json`` files
    are byte-identical.  Raises ``RuntimeError`` when any run fails.
    """

    def summary_bytes(root: Path) -> bytes:
        summaries = sorted(root.glob("reports/*/summary.json"))
        if len(summaries) != 1:
            raise RuntimeError(f"expected exactly one summary.json under {root}, found {len(summaries)}")
        return summaries[0].read_bytes()

    env = _subprocess_env()
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-qs-") as parent:
        single_root = Path(parent) / "single"
        fleet_root = Path(parent) / "fleet"
        base = [sys.executable, "-m", "repro", "run", str(config_path), "--quiet"]
        start = time.perf_counter()
        completed = subprocess.run(
            base + ["--artifacts-root", str(single_root)],
            env=env,
            capture_output=True,
            text=True,
        )
        single_wall_s = time.perf_counter() - start
        if completed.returncode != 0:
            raise RuntimeError(
                f"single-process quickstart run failed: {completed.stderr.strip()[-400:]}"
            )
        start = time.perf_counter()
        procs = [
            subprocess.Popen(
                base
                + [
                    "--artifacts-root",
                    str(fleet_root),
                    "--worker",
                    "--worker-id",
                    f"bench-qs-{index}",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for index in range(n_workers)
        ]
        failures = []
        for proc in procs:
            stdout, stderr = proc.communicate(timeout=600)
            if proc.returncode != 0:
                failures.append(f"worker exited {proc.returncode}: {stderr.strip()[-400:]}")
        fleet_wall_s = time.perf_counter() - start
        if failures:
            raise RuntimeError("quickstart fleet run failed: " + "; ".join(failures))
        parity = summary_bytes(single_root) == summary_bytes(fleet_root)
    return {
        "config": str(config_path),
        "n_workers": int(n_workers),
        "single_wall_s": single_wall_s,
        "fleet_wall_s": fleet_wall_s,
        "parity": parity,
    }


def run_bench_fleet(
    worker_counts: tuple[int, ...] = FLEET_BENCH_WORKER_COUNTS,
    *,
    n_units: int = N_UNITS,
    unit_cost_s: float = UNIT_COST_S,
    include_quickstart: bool = True,
    config_path: str | Path | None = None,
) -> dict:
    """Run the fleet benchmark and return a fresh record."""
    cells, speedup = run_scheduling_grid(worker_counts, n_units=n_units, unit_cost_s=unit_cost_s)
    record = {
        "kind": "repro-bench-fleet",
        "n_units": int(n_units),
        "unit_cost_s": float(unit_cost_s),
        "grid": (
            f"{n_units} fixed-cost ({unit_cost_s:g}s wall, zero CPU) units drained through "
            "the real LeaseManager/work_steal/ArtifactStore path, one fresh subprocess per "
            "worker sharing one store; speedup therefore measures orchestration overhead, "
            "not CPU parallelism, and holds on single-core runners"
        ),
        "machine": {"cpu_count": os.cpu_count(), "python": platform.python_version()},
        "workers": cells,
        "speedup": speedup,
        "floors": dict(DEFAULT_FLOORS),
    }
    if include_quickstart:
        config = Path(config_path) if config_path is not None else discover_quickstart_config()
        if config is None:
            record["quickstart"] = {"skipped": "no quickstart config found (run from the repo root)"}
        else:
            record["quickstart"] = run_quickstart_parity(config)
    return record


def normalize_record(record: dict) -> dict:
    """Validate the shape of a fresh record; returns it unchanged.

    Raises
    ------
    ValueError
        If the record is not a ``repro-bench-fleet`` JSON or is missing
        its ``workers``/``speedup`` sections (e.g. a truncated artifact).
    """
    if record.get("kind") != "repro-bench-fleet":
        raise ValueError("unrecognised fleet benchmark record (expected repro-bench-fleet JSON)")
    workers = record.get("workers")
    if not isinstance(workers, dict) or not all(isinstance(cell, dict) for cell in workers.values()):
        raise ValueError("malformed fleet benchmark record: missing its 'workers' section")
    if not isinstance(record.get("speedup"), dict):
        raise ValueError("malformed fleet benchmark record: missing its 'speedup' section")
    return record


def to_spec(record: dict) -> dict:
    """The fleet benchmark record as a JSON-ready mapping."""
    return dict(record)


def from_spec(spec: object) -> dict:
    """Validate a fleet benchmark record mapping.

    Spec-protocol counterpart of :func:`normalize_record`: raises
    :class:`repro.utils.specs.SpecError` instead of a bare ``ValueError``.
    """
    checked = check_spec_mapping(spec, "fleet bench record")
    try:
        return normalize_record(dict(checked))
    except ValueError as exc:
        raise SpecError("fleet bench record", [str(exc)]) from exc


def compare_records(
    fresh: dict,
    baseline: dict,
    *,
    max_slowdown: float = 0.75,
    expected_counts: tuple[str, ...] | None = None,
) -> list[str]:
    """Regression problems of a fresh fleet record against the baseline.

    Gates, in order of importance: the per-worker-count speedup floors
    committed in the baseline (machine-independent — the units are
    wall-clock sleeps), the store-parity flag of every measured worker
    count, the quickstart ``summary.json`` parity bit when the section was
    measured, and a generous budget on the serial (1-worker) wall-clock.
    """
    section = baseline.get(BASELINE_SECTION)
    if not isinstance(section, dict):
        return [f"baseline is missing the {BASELINE_SECTION!r} section"]
    floors = section.get("floors", DEFAULT_FLOORS)

    problems: list[str] = []
    for count, floor in sorted(floors.items()):
        if expected_counts is not None and count not in expected_counts:
            continue
        observed = fresh.get("speedup", {}).get(count)
        if observed is None:
            problems.append(f"{count} workers: missing from the fresh record's speedup section")
            continue
        if observed < floor:
            problems.append(
                f"{count} workers: speedup {observed:.2f}x is below the {floor:.2f}x floor "
                "(work-stealing overhead regression)"
            )
    for count, cell in sorted(fresh.get("workers", {}).items()):
        if not cell.get("parity", False):
            problems.append(f"{count} workers: store parity mismatch (bit-identity is the contract)")
    quickstart = fresh.get("quickstart")
    if isinstance(quickstart, dict) and "skipped" not in quickstart:
        if not quickstart.get("parity", False):
            problems.append(
                "quickstart: multi-worker summary.json differs from the single-process run"
            )
    base_wall = section.get("wall_s", {}).get("1")
    fresh_wall = fresh.get("workers", {}).get("1", {}).get("wall_s")
    if base_wall and fresh_wall:
        slowdown = fresh_wall / base_wall - 1.0
        if slowdown > max_slowdown:
            problems.append(
                f"1 worker: wall {fresh_wall:.2f}s is {slowdown:+.0%} vs baseline "
                f"{base_wall:.2f}s (allowed {max_slowdown:+.0%})"
            )
    return problems


def load_json(path: str | Path) -> dict:
    """Load a fleet benchmark record or baseline from disk."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def format_fleet_table(fresh: dict, baseline: dict | None = None) -> str:
    """Fixed-width summary of a fresh record (optionally vs the baseline)."""
    floors: dict = DEFAULT_FLOORS
    if baseline is not None:
        floors = baseline.get(BASELINE_SECTION, {}).get("floors", DEFAULT_FLOORS)
    lines = [f"{'workers':<8} {'wall':>9} {'speedup':>9} {'floor':>7} {'stolen':>7} {'waits':>6}"]
    for count, cell in sorted(fresh.get("workers", {}).items(), key=lambda item: int(item[0])):
        speedup = fresh.get("speedup", {}).get(count)
        stats = cell.get("stats", {})
        lines.append(
            f"{count:<8} {cell.get('wall_s', float('nan')):>8.2f}s "
            f"{(f'{speedup:.2f}x' if speedup is not None else '-'):>9} "
            f"{(f'{floors[count]:.2f}x' if count in floors else '-'):>7} "
            f"{stats.get('stolen', 0):>7} {stats.get('waits', 0):>6}"
        )
    quickstart = fresh.get("quickstart")
    if isinstance(quickstart, dict):
        if "skipped" in quickstart:
            lines.append(f"quickstart parity: skipped ({quickstart['skipped']})")
        else:
            lines.append(
                f"quickstart parity: {'ok' if quickstart.get('parity') else 'MISMATCH'} "
                f"(single {quickstart.get('single_wall_s', float('nan')):.1f}s, "
                f"{quickstart.get('n_workers', 0)} workers "
                f"{quickstart.get('fleet_wall_s', float('nan')):.1f}s)"
            )
    return "\n".join(lines)


def _worker_main(argv: list[str]) -> int:
    """Subprocess entry: drain the synthetic grid as one fleet worker."""
    root, n_units, cost_ms, ttl_s, worker_id = (
        Path(argv[0]),
        int(argv[1]),
        int(argv[2]),
        float(argv[3]),
        argv[4],
    )
    store = ArtifactStore(root)
    manager = LeaseManager(store.root, worker_id, ttl_s=ttl_s)
    manager.sweep_orphans()
    keys = synthetic_unit_keys(n_units, cost_ms / 1000.0)
    by_digest = {key_digest(UNIT_KIND, key): key for key in keys}

    def is_done(digest: str) -> bool:
        return store.path_for(UNIT_KIND, by_digest[digest]).is_file()

    def compute(digest: str) -> None:
        key = by_digest[digest]
        if store.get(UNIT_KIND, key) is not None:
            return
        time.sleep(key["cost_ms"] / 1000.0)
        store.put(UNIT_KIND, key, {"unit": key["unit"], "token": digest[:16]})

    # Start barrier: post ready, then spin until the parent says go, so
    # every worker's timed drain starts together and interpreter startup
    # stays out of the measurement.
    (root / f"ready-{worker_id}").touch()
    deadline = time.monotonic() + 120.0
    while not (root / "go").exists():
        if time.monotonic() > deadline:
            print("start barrier never released", file=sys.stderr)
            return 1
        time.sleep(0.01)

    start = time.perf_counter()
    stats = work_steal(
        list(by_digest),
        manager=manager,
        is_done=is_done,
        compute=compute,
        poll_interval_s=0.05,
    )
    drain_s = time.perf_counter() - start
    print(json.dumps({"drain_s": drain_s, **stats.as_dict()}))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    if len(sys.argv) >= 7 and sys.argv[1] == "--worker":
        raise SystemExit(_worker_main(sys.argv[2:]))
    raise SystemExit("usage: python -m repro.cli.bench_fleet --worker ROOT N_UNITS COST_MS TTL ID")
