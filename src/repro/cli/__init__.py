"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Subcommands (see ``python -m repro --help``):

* ``run`` — execute a declarative TOML/JSON pipeline config end-to-end
  through the resumable artifact store;
* ``report`` — re-render the reports of a pipeline from stored artifacts;
* ``bench`` — time the CVCP grid across execution backends and compare
  against a recorded baseline (the CI benchmark-regression gate);
* ``datasets list`` — the data-set registry;
* ``validate-config`` — schema-check pipeline configs without running them.
"""

from repro.cli.main import main

__all__ = ["main"]
