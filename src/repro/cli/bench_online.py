"""Cold-vs-incremental benchmark + regression gate for online replays.

``repro bench online`` measures what the incremental CVCP machinery
(:mod:`repro.experiments.online`) actually buys on the quickstart grid
(Iris, ``minpts_range = [3, 6, 9]``, 3 folds): it replays one constraint
stream and, for every delta, times

* **cold** — what refreshing the online report without the subsystem
  costs: every process-wide cache cleared, an *empty* artifact store,
  and the whole accumulated replay (all prefixes up to and including
  the new delta) re-run from scratch, structure phase included;
* **incremental** — only the new delta, the regime ``kind = "online"``
  actually runs in: the process-local structure memo is warm, earlier
  steps live in their ``"online"`` artifacts, so the delta is an
  extraction-phase CVCP pass over the carried-forward store.

Both paths run the very same store-backed step machinery (per-cell
persistence and compaction included), so the ratio isolates what the
cached structures and completed steps save — not a bookkeeping
difference between the two sides.

Before any timing counts, both paths are asserted bit-identical on the
new delta (selected value, per-cell fold scores, refit labels) — a
speedup from a wrong answer is not a speedup.  The gates cover the
steady state *after the first delta* (the first delta is where the
structures are built and persisted; every later delta is the
incremental regime the paper's practitioner lives in):

* ``speedup`` — summed steady-state cold wall-clock over summed
  steady-state incremental wall-clock, floored at 5x (the per-delta
  ratio keeps growing with the stream, so the floor is conservative);
* ``structure_hit_rate`` — store hits over structure requests, floored
  at 0.95 (an incremental delta should never rebuild a structure).

The fresh record is gated against the committed ``BENCH_online.json``
baseline by :func:`compare_records`: equivalence and the floors are hard
requirements (the floors travel inside the baseline), and the absolute
incremental wall-clock gets a generous ``--max-slowdown`` budget because
CI runners share cores.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.utils.specs import SpecError, check_spec_mapping

__all__ = [
    "AMOUNT",
    "BASELINE_SECTION",
    "DEFAULT_FLOORS",
    "N_DELTAS",
    "compare_records",
    "format_online_table",
    "from_spec",
    "load_json",
    "normalize_record",
    "run_bench_online",
    "to_spec",
]

#: Section of the committed baseline JSON holding the online record.
BASELINE_SECTION = "bench_online"

#: Constraint-stream deltas replayed by default.  Eight steps give the
#: steady-state aggregate enough late-stream deltas (where the cold
#: replay cost has grown linearly) to clear the speedup floor with
#: margin on a shared CI core.
N_DELTAS = 8

#: Amount of side information (the quickstart grid's single amount).
AMOUNT = 0.10

#: Machine-independent floors; committed inside the baseline record so a
#: baseline refresh can tighten them without touching code.  Both gates
#: cover the steady state after the first delta.
DEFAULT_FLOORS = {"speedup": 5.0, "structure_hit_rate": 0.95}


def _bench_config():
    """The quickstart CVCP grid (Iris, three MinPts values, three folds)."""
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        n_trials=1,
        n_folds=3,
        minpts_range=(3, 6, 9),
        datasets=("Iris",),
        seed=20140324,
    )


def run_bench_online(*, deltas: int = N_DELTAS, amount: float = AMOUNT) -> dict:
    """Run the cold-vs-incremental replay benchmark and return a record.

    The incremental path uses a throwaway artifact store that persists
    across the stream's deltas (that *is* the mechanism under test); the
    cold path gets a fresh, empty store per delta and a cleared
    process-wide memo, so neither side smuggles warm state past the
    clock and both pay the identical per-step persistence bill.
    """
    from repro.constraints.constraint import ConstraintSet
    from repro.core.cvcp import CVCP
    from repro.datasets.registry import get_dataset
    from repro.experiments.artifacts import ArtifactStore
    from repro.experiments.online import (
        StreamSpec,
        _compact_step_cells,
        ordered_stream,
        stream_prefix_sizes,
        stream_step_key,
    )
    from repro.experiments.runner import (
        algorithm_factory,
        make_side_information,
        parameter_values_for,
    )
    from repro.utils.cache import clear_distance_cache
    from repro.utils.rng import check_random_state, spawn_seeds

    if deltas < 2:
        raise ValueError(
            f"--deltas must be at least 2 (the gates cover the steady state "
            f"after the first delta), got {deltas}"
        )
    config = _bench_config()
    stream = StreamSpec(n_deltas=deltas, order="sorted")
    dataset = get_dataset("Iris", random_state=config.seed)

    # Mirror replay_constraint_stream's rng discipline exactly so the
    # bench exercises the very seeds a real `kind = "online"` run uses.
    rng = check_random_state(config.seed)
    side = make_side_information(dataset, "constraints", amount, random_state=rng)
    arrivals = ordered_stream(side.constraints, stream.order, rng)
    estimator = algorithm_factory("fosc", config, random_state=rng)
    values = parameter_values_for("fosc", dataset, config)
    step_seeds = spawn_seeds(rng, stream.n_deltas)
    counts = stream_prefix_sizes(len(arrivals), stream.n_deltas)

    def run_step(store: "ArtifactStore", index: int) -> "CVCP":
        """One store-backed replay step, exactly as ``kind = "online"`` runs it."""
        key = stream_step_key(config, dataset, amount, stream, index, step_seeds[index])
        search = CVCP(
            estimator,
            values,
            n_folds=config.n_folds,
            refit=True,
            random_state=step_seeds[index],
            execution=config.execution_spec(),
            artifact_store=store,
            artifact_scope=key,
        )
        search.fit(dataset.X, constraints=ConstraintSet(arrivals[: counts[index]]))
        _compact_step_cells(store, key, len(values), config.n_folds)
        return search

    def selection_of(search: "CVCP") -> tuple[int, list[list[float]], list[int]]:
        return (
            int(search.cv_results_.best_value),
            [
                [float(score) for score in evaluation.fold_scores]
                for evaluation in search.cv_results_.evaluations
            ],
            [int(label) for label in search.labels_],
        )

    delta_records: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-online-") as tmp:
        store = ArtifactStore(Path(tmp) / "store")
        clear_distance_cache()
        for index, count in enumerate(counts):
            # Incremental: only the new delta, over the warm memo + store
            # state the previous deltas left behind (the `kind = "online"`
            # steady state).
            before = store.stats_for("structure")
            tick = time.perf_counter()
            search = run_step(store, index)
            incremental_s = time.perf_counter() - tick
            after = store.stats_for("structure")
            incremental = selection_of(search)

            # Cold: replay the whole accumulated stream from scratch —
            # cleared memo, empty store, structure phase and every earlier
            # step included.  The last step doubles as the
            # delta-equivalence oracle.
            cold_store = ArtifactStore(Path(tmp) / f"cold-{index}")
            clear_distance_cache()
            tick = time.perf_counter()
            for cold_index in range(index + 1):
                cold_search = run_step(cold_store, cold_index)
            cold_s = time.perf_counter() - tick
            cold = selection_of(cold_search)

            # Guarantee the warm-memo steady state the next delta starts
            # from (the cold replay above cleared the process-local memo;
            # its own structure builds normally refill it, but the next
            # incremental timing must not depend on that side effect).
            for value in values:
                estimator.clone(**{estimator.tuned_parameter: value}).warm_structure(
                    dataset.X, store=None
                )

            delta_records.append(
                {
                    "step": index,
                    "queries": int(count),
                    "value": incremental[0],
                    "cold_s": cold_s,
                    "incremental_s": incremental_s,
                    "speedup": cold_s / incremental_s if incremental_s > 0 else 0.0,
                    "structure_hits": after.hits - before.hits,
                    "structure_misses": after.misses - before.misses,
                    "equivalent": incremental == cold,
                }
            )
    clear_distance_cache()

    steady = delta_records[1:]
    cold_total = sum(record["cold_s"] for record in steady)
    incremental_total = sum(record["incremental_s"] for record in steady)
    hits = sum(record["structure_hits"] for record in steady)
    requests = hits + sum(record["structure_misses"] for record in steady)
    return {
        "kind": "repro-bench-online",
        "machine": {"cpu_count": os.cpu_count(), "python": platform.python_version()},
        "settings": {
            "dataset": "Iris",
            "amount": float(amount),
            "n_deltas": int(deltas),
            "order": stream.order,
            "minpts_range": [int(value) for value in config.minpts_range],
            "n_folds": int(config.n_folds),
            "total_constraints": len(arrivals),
        },
        "deltas": delta_records,
        "aggregate": {
            "cold_s": cold_total,
            "incremental_s": incremental_total,
            "speedup": cold_total / incremental_total if incremental_total > 0 else 0.0,
            "structure_hit_rate": hits / requests if requests else 0.0,
            "equivalent": all(record["equivalent"] for record in delta_records),
        },
        "floors": dict(DEFAULT_FLOORS),
    }


def normalize_record(record: dict) -> dict:
    """Validate the shape of a fresh online record; returns it unchanged.

    Raises
    ------
    ValueError
        If the record is not a ``repro bench online --json`` product.
    """
    if record.get("kind") != "repro-bench-online":
        raise ValueError(
            "not an online benchmark record (expected kind 'repro-bench-online', "
            f"got {record.get('kind')!r})"
        )
    deltas = record.get("deltas")
    if not isinstance(deltas, list) or len(deltas) < 2:
        raise ValueError("online record needs a deltas list of at least 2 steps")
    for entry in deltas:
        if not isinstance(entry, dict) or not {
            "step",
            "cold_s",
            "incremental_s",
            "equivalent",
        } <= set(entry):
            raise ValueError(
                "every deltas entry needs step/cold_s/incremental_s/equivalent"
            )
    aggregate = record.get("aggregate")
    required = {"cold_s", "incremental_s", "speedup", "structure_hit_rate", "equivalent"}
    if not isinstance(aggregate, dict) or not required <= set(aggregate):
        raise ValueError(
            "online record is missing aggregate." + "/aggregate.".join(sorted(required))
        )
    return record


def to_spec(record: dict) -> dict:
    """The benchmark record as a JSON-ready mapping (records already are specs)."""
    return dict(record)


def from_spec(spec: object) -> dict:
    """Validate a mapping back into an online benchmark record."""
    checked = check_spec_mapping(spec, "online bench record")
    try:
        return normalize_record(dict(checked))
    except ValueError as exc:
        raise SpecError("online bench record", [str(exc)]) from exc


def compare_records(fresh: dict, baseline: dict, *, max_slowdown: float = 1.0) -> list[str]:
    """Regression problems of a fresh online record against the baseline.

    Gates, in order of importance: delta-equivalence with the cold runs
    (the incremental machinery's core contract), the steady-state
    speedup and structure-hit-rate floors committed in the baseline, and
    a generous incremental wall-clock budget vs the baseline.
    """
    section = baseline.get(BASELINE_SECTION)
    if not isinstance(section, dict):
        return [f"baseline is missing the {BASELINE_SECTION!r} section"]
    floors = section.get("floors", DEFAULT_FLOORS)

    problems: list[str] = []
    aggregate = fresh.get("aggregate", {})
    if not aggregate.get("equivalent", False):
        steps = [
            record.get("step") for record in fresh.get("deltas", []) if not record.get("equivalent")
        ]
        problems.append(
            f"incremental re-selection diverged from the cold run at deltas {steps} "
            "(delta-equivalence is the online contract)"
        )
    speedup_floor = floors.get("speedup")
    speedup = aggregate.get("speedup", 0.0)
    if speedup_floor is not None and speedup < speedup_floor:
        problems.append(
            f"steady-state speedup {speedup:.1f}x is below the {speedup_floor:.1f}x floor "
            "(incremental re-selection no longer beats the cold grid rerun)"
        )
    hit_floor = floors.get("structure_hit_rate")
    hit_rate = aggregate.get("structure_hit_rate", 0.0)
    if hit_floor is not None and hit_rate < hit_floor:
        problems.append(
            f"structure cache-hit rate {hit_rate:.2f} after the first delta is below the "
            f"{hit_floor:.2f} floor (incremental deltas are rebuilding tree structures)"
        )
    base_wall = section.get("aggregate", {}).get("incremental_s")
    fresh_wall = aggregate.get("incremental_s")
    if base_wall and fresh_wall:
        slowdown = fresh_wall / base_wall - 1.0
        if slowdown > max_slowdown:
            problems.append(
                f"incremental wall-clock {fresh_wall:.3f}s is {slowdown:+.0%} vs baseline "
                f"{base_wall:.3f}s (allowed {max_slowdown:+.0%})"
            )
    return problems


def load_json(path: str | Path) -> dict:
    """Load an online benchmark record or baseline from disk."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def format_online_table(fresh: dict, baseline: dict | None = None) -> str:
    """Fixed-width summary of a fresh record (optionally vs the baseline)."""
    floors: dict = DEFAULT_FLOORS
    if baseline is not None:
        floors = baseline.get(BASELINE_SECTION, {}).get("floors", DEFAULT_FLOORS)
    lines = [
        f"{'delta':<8} {'queries':>8} {'cold (s)':>10} {'incr (s)':>10} "
        f"{'speedup':>8} {'equal':>6}"
    ]
    for record in fresh.get("deltas", []):
        lines.append(
            f"{record.get('step', 0):<8} {record.get('queries', 0):>8} "
            f"{record.get('cold_s', 0.0):>10.4f} {record.get('incremental_s', 0.0):>10.4f} "
            f"{record.get('speedup', 0.0):>7.1f}x "
            f"{str(bool(record.get('equivalent', False))).lower():>6}"
        )
    aggregate = fresh.get("aggregate", {})
    lines += [
        "",
        f"{'metric':<26} {'value':>10} {'floor':>10}",
        f"{'steady-state speedup':<26} {aggregate.get('speedup', 0.0):>9.1f}x "
        f"{floors.get('speedup', 0.0):>9.1f}x",
        f"{'structure-hit rate':<26} {aggregate.get('structure_hit_rate', 0.0):>10.2f} "
        f"{floors.get('structure_hit_rate', 0.0):>10.2f}",
        f"{'delta-equivalent':<26} "
        f"{str(bool(aggregate.get('equivalent', False))).lower():>10} {'true':>10}",
    ]
    return "\n".join(lines)
