"""Large-``n`` scale benchmark + baseline gate for ``repro bench scale``.

Times the full density-clustering pipeline (pairwise distances → core
distances → mutual reachability → Prim MST → condensed tree → FOSC
extraction, i.e. one :class:`~repro.clustering.fosc.FOSCOpticsDend` fit)
under each distance backend (see :mod:`repro.core.distance_backend`) at
growing problem sizes, recording **wall-clock and peak RSS** per cell.
Each timed cell runs in a fresh subprocess so ``ru_maxrss`` — a per-process
high-water mark — is meaningful per cell, and each cell gets its own spill
directory so memmap timings are cold.

Parity is asserted **before** any timing is recorded:

* the three exact distance backends must produce bit-identical labels
  (checked in-process at a multi-panel size, and re-checked across every
  timed cell via label digests);
* the serial/thread/process executors must select identical parameters
  with identical per-fold scores and final labels under every exact
  distance backend (a small CVCP grid per combination);
* the approximate ``neighbors`` tier must reduce exactly to the dense
  labels in its exhaustive regime (``k = n``, ``epsilon = inf``), under
  both kernel modes and all three executors.

The record demonstrates the point of the tiers: the projected dense
working set at ``n = 10000`` (three float64 matrices: distances, mutual
reachability, and the full-matrix partition copy) exceeds a 2 GiB budget,
while the memmap tier completes the same fit with a measured peak RSS
under it — and the sparse ``neighbors`` tier breaks the O(n²) wall
entirely, completing a fit at ``n = 100000`` (dense projection: ~224 GiB)
under the same 2 GiB budget.  Neighbors cells additionally record
``ari_vs_exact`` — the ARI of the approximate labels against an exact-tier
fit of the same data — wherever the exact fit is still tractable
(``n <= 10000``); the gate enforces an ARI floor on those cells.
``BENCH_scale.json`` commits the recorded baseline; fresh records are
gated on parity, wall-clock slowdown, an RSS growth slack, the ARI floor,
and the absolute memory budget for memmap and neighbors cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.distance_backend import (
    DISTANCE_BACKENDS,
    EXACT_DISTANCE_BACKENDS,
    SPILL_DIR_ENV_VAR,
)
from repro.utils.specs import SpecError, check_spec_mapping

#: Benchmark problem sizes (number of objects).
SCALE_SIZES: dict[str, int] = {
    "n1200": 1200, "n5000": 5000, "n10000": 10000, "n100000": 100000,
}

#: Sizes each backend runs by default.  The dense/blockwise tiers stop at
#: ``n5000``; the memmap tier takes on ``n10000``, where the projected
#: dense working set blows the memory budget; only the sparse neighbors
#: tier reaches ``n100000``, where even the out-of-core exact tiers are
#: impractical (an 80 GB spill per matrix).
DEFAULT_CELLS: dict[str, tuple[str, ...]] = {
    "dense": ("n1200", "n5000"),
    "blockwise": ("n1200", "n5000"),
    "memmap": ("n1200", "n5000", "n10000"),
    "neighbors": ("n1200", "n5000", "n10000", "n100000"),
}

#: The memory budget the scale story is told against (2 GiB).
MEMORY_BUDGET_BYTES = 2 * 1024**3

#: Neighbour-graph out-degree of the benchmarked ``neighbors`` cells.
NEIGHBOR_BENCH_K = 32

#: Largest size where an exact-tier reference fit is still run to score the
#: neighbors labels (ARI); beyond it ``ari_vs_exact`` is recorded as null.
ARI_MAX_N = 10000

#: ARI-vs-exact floor the gate enforces on neighbors cells that have one.
ARI_FLOOR = 0.95

#: Deterministic input-generation seed.
SCALE_SEED = 20140324
_DATA_SEED = 13

#: MinPts of the benchmarked fit.
_MIN_PTS = 5

#: Size used for the in-process parity pass (two canonical panels).
PARITY_N = 600

#: Key of the baseline section inside ``BENCH_scale.json``.
BASELINE_SECTION = "bench_scale"


def scale_dataset(n_samples: int):
    """The deterministic blobs data set benchmarked at ``n_samples`` objects."""
    from repro.datasets.synthetic import make_blobs

    third = n_samples // 3
    return make_blobs(
        [third, third, n_samples - 2 * third],
        4,
        center_spread=8.0,
        cluster_std=1.0,
        random_state=_DATA_SEED,
        name=f"bench-scale-{n_samples}",
    )


def labels_digest(labels: np.ndarray) -> str:
    """Content digest of a label vector (the cross-cell parity token)."""
    payload = np.ascontiguousarray(np.asarray(labels, dtype=np.int64))
    return hashlib.sha256(payload.tobytes()).hexdigest()


def projected_dense_peak_bytes(n_samples: int) -> int:
    """Projected dense-tier working set: distances + mutual reachability + partition copy."""
    return 3 * 8 * n_samples * n_samples


def peak_rss_bytes() -> int:
    """This process's resident-set high-water mark in bytes.

    On Linux, ``getrusage`` ru_maxrss carries the pre-exec address space's
    high-water mark across fork+exec, so a cell subprocess launched from a
    heavyweight parent would report the *parent's* footprint.  ``VmHWM``
    in ``/proc/self/status`` belongs to the current mm (reset at exec) and
    measures only this process's own peak, which is what the bench wants.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def run_cell(backend: str, n_samples: int) -> dict:
    """One measured fit of the full density pipeline in the current process.

    Neighbors cells fit the sparse tier first and snapshot the RSS
    high-water mark *before* anything else runs, so the recorded peak
    belongs to the approximate fit alone; an exact-tier reference fit (for
    ``ari_vs_exact``) then follows where still tractable.
    """
    from repro.clustering.fosc import FOSCOpticsDend
    from repro.utils.cache import clear_distance_cache

    dataset = scale_dataset(n_samples)
    clear_distance_cache()
    kwargs = {}
    if backend == "neighbors":
        kwargs["k_neighbors"] = NEIGHBOR_BENCH_K
    start = time.perf_counter()
    model = FOSCOpticsDend(min_pts=_MIN_PTS, distance_backend=backend, **kwargs).fit(dataset.X)
    wall_s = time.perf_counter() - start
    entry = {
        "wall_s": wall_s,
        "peak_rss_bytes": peak_rss_bytes(),
        "labels_digest": labels_digest(model.labels_),
        "n_clusters": int(np.unique(model.labels_[model.labels_ >= 0]).size),
    }
    if backend == "neighbors":
        entry["ari_vs_exact"] = None
        if n_samples <= ARI_MAX_N:
            from repro.evaluation.external import adjusted_rand_index

            clear_distance_cache()
            exact = FOSCOpticsDend(min_pts=_MIN_PTS, distance_backend="blockwise").fit(dataset.X)
            entry["ari_vs_exact"] = float(adjusted_rand_index(exact.labels_, model.labels_))
    return entry


def check_spill_writable() -> Path:
    """Fail fast — with one readable line — when the spill dir is unusable.

    The memmap tier (and any cell subprocess) needs a writable spill
    directory; a bad ``REPRO_DISTANCE_SPILL_DIR`` should surface as a
    single-sentence ``RuntimeError`` at the top of the bench, not as an
    ``OSError`` traceback from deep inside a fit.
    """
    from repro.core.distance_backend import spill_directory

    try:
        spill = spill_directory()
        with tempfile.NamedTemporaryFile(dir=spill, prefix="probe-", suffix=".tmp"):
            pass
    except OSError as exc:
        raise RuntimeError(
            f"distance spill directory is not writable ({exc}); "
            f"set {SPILL_DIR_ENV_VAR} to a writable directory"
        ) from None
    return spill


def _run_cell_subprocess(backend: str, n_samples: int) -> dict:
    """Run one cell in a fresh interpreter (fresh RSS high-water, cold spill)."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    with tempfile.TemporaryDirectory(prefix="repro-scale-spill-") as spill:
        env[SPILL_DIR_ENV_VAR] = spill
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli.bench_scale", "--cell", backend, str(n_samples)],
            env=env,
            capture_output=True,
            text=True,
        )
    if completed.returncode != 0:
        reason = completed.stderr.strip().splitlines()[-1] if completed.stderr.strip() else "no stderr"
        raise RuntimeError(
            f"scale-bench cell ({backend}, n={n_samples}) failed with "
            f"exit code {completed.returncode}: {reason}"
        )
    try:
        return json.loads(completed.stdout.strip().splitlines()[-1])
    except (IndexError, json.JSONDecodeError):
        raise RuntimeError(
            f"scale-bench cell ({backend}, n={n_samples}) produced no parseable "
            f"measurement on stdout (stderr: {completed.stderr.strip()[-200:] or 'empty'})"
        ) from None


def assert_distance_backend_parity(n_samples: int = PARITY_N) -> str:
    """Assert the exact backends produce bit-identical labels; returns the digest."""
    from repro.clustering.fosc import FOSCOpticsDend
    from repro.utils.cache import clear_distance_cache

    check_spill_writable()
    dataset = scale_dataset(n_samples)
    digests: dict[str, str] = {}
    for backend in EXACT_DISTANCE_BACKENDS:
        clear_distance_cache()
        model = FOSCOpticsDend(min_pts=_MIN_PTS, distance_backend=backend).fit(dataset.X)
        digests[backend] = labels_digest(model.labels_)
    clear_distance_cache()
    if len(set(digests.values())) != 1:
        raise RuntimeError(
            "distance backends diverged (the contract is bit-identical labels, "
            f"so this is a bug): {digests}"
        )
    return digests["dense"]


def assert_neighbor_backend_parity(n_samples: int = PARITY_N) -> str:
    """Assert the neighbors tier reduces to dense labels in its exhaustive regime.

    The approximate-by-contract guarantee (see
    :mod:`repro.core.neighbor_graph`): at ``k_neighbors = n`` and
    ``epsilon = inf`` the sparse graphs hold every pairwise entry, so the
    fitted labels must be bit-identical to the dense tier — under both
    kernel modes and all three executors.  Returns the shared digest.
    """
    from repro.clustering.fosc import FOSCOpticsDend
    from repro.constraints.generation import sample_labeled_objects
    from repro.core.cvcp import CVCP
    from repro.core.executor import BACKENDS, ExecutionSpec
    from repro.utils.cache import clear_distance_cache

    dataset = scale_dataset(n_samples)
    digests: dict[str, str] = {}
    for kernels in ("vectorized", "reference"):
        clear_distance_cache()
        dense = FOSCOpticsDend(
            min_pts=_MIN_PTS, kernels=kernels, distance_backend="dense"
        ).fit(dataset.X)
        digests[f"dense/{kernels}"] = labels_digest(dense.labels_)
        clear_distance_cache()
        sparse = FOSCOpticsDend(
            min_pts=_MIN_PTS, kernels=kernels, distance_backend="neighbors",
            epsilon=float("inf"), k_neighbors=n_samples,
        ).fit(dataset.X)
        digests[f"neighbors/{kernels}"] = labels_digest(sparse.labels_)
    if len(set(digests.values())) != 1:
        raise RuntimeError(
            "neighbors tier diverged from dense in the exhaustive regime "
            f"(k=n, epsilon=inf must be entry-for-entry equal, so this is a bug): {digests}"
        )

    # A small CVCP grid per executor under the exhaustive neighbors tier
    # must reproduce the dense selections and labels bit-for-bit.
    grid_n = min(n_samples, 240)
    grid_data = scale_dataset(grid_n)
    labeled = sample_labeled_objects(grid_data.y, 0.1, random_state=3)
    reference: dict | None = None
    for distance_backend, executor in (
        [("dense", "serial")] + [("neighbors", executor) for executor in BACKENDS]
    ):
        clear_distance_cache()
        spec_kwargs = {"backend": executor, "n_jobs": 2, "distance_backend": distance_backend}
        if distance_backend == "neighbors":
            spec_kwargs.update(epsilon=float("inf"), k_neighbors=grid_n)
        search = CVCP(
            FOSCOpticsDend(min_pts=_MIN_PTS),
            parameter_values=[3, 6, 9],
            n_folds=3,
            random_state=SCALE_SEED,
            execution=ExecutionSpec(**spec_kwargs),
        )
        search.fit(grid_data.X, labeled_objects=labeled)
        observed = {
            "best": search.best_params_,
            "scores": [evaluation.fold_scores for evaluation in search.cv_results_.evaluations],
            "labels": labels_digest(search.labels_),
        }
        if reference is None:
            reference = observed
        elif observed != reference:
            raise RuntimeError(
                "exhaustive-neighbors/executor parity violated at "
                f"(executor={executor}, distance_backend={distance_backend}): "
                f"{observed} != {reference}"
            )
    clear_distance_cache()
    return digests["dense/vectorized"]


def assert_executor_parity(n_samples: int = 240) -> None:
    """Assert serial/thread/process executors agree under every exact backend."""
    from repro.clustering.fosc import FOSCOpticsDend
    from repro.constraints.generation import sample_labeled_objects
    from repro.core.cvcp import CVCP
    from repro.core.executor import BACKENDS, ExecutionSpec
    from repro.utils.cache import clear_distance_cache

    dataset = scale_dataset(n_samples)
    labeled = sample_labeled_objects(dataset.y, 0.1, random_state=3)
    reference: dict | None = None
    for distance_backend in EXACT_DISTANCE_BACKENDS:
        for executor in BACKENDS:
            clear_distance_cache()
            search = CVCP(
                FOSCOpticsDend(min_pts=_MIN_PTS),
                parameter_values=[3, 6, 9],
                n_folds=3,
                random_state=SCALE_SEED,
                execution=ExecutionSpec(
                    backend=executor, n_jobs=2, distance_backend=distance_backend
                ),
            )
            search.fit(dataset.X, labeled_objects=labeled)
            observed = {
                "best": search.best_params_,
                "scores": [evaluation.fold_scores for evaluation in search.cv_results_.evaluations],
                "labels": labels_digest(search.labels_),
            }
            if reference is None:
                reference = observed
            elif observed != reference:
                raise RuntimeError(
                    "executor/distance-backend parity violated at "
                    f"(executor={executor}, distance_backend={distance_backend}): "
                    f"{observed} != {reference}"
                )
    clear_distance_cache()


def run_bench_scale(
    backends: tuple[str, ...] = DISTANCE_BACKENDS,
    sizes: tuple[str, ...] | None = None,
    *,
    rounds: int = 1,
    skip_executor_parity: bool = False,
) -> dict:
    """Run the scale benchmark and return a fresh record.

    Parity (distance backends in-process, executors × backends via small
    CVCP grids, and per-size label digests across the timed cells) is
    asserted before the record is assembled — a fresh record therefore
    certifies bit-identity, not just speed.  ``sizes`` restricts every
    backend to the named sizes; ``None`` uses :data:`DEFAULT_CELLS`.
    """
    unknown = [name for name in backends if name not in DISTANCE_BACKENDS]
    if unknown:
        raise ValueError(f"unknown backend(s) {', '.join(unknown)}; expected {', '.join(DISTANCE_BACKENDS)}")
    if sizes is not None:
        unknown = [name for name in sizes if name not in SCALE_SIZES]
        if unknown:
            raise ValueError(f"unknown size(s) {', '.join(unknown)}; expected {', '.join(SCALE_SIZES)}")

    # Preflight the spill dir, then parity; timings are only recorded for
    # runs whose labels agree.
    check_spill_writable()
    assert_distance_backend_parity()
    if "neighbors" in backends:
        assert_neighbor_backend_parity()
    if not skip_executor_parity:
        assert_executor_parity()

    results: dict[str, dict[str, dict]] = {}
    digests: dict[str, dict[str, str]] = {}
    for backend in backends:
        cell_sizes = sizes if sizes is not None else DEFAULT_CELLS[backend]
        for size_name in cell_sizes:
            n_samples = SCALE_SIZES[size_name]
            best: dict | None = None
            for _ in range(max(1, rounds)):
                cell = _run_cell_subprocess(backend, n_samples)
                if best is None or cell["wall_s"] < best["wall_s"]:
                    best = cell
            best["rounds"] = max(1, rounds)
            best["parity"] = True
            results.setdefault(backend, {})[size_name] = best
            # Only the exact tiers carry the bit-identity contract; the
            # neighbors tier is approximate and its digests are excluded
            # from the cross-backend comparison (it is gated on ARI instead).
            if backend in EXACT_DISTANCE_BACKENDS:
                digests.setdefault(size_name, {})[backend] = best["labels_digest"]

    for size_name, per_backend in digests.items():
        if len(set(per_backend.values())) > 1:
            raise RuntimeError(
                f"distance backends diverged at {size_name} (bit-identity is the "
                f"contract, so this is a bug): {per_backend}"
            )

    return {
        "kind": "repro-bench-scale",
        "seed": SCALE_SEED,
        "sizes": dict(SCALE_SIZES),
        "budget_bytes": MEMORY_BUDGET_BYTES,
        "dense_projected_bytes": {name: projected_dense_peak_bytes(n) for name, n in SCALE_SIZES.items()},
        "machine": {"cpu_count": os.cpu_count(), "python": platform.python_version()},
        "results": results,
    }


def normalize_record(record: dict) -> dict[str, dict[str, dict]]:
    """Normalise a fresh record to ``{backend: {size: {..timings..}}}``.

    Raises
    ------
    ValueError
        If the record is not a ``repro-bench-scale`` JSON or is missing its
        ``results`` section (e.g. a truncated CI artifact).
    """
    if record.get("kind") != "repro-bench-scale":
        raise ValueError("unrecognised scale benchmark record (expected repro-bench-scale JSON)")
    results = record.get("results")
    if not isinstance(results, dict):
        raise ValueError("malformed scale benchmark record: missing its 'results' section")
    for backend, sizes in results.items():
        if not isinstance(sizes, dict) or not all(isinstance(e, dict) for e in sizes.values()):
            raise ValueError(
                f"malformed scale benchmark record: results[{backend!r}] is not a "
                "mapping of size -> cell (truncated artifact?)"
            )
    return results


def to_spec(record: dict) -> dict:
    """The scale benchmark record as a JSON-ready mapping."""
    return dict(record)


def from_spec(spec: object) -> dict[str, dict[str, dict]]:
    """Validate and normalise a scale benchmark record mapping.

    Spec-protocol counterpart of :func:`normalize_record`: raises
    :class:`repro.utils.specs.SpecError` instead of a bare ``ValueError``.
    """
    checked = check_spec_mapping(spec, "scale bench record")
    try:
        return normalize_record(dict(checked))
    except ValueError as exc:
        raise SpecError("scale bench record", [str(exc)]) from exc


def compare_records(
    fresh: dict[str, dict[str, dict]],
    baseline: dict,
    *,
    max_slowdown: float = 0.25,
    rss_slack: float = 0.35,
    ari_floor: float = ARI_FLOOR,
    expected_cells: dict[str, tuple[str, ...]] | None = None,
) -> list[str]:
    """Regression problems of a fresh scale record against the baseline.

    For every ``(backend, size)`` cell present in the baseline (and, when
    ``expected_cells`` names a deliberate subset run, covered by it) the
    fresh record must: exist with its parity flag intact, agree on the
    label digest across the *exact* backends per size, stay within
    ``max_slowdown`` of the baseline wall-clock and within ``rss_slack`` of
    the baseline peak RSS — and memmap and neighbors cells must
    additionally stay under the absolute ``budget_bytes`` recorded in the
    baseline (the 2 GiB scale story).  Neighbors cells are exempt from the
    digest-equality check (the tier is approximate by contract) and are
    instead gated on ``ari_vs_exact >= ari_floor`` wherever the baseline
    recorded an exact-reference ARI for that cell.
    """
    section = baseline.get(BASELINE_SECTION)
    if not isinstance(section, dict):
        return [f"baseline is missing the {BASELINE_SECTION!r} section"]
    baseline_wall = section.get("wall_s", {})
    baseline_rss = section.get("peak_rss_bytes", {})
    baseline_ari = section.get("ari_vs_exact", {})
    budget = section.get("budget_bytes", MEMORY_BUDGET_BYTES)

    problems: list[str] = []
    digests: dict[str, dict[str, str]] = {}
    for backend in sorted(baseline_wall):
        for size, base_wall in sorted(baseline_wall[backend].items()):
            if expected_cells is not None and size not in expected_cells.get(backend, ()):
                continue
            entry = fresh.get(backend, {}).get(size)
            if entry is None:
                problems.append(f"{backend}/{size}: missing from the fresh record")
                continue
            wall = entry.get("wall_s")
            rss = entry.get("peak_rss_bytes")
            if wall is None or rss is None:
                problems.append(f"{backend}/{size}: malformed fresh entry (missing wall_s/peak_rss_bytes)")
                continue
            if not entry.get("parity", False):
                problems.append(f"{backend}/{size}: parity mismatch flagged in the fresh record")
            if entry.get("labels_digest") and backend in EXACT_DISTANCE_BACKENDS:
                digests.setdefault(size, {})[backend] = entry["labels_digest"]
            slowdown = wall / base_wall - 1.0
            if slowdown > max_slowdown:
                problems.append(
                    f"{backend}/{size}: wall {wall:.2f}s is {slowdown:+.0%} vs "
                    f"baseline {base_wall:.2f}s (allowed {max_slowdown:+.0%})"
                )
            base_rss = baseline_rss.get(backend, {}).get(size)
            if base_rss:
                growth = rss / base_rss - 1.0
                if growth > rss_slack:
                    problems.append(
                        f"{backend}/{size}: peak RSS {rss / 2**20:.0f} MiB is "
                        f"{growth:+.0%} vs baseline {base_rss / 2**20:.0f} MiB "
                        f"(allowed {rss_slack:+.0%})"
                    )
            if backend in ("memmap", "neighbors") and rss > budget:
                problems.append(
                    f"{backend}/{size}: peak RSS {rss / 2**20:.0f} MiB exceeds the "
                    f"{budget / 2**20:.0f} MiB budget the {backend} tier must hold"
                )
            if backend == "neighbors" and baseline_ari.get(backend, {}).get(size) is not None:
                ari = entry.get("ari_vs_exact")
                if ari is None:
                    problems.append(
                        f"{backend}/{size}: fresh record is missing ari_vs_exact "
                        "(the baseline has an exact-reference ARI for this cell)"
                    )
                elif ari < ari_floor:
                    problems.append(
                        f"{backend}/{size}: ARI vs exact {ari:.3f} is below the "
                        f"{ari_floor:.2f} floor"
                    )
    for size, per_backend in digests.items():
        if len(set(per_backend.values())) > 1:
            problems.append(f"{size}: label digests differ across backends: {per_backend}")
    return problems


def load_json(path: str | Path) -> dict:
    """Load a scale benchmark record or baseline from disk."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def format_scale_table(
    fresh: dict[str, dict[str, dict]], baseline: dict | None = None
) -> str:
    """Fixed-width summary of a normalised record (optionally vs baseline)."""
    baseline_wall = {}
    if baseline is not None:
        baseline_wall = baseline.get(BASELINE_SECTION, {}).get("wall_s", {})
    lines = [
        f"{'backend':<11} {'size':<8} {'wall':>9} {'peak RSS':>10} "
        f"{'dense projected':>16} {'ari':>6} {'vs baseline':>12}"
    ]
    for backend in DISTANCE_BACKENDS:
        if backend not in fresh:
            continue
        for size, n_samples in SCALE_SIZES.items():
            entry = fresh[backend].get(size)
            if entry is None:
                continue
            base = baseline_wall.get(backend, {}).get(size)
            wall = entry.get("wall_s", float("nan"))
            rss = entry.get("peak_rss_bytes", 0)
            delta = f"{wall / base - 1.0:+.0%}" if base else "-"
            ari = entry.get("ari_vs_exact")
            ari_text = f"{ari:.3f}" if isinstance(ari, float) else "-"
            projected = projected_dense_peak_bytes(n_samples)
            lines.append(
                f"{backend:<11} {size:<8} {wall:>8.2f}s {rss / 2**20:>9.0f}M "
                f"{projected / 2**20:>15.0f}M {ari_text:>6} {delta:>12}"
            )
    return "\n".join(lines)


def _cell_main(argv: list[str]) -> int:
    """Subprocess entry: run one cell and print its JSON measurement.

    Failures (unwritable spill dir, OOM-killed allocations surfacing as
    ``MemoryError``/``OSError``) exit 1 with a one-line reason on stderr,
    which the parent folds into its own one-line ``RuntimeError``.
    """
    backend, n_samples = argv[0], int(argv[1])
    try:
        check_spill_writable()
        measurement = run_cell(backend, n_samples)
    except (RuntimeError, OSError, MemoryError) as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(measurement))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    if len(sys.argv) >= 4 and sys.argv[1] == "--cell":
        raise SystemExit(_cell_main(sys.argv[2:]))
    raise SystemExit("usage: python -m repro.cli.bench_scale --cell BACKEND N")
