"""Sparse text-workload benchmark + regression gate for the metric stack.

``repro bench text`` measures what the CSR cosine kernels and the
precomputed-metric path cost on a planted-topic TF-IDF corpus
(:func:`repro.datasets.text.make_text_blobs`):

* **parity first** — before any timing counts, the record asserts that
  the three exact distance tiers (dense, blockwise, memmap) are
  bit-identical on the sparse cosine matrix, that serial and process
  executors produce bit-identical CVCP trials on the sparse data set,
  and that ``metric = "precomputed"`` fed the cosine distance matrix
  reproduces the cosine labels exactly — a fast wrong answer is not a
  speedup;
* **quality** — FOSC-OPTICSDend under cosine must recover the planted
  topics (ARI floored in the committed baseline);
* **wall-clock** — the CSR cosine kernel, the same computation on the
  densified array, and the precomputed pass-through;
* **memory** — tracemalloc peaks of the CSR kernel vs the densified
  run; the ratio is floored so a silent densify inside the sparse path
  (the exact regression the CSR support exists to prevent) breaks CI.

The fresh record is gated against the committed ``BENCH_text.json``
baseline by :func:`compare_records`: parity, the ARI floor and the
memory ratio are hard requirements (the floors travel inside the
baseline), and the absolute wall-clocks get a generous
``--max-slowdown`` budget because CI runners share cores.
"""

from __future__ import annotations

import json
import os
import platform
import time
import tracemalloc
from pathlib import Path

from repro.utils.specs import SpecError, check_spec_mapping

__all__ = [
    "BASELINE_SECTION",
    "DEFAULT_FLOORS",
    "N_DOCUMENTS",
    "ROUNDS",
    "VOCABULARY_SIZE",
    "compare_records",
    "format_text_table",
    "from_spec",
    "load_json",
    "normalize_record",
    "run_bench_text",
    "to_spec",
]

#: Section of the committed baseline JSON holding the text record.
BASELINE_SECTION = "bench_text"

#: Corpus shape: enough documents for a stable ARI, a vocabulary wide
#: enough that the densified array dwarfs its CSR form (so the memory
#: gate has signal), small enough for seconds-scale CI runs.
N_DOCUMENTS = 256
N_TOPICS = 4
VOCABULARY_SIZE = 2048
WORDS_PER_DOCUMENT = 120

#: Timing repetitions per kernel (the minimum is recorded).
ROUNDS = 3

#: Machine-independent floors; committed inside the baseline record so a
#: baseline refresh can tighten them without touching code.
DEFAULT_FLOORS = {"ari": 0.75, "memory_ratio": 1.5}


def _bench_config():
    """A small CVCP grid over the text corpus (two MinPts values, 3 folds)."""
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        n_trials=1,
        n_folds=3,
        minpts_range=(3, 6),
        datasets=("Text",),
        seed=20140324,
    )


def _timed(function, *, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - tick)
    return best


def _peak_bytes(function) -> int:
    tracemalloc.start()
    try:
        function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def run_bench_text(*, rounds: int = ROUNDS) -> dict:
    """Run the sparse text-workload benchmark and return a record.

    Raises ``RuntimeError`` if any parity assertion fails — timings of a
    diverging kernel are meaningless and must never land in a baseline.
    """
    import numpy as np

    from repro.core.distance_backend import EXACT_DISTANCE_BACKENDS
    from repro.clustering.distances import pairwise_distances
    from repro.datasets.text import make_text_blobs
    from repro.evaluation import adjusted_rand_index
    from repro.experiments.runner import algorithm_factory, run_trials
    from repro.utils.cache import clear_distance_cache

    config = _bench_config()
    dataset = make_text_blobs(
        n_documents=N_DOCUMENTS,
        n_topics=N_TOPICS,
        vocabulary_size=VOCABULARY_SIZE,
        words_per_document=WORDS_PER_DOCUMENT,
        random_state=config.seed,
    )
    X_csr = dataset.X
    X_dense = np.ascontiguousarray(X_csr.toarray())

    # --- Parity, asserted before any timing -----------------------------
    per_tier = {}
    for tier in EXACT_DISTANCE_BACKENDS:
        clear_distance_cache()
        trial_config = config.with_execution(distance_backend=tier)
        per_tier[tier] = run_trials(
            dataset, "fosc", "labels", 0.10, 1,
            config=trial_config, random_state=trial_config.seed,
        )[0].to_dict()
    tiers_identical = all(
        per_tier[tier] == per_tier["dense"] for tier in EXACT_DISTANCE_BACKENDS
    )

    per_executor = {}
    for backend in ("serial", "process"):
        clear_distance_cache()
        trial_config = config.with_execution(backend=backend, n_jobs=2)
        per_executor[backend] = run_trials(
            dataset, "fosc", "labels", 0.10, 1,
            config=trial_config, random_state=trial_config.seed,
        )[0].to_dict()
    executors_identical = per_executor["serial"] == per_executor["process"]

    clear_distance_cache()
    distances = pairwise_distances(X_csr, metric="cosine")
    dense_distances = pairwise_distances(X_dense, metric="cosine")
    estimator = algorithm_factory("fosc", config, random_state=config.seed, metric="cosine")
    cosine_labels = estimator.clone(min_pts=5).fit(X_csr).labels_
    precomputed_estimator = algorithm_factory(
        "fosc", config, random_state=config.seed, metric="precomputed"
    )
    precomputed_labels = precomputed_estimator.clone(min_pts=5).fit(distances).labels_
    precomputed_identical = bool(np.array_equal(cosine_labels, precomputed_labels))
    sparse_dense_close = bool(np.allclose(distances, dense_distances, atol=1e-10))

    parity = {
        "tiers_identical": bool(tiers_identical),
        "executors_identical": bool(executors_identical),
        "precomputed_identical": precomputed_identical,
        "sparse_dense_close": sparse_dense_close,
    }
    if not all(parity.values()):
        failed = ", ".join(name for name, ok in parity.items() if not ok)
        raise RuntimeError(f"text benchmark parity failed before timing: {failed}")

    ari = float(adjusted_rand_index(dataset.y, cosine_labels))

    # --- Wall-clock -----------------------------------------------------
    timings = {
        "cosine_csr_s": _timed(
            lambda: pairwise_distances(X_csr, metric="cosine"), rounds=rounds
        ),
        "cosine_dense_s": _timed(
            lambda: pairwise_distances(X_dense, metric="cosine"), rounds=rounds
        ),
        "precomputed_s": _timed(
            lambda: pairwise_distances(distances, metric="precomputed"), rounds=rounds
        ),
    }

    # --- Memory ---------------------------------------------------------
    csr_peak = _peak_bytes(lambda: pairwise_distances(X_csr, metric="cosine"))
    dense_peak = _peak_bytes(
        lambda: pairwise_distances(np.asarray(X_csr.todense()), metric="cosine")
    )
    clear_distance_cache()

    return {
        "kind": "repro-bench-text",
        "machine": {"cpu_count": os.cpu_count(), "python": platform.python_version()},
        "settings": {
            "n_documents": int(N_DOCUMENTS),
            "n_topics": int(N_TOPICS),
            "vocabulary_size": int(VOCABULARY_SIZE),
            "words_per_document": int(WORDS_PER_DOCUMENT),
            "density": float(dataset.meta["density"]),
            "minpts_range": [int(value) for value in config.minpts_range],
            "n_folds": int(config.n_folds),
            "rounds": int(rounds),
        },
        "parity": parity,
        "quality": {"ari": ari},
        "timings": timings,
        "memory": {
            "csr_peak_bytes": csr_peak,
            "dense_peak_bytes": dense_peak,
            "ratio": dense_peak / csr_peak if csr_peak else 0.0,
        },
        "floors": dict(DEFAULT_FLOORS),
    }


def normalize_record(record: dict) -> dict:
    """Validate the shape of a fresh text record; returns it unchanged.

    Raises
    ------
    ValueError
        If the record is not a ``repro bench text --json`` product.
    """
    if record.get("kind") != "repro-bench-text":
        raise ValueError(
            "not a text benchmark record (expected kind 'repro-bench-text', "
            f"got {record.get('kind')!r})"
        )
    parity = record.get("parity")
    required_parity = {
        "tiers_identical", "executors_identical", "precomputed_identical",
        "sparse_dense_close",
    }
    if not isinstance(parity, dict) or not required_parity <= set(parity):
        raise ValueError(
            "text record is missing parity." + "/parity.".join(sorted(required_parity))
        )
    if not isinstance(record.get("quality"), dict) or "ari" not in record["quality"]:
        raise ValueError("text record is missing quality.ari")
    timings = record.get("timings")
    required_timings = {"cosine_csr_s", "cosine_dense_s", "precomputed_s"}
    if not isinstance(timings, dict) or not required_timings <= set(timings):
        raise ValueError(
            "text record is missing timings." + "/timings.".join(sorted(required_timings))
        )
    memory = record.get("memory")
    if not isinstance(memory, dict) or not {"csr_peak_bytes", "dense_peak_bytes", "ratio"} <= set(memory):
        raise ValueError("text record is missing memory.csr_peak_bytes/dense_peak_bytes/ratio")
    return record


def to_spec(record: dict) -> dict:
    """The benchmark record as a JSON-ready mapping (records already are specs)."""
    return dict(record)


def from_spec(spec: object) -> dict:
    """Validate a mapping back into a text benchmark record."""
    checked = check_spec_mapping(spec, "text bench record")
    try:
        return normalize_record(dict(checked))
    except ValueError as exc:
        raise SpecError("text bench record", [str(exc)]) from exc


def compare_records(fresh: dict, baseline: dict, *, max_slowdown: float = 1.0) -> list[str]:
    """Regression problems of a fresh text record against the baseline.

    Gates, in order of importance: the parity flags (bit-identity across
    tiers/executors and the cosine/precomputed agreement are the metric
    stack's core contract), the ARI and memory-ratio floors committed in
    the baseline, and a generous wall-clock budget vs the baseline.
    """
    section = baseline.get(BASELINE_SECTION)
    if not isinstance(section, dict):
        return [f"baseline is missing the {BASELINE_SECTION!r} section"]
    floors = section.get("floors", DEFAULT_FLOORS)

    problems: list[str] = []
    parity = fresh.get("parity", {})
    for flag, meaning in (
        ("tiers_identical", "the exact distance tiers diverged on sparse cosine"),
        ("executors_identical", "serial and process executors diverged on the text trial"),
        ("precomputed_identical", "metric='precomputed' no longer reproduces the cosine labels"),
        ("sparse_dense_close", "the CSR cosine kernel drifted from the dense kernel"),
    ):
        if not parity.get(flag, False):
            problems.append(f"parity.{flag} is false ({meaning})")

    ari_floor = floors.get("ari")
    ari = fresh.get("quality", {}).get("ari", 0.0)
    if ari_floor is not None and ari < ari_floor:
        problems.append(
            f"planted-topic ARI {ari:.3f} is below the {ari_floor:.2f} floor "
            "(cosine FOSC no longer recovers the topics)"
        )

    ratio_floor = floors.get("memory_ratio")
    ratio = fresh.get("memory", {}).get("ratio", 0.0)
    if ratio_floor is not None and ratio < ratio_floor:
        problems.append(
            f"dense/CSR peak-memory ratio {ratio:.2f} is below the {ratio_floor:.2f} floor "
            "(the sparse cosine path is densifying its input)"
        )

    for key in ("cosine_csr_s", "precomputed_s"):
        base_wall = section.get("timings", {}).get(key)
        fresh_wall = fresh.get("timings", {}).get(key)
        if base_wall and fresh_wall:
            slowdown = fresh_wall / base_wall - 1.0
            if slowdown > max_slowdown:
                problems.append(
                    f"{key} {fresh_wall:.4f}s is {slowdown:+.0%} vs baseline "
                    f"{base_wall:.4f}s (allowed {max_slowdown:+.0%})"
                )
    return problems


def load_json(path: str | Path) -> dict:
    """Load a text benchmark record or baseline from disk."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def format_text_table(fresh: dict, baseline: dict | None = None) -> str:
    """Fixed-width summary of a fresh record (optionally vs the baseline)."""
    floors: dict = DEFAULT_FLOORS
    if baseline is not None:
        floors = baseline.get(BASELINE_SECTION, {}).get("floors", DEFAULT_FLOORS)
    parity = fresh.get("parity", {})
    timings = fresh.get("timings", {})
    memory = fresh.get("memory", {})
    lines = [
        f"{'check':<28} {'value':>12}",
    ]
    for flag in (
        "tiers_identical", "executors_identical", "precomputed_identical",
        "sparse_dense_close",
    ):
        lines.append(f"{flag:<28} {str(bool(parity.get(flag, False))).lower():>12}")
    lines += [
        "",
        f"{'timing':<28} {'seconds':>12}",
        f"{'cosine (CSR)':<28} {timings.get('cosine_csr_s', 0.0):>12.4f}",
        f"{'cosine (densified)':<28} {timings.get('cosine_dense_s', 0.0):>12.4f}",
        f"{'precomputed pass-through':<28} {timings.get('precomputed_s', 0.0):>12.4f}",
        "",
        f"{'metric':<28} {'value':>12} {'floor':>8}",
        f"{'planted-topic ARI':<28} {fresh.get('quality', {}).get('ari', 0.0):>12.3f} "
        f"{floors.get('ari', 0.0):>8.2f}",
        f"{'dense/CSR peak-memory ratio':<28} {memory.get('ratio', 0.0):>12.2f} "
        f"{floors.get('memory_ratio', 0.0):>8.2f}",
    ]
    return "\n".join(lines)
