"""Load benchmark + regression gate for the ``repro serve`` HTTP layer.

``repro bench serve`` measures the service qualities the serve layer
promises, on a real server bound to an ephemeral loopback port:

* **latency** — single-client ``GET /v1/health`` round-trips through the
  full stdlib HTTP stack: requests/sec, p50 and p99 milliseconds;
* **dedup** — ``--clients`` concurrent clients (default 8) POST the same
  tiny pipeline spec; exactly one job may run, the rest must join it
  (``duplicates_absorbed`` is gated to ``clients - 1``);
* **cache** — a second wave of the same spec after the first completes
  must be served entirely from cached trials (``cache_hit_rate`` over
  the trial artifacts of the resubmitted job, floored at 0.99);
* **parity** — the bytes of ``GET /v1/jobs/{id}/report?format=json``
  must equal the ``summary.json`` a batch :func:`repro.api.run_pipeline`
  of the same spec writes into a different artifacts root.

The fresh record is gated against the committed ``BENCH_serve.json``
baseline by :func:`compare_records`: the behavioural bits (parity,
dedup) are hard requirements, the floors travel inside the baseline, and
p99 latency gets a generous ``--max-slowdown`` budget because CI runners
share cores.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.utils.specs import SpecError, check_spec_mapping

__all__ = [
    "BASELINE_SECTION",
    "DEFAULT_FLOORS",
    "N_CLIENTS",
    "N_REQUESTS",
    "bench_job_spec",
    "compare_records",
    "format_serve_table",
    "from_spec",
    "load_json",
    "normalize_record",
    "run_bench_serve",
    "to_spec",
]

#: Section of the committed baseline JSON holding the serve record.
BASELINE_SECTION = "bench_serve"

#: Concurrent submitting clients in the dedup wave (the acceptance bar).
N_CLIENTS = 8

#: Single-client health-check round-trips in the latency phase.
N_REQUESTS = 200

#: Machine-independent floors; committed inside the baseline record so a
#: baseline refresh can tighten them without touching code.
DEFAULT_FLOORS = {"cache_hit_rate": 0.99, "requests_per_s": 25.0}


def bench_job_spec() -> dict:
    """The tiny pipeline spec every bench client submits (seconds to run)."""
    return {
        "experiment": {
            "name": "serve-bench",
            "kind": "comparison",
            "algorithm": "fosc",
            "scenario": "labels",
            "amounts": [0.2],
            "datasets": ["Iris"],
            "seed": 20140324,
        },
        "parameters": {"n_trials": 2, "n_folds": 3, "minpts_range": [3, 6]},
        "report": {"formats": ["json"]},
    }


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _measure_latency(client, n_requests: int) -> dict:
    """Single-client GET /v1/health round-trip statistics."""
    samples: list[float] = []
    start = time.perf_counter()
    for _ in range(n_requests):
        tick = time.perf_counter()
        client.health()
        samples.append((time.perf_counter() - tick) * 1e3)
    wall_s = time.perf_counter() - start
    return {
        "requests": int(n_requests),
        "wall_s": wall_s,
        "requests_per_s": n_requests / wall_s if wall_s > 0 else 0.0,
        "p50_ms": statistics.median(samples),
        "p99_ms": _percentile(samples, 0.99),
    }


def _submit_wave(client_factory, payload: dict, n_clients: int) -> tuple[list[dict], float]:
    """POST ``payload`` from ``n_clients`` threads at once; returns the views."""
    barrier = threading.Barrier(n_clients)
    views: list[dict | None] = [None] * n_clients
    errors: list[BaseException] = []

    def post(slot: int) -> None:
        client = client_factory()
        barrier.wait()
        try:
            views[slot] = client.submit(payload)
        except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
            errors.append(exc)

    threads = [threading.Thread(target=post, args=(slot,)) for slot in range(n_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"serve bench wave failed: {errors[0]}") from errors[0]
    return [view for view in views if view is not None], wall_s


def run_bench_serve(
    *,
    clients: int = N_CLIENTS,
    requests: int = N_REQUESTS,
    workers: int = 2,
) -> dict:
    """Run the serve load benchmark and return a fresh record.

    Everything happens against throwaway temp directories: an in-process
    server (ephemeral port) with its own artifacts root, plus a second
    root for the batch-run parity check.
    """
    from repro import api
    from repro.serve import ServeClient, ServeSettings, make_server

    if clients < 2:
        raise ValueError(f"--clients must be at least 2 to measure dedup, got {clients}")
    payload = bench_job_spec()
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        serve_root = Path(tmp) / "serve-store"
        parity_root = Path(tmp) / "batch-store"
        settings = ServeSettings(port=0, workers=workers, max_pending=max(32, clients + 1))
        server = make_server(serve_root, settings)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            make_client = lambda: ServeClient(server.url, timeout=60.0)  # noqa: E731
            client = make_client()

            # Warm the server process with a throwaway job (different seed,
            # so a disjoint digest and disjoint cached trials): the first
            # submission pays dataset-registry and lazy-import costs that
            # would otherwise let a straggling dedup-wave client validate
            # slower than the shared job runs.
            warmup = dict(payload)
            warmup["experiment"] = dict(payload["experiment"], name="serve-bench-warmup", seed=1)
            warm_view = client.submit(warmup)
            client.wait(warm_view["id"], timeout=600.0)

            latency = _measure_latency(client, requests)

            # Dedup wave: all clients POST the same spec at once.  Most
            # join the one active job; a straggler whose validation
            # outlives the (tiny) job becomes a second job served from
            # cache.  Either way the contract is: the spec's trials are
            # computed exactly once, and every client reads the same bytes.
            tick = time.perf_counter()
            views, submit_wave_s = _submit_wave(make_client, payload, clients)
            job_ids = sorted({view["id"] for view in views})
            duplicates = sum(1 for view in views if view["deduplicated"])
            wave_trials_computed = 0
            for job_id in job_ids:
                done = client.wait(job_id, timeout=600.0)
                if done["state"] != "done":
                    raise RuntimeError(f"serve bench job failed: {done.get('error')}")
                wave_trials_computed += done["progress"]["trials_computed"]
            first_run_s = time.perf_counter() - tick
            expected_trials = payload["parameters"]["n_trials"]

            # Batch parity: the same spec through the api facade, fresh
            # root — every wave job must serve those exact bytes.
            batch = api.run_pipeline(payload, artifacts_root=parity_root)
            batch_summary = next(
                (path for path in batch.report_paths if path.suffix == ".json"), None
            )
            batch_bytes = batch_summary.read_bytes() if batch_summary is not None else None
            parity = batch_bytes is not None and all(
                client.report_bytes(job_id, "json") == batch_bytes for job_id in job_ids
            )

            # Cache wave: the job is done (inactive), so a resubmission is a
            # *new* job — one that must find every trial already stored.
            tick = time.perf_counter()
            rerun = client.submit(payload)
            rerun_done = client.wait(rerun["id"], timeout=600.0)
            second_wave_s = time.perf_counter() - tick
            progress = rerun_done["progress"]
            trial_requests = progress["trials_cached"] + progress["trials_computed"]
            cache_hit_rate = (
                progress["trials_cached"] / trial_requests if trial_requests else 0.0
            )
        finally:
            server.shutdown()
            server.server_close()
    return {
        "kind": "repro-bench-serve",
        "machine": {"cpu_count": os.cpu_count(), "python": platform.python_version()},
        "settings": {"clients": int(clients), "workers": int(workers)},
        "latency": latency,
        "jobs": {
            "clients": int(clients),
            "distinct_jobs": len(job_ids),
            "duplicates_absorbed": int(duplicates),
            "wave_trials_computed": int(wave_trials_computed),
            "expected_trials": int(expected_trials),
            "submit_wave_s": submit_wave_s,
            "first_run_s": first_run_s,
            "cached_rerun_s": second_wave_s,
            "trials_cached": int(progress["trials_cached"]),
            "trials_computed": int(progress["trials_computed"]),
            "cache_hit_rate": cache_hit_rate,
            "parity": bool(parity),
        },
        "floors": dict(DEFAULT_FLOORS),
    }


def normalize_record(record: dict) -> dict:
    """Validate the shape of a fresh serve record; returns it unchanged.

    Raises
    ------
    ValueError
        If the record is not a ``repro bench serve --json`` product.
    """
    if record.get("kind") != "repro-bench-serve":
        raise ValueError(
            "not a serve benchmark record (expected kind 'repro-bench-serve', "
            f"got {record.get('kind')!r})"
        )
    latency = record.get("latency")
    if not isinstance(latency, dict) or not {"requests_per_s", "p50_ms", "p99_ms"} <= set(
        latency
    ):
        raise ValueError("serve record is missing latency.requests_per_s/p50_ms/p99_ms")
    jobs = record.get("jobs")
    required = {
        "duplicates_absorbed",
        "wave_trials_computed",
        "expected_trials",
        "cache_hit_rate",
        "parity",
    }
    if not isinstance(jobs, dict) or not required <= set(jobs):
        raise ValueError(
            "serve record is missing jobs." + "/jobs.".join(sorted(required))
        )
    return record


def to_spec(record: dict) -> dict:
    """The benchmark record as a JSON-ready mapping (records already are specs)."""
    return dict(record)


def from_spec(spec: object) -> dict:
    """Validate a mapping back into a serve benchmark record."""
    checked = check_spec_mapping(spec, "serve bench record")
    try:
        return normalize_record(dict(checked))
    except ValueError as exc:
        raise SpecError("serve bench record", [str(exc)]) from exc


def compare_records(fresh: dict, baseline: dict, *, max_slowdown: float = 1.0) -> list[str]:
    """Regression problems of a fresh serve record against the baseline.

    Gates, in order of importance: report byte-parity with the batch run
    (the service's core contract), dedup of concurrent identical
    submissions, the cache-hit-rate and requests/sec floors committed in
    the baseline, and a generous p99 latency budget vs the baseline.
    """
    section = baseline.get(BASELINE_SECTION)
    if not isinstance(section, dict):
        return [f"baseline is missing the {BASELINE_SECTION!r} section"]
    floors = section.get("floors", DEFAULT_FLOORS)

    problems: list[str] = []
    jobs = fresh.get("jobs", {})
    if not jobs.get("parity", False):
        problems.append(
            "served report bytes differ from the batch run's summary.json "
            "(byte-parity is the serve contract)"
        )
    computed = jobs.get("wave_trials_computed")
    expected = jobs.get("expected_trials")
    if computed != expected:
        problems.append(
            f"{jobs.get('clients')} concurrent identical submissions computed {computed} "
            f"trials where the spec holds {expected} (duplicate work: dedup/cache regression)"
        )
    if jobs.get("duplicates_absorbed", 0) < 1:
        problems.append(
            "no concurrent duplicate submission was absorbed into the active job "
            "(in-flight dedup regression)"
        )
    hit_floor = floors.get("cache_hit_rate")
    hit_rate = jobs.get("cache_hit_rate", 0.0)
    if hit_floor is not None and hit_rate < hit_floor:
        problems.append(
            f"cached rerun hit rate {hit_rate:.2f} is below the {hit_floor:.2f} floor "
            "(the second wave recomputed trials)"
        )
    rps_floor = floors.get("requests_per_s")
    rps = fresh.get("latency", {}).get("requests_per_s", 0.0)
    if rps_floor is not None and rps < rps_floor:
        problems.append(
            f"throughput {rps:.0f} req/s is below the {rps_floor:.0f} req/s floor"
        )
    base_p99 = section.get("latency", {}).get("p99_ms")
    fresh_p99 = fresh.get("latency", {}).get("p99_ms")
    if base_p99 and fresh_p99:
        slowdown = fresh_p99 / base_p99 - 1.0
        if slowdown > max_slowdown:
            problems.append(
                f"p99 latency {fresh_p99:.1f}ms is {slowdown:+.0%} vs baseline "
                f"{base_p99:.1f}ms (allowed {max_slowdown:+.0%})"
            )
    return problems


def load_json(path: str | Path) -> dict:
    """Load a serve benchmark record or baseline from disk."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def format_serve_table(fresh: dict, baseline: dict | None = None) -> str:
    """Fixed-width summary of a fresh record (optionally vs the baseline)."""
    floors: dict = DEFAULT_FLOORS
    if baseline is not None:
        floors = baseline.get(BASELINE_SECTION, {}).get("floors", DEFAULT_FLOORS)
    latency = fresh.get("latency", {})
    jobs = fresh.get("jobs", {})
    dedup = f"{jobs.get('duplicates_absorbed', 0)}/{max(jobs.get('clients', 0) - 1, 0)}"
    work = f"{jobs.get('wave_trials_computed', 0)}/{jobs.get('expected_trials', 0)}"
    parity = str(bool(jobs.get("parity", False))).lower()
    lines = [
        f"{'metric':<22} {'value':>12} {'floor':>10}",
        f"{'requests/s':<22} {latency.get('requests_per_s', 0.0):>12.0f} "
        f"{floors.get('requests_per_s', 0.0):>10.0f}",
        f"{'p50 latency (ms)':<22} {latency.get('p50_ms', 0.0):>12.2f} {'-':>10}",
        f"{'p99 latency (ms)':<22} {latency.get('p99_ms', 0.0):>12.2f} {'-':>10}",
        f"{'dedup absorbed':<22} {dedup:>12} {'>=1':>10}",
        f"{'trials computed':<22} {work:>12} {'exact':>10}",
        f"{'cache-hit rate':<22} {jobs.get('cache_hit_rate', 0.0):>12.2f} "
        f"{floors.get('cache_hit_rate', 0.0):>10.2f}",
        f"{'report parity':<22} {parity:>12} {'true':>10}",
        f"{'cached rerun (s)':<22} {jobs.get('cached_rerun_s', 0.0):>12.2f} {'-':>10}",
    ]
    return "\n".join(lines)
