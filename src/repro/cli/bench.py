"""Backend benchmark + baseline regression comparison for ``repro bench``.

Runs the same fixed small CVCP grid as
``benchmarks/bench_parallel_backends.py`` (FOSC-OPTICSDend over a reduced
MinPts range on a 240-point synthetic data set) once per execution backend,
records wall-clock and the selected parameter, and compares the fresh
record against the committed ``BENCH_parallel.json`` baseline: the CI
benchmark-regression job fails on any selection mismatch or on a slowdown
beyond the configured threshold.

Two fresh-record formats are understood by :func:`normalize_record`: the
CLI's own JSON (written by ``repro bench --json``) and pytest-benchmark's
``--benchmark-json`` output (whose per-test ``extra_info`` carries the
selected parameters).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.clustering.fosc import FOSCOpticsDend
from repro.constraints.generation import sample_labeled_objects
from repro.core.cvcp import CVCP
from repro.core.executor import BACKENDS, ExecutionSpec
from repro.datasets.synthetic import make_blobs
from repro.utils.cache import clear_distance_cache
from repro.utils.specs import SpecError, check_spec_mapping

#: The fixed grid every bench run uses (also imported by
#: ``benchmarks/bench_parallel_backends.py``) and recorded in the
#: baseline's ``bench_parallel_backends`` section.  Sized so one run takes
#: a substantial fraction of a second: timing a tens-of-milliseconds grid
#: would gate on scheduler noise rather than on the code.
BENCH_SEED = 20140324
BENCH_MINPTS_VALUES = (3, 6, 9, 12)
BENCH_N_FOLDS = 4
BENCH_CLUSTER_SIZES = (80, 80, 80)
BENCH_GRID_DESCRIPTION = (
    "CVCP(FOSCOpticsDend, MinPts {3,6,9,12}, 4 folds) on 240-point blobs, "
    "15% labels, seed 20140324"
)

#: Key of the baseline section inside ``BENCH_parallel.json``.
BASELINE_SECTION = "bench_parallel_backends"


def run_grid(backend: str, n_jobs: int | None = 2) -> tuple[dict, list[list[float]]]:
    """One full CVCP fit on the bench grid; returns (best_params, fold scores)."""
    dataset = make_blobs(
        list(BENCH_CLUSTER_SIZES),
        4,
        center_spread=8.0,
        cluster_std=0.9,
        random_state=5,
        name="bench-parallel",
    )
    side = sample_labeled_objects(dataset.y, 0.15, random_state=1)
    search = CVCP(
        FOSCOpticsDend(),
        parameter_values=list(BENCH_MINPTS_VALUES),
        n_folds=BENCH_N_FOLDS,
        random_state=BENCH_SEED,
        execution=ExecutionSpec(backend=backend, n_jobs=n_jobs),
    )
    search.fit(dataset.X, labeled_objects=side)
    fold_scores = [list(evaluation.fold_scores) for evaluation in search.cv_results_.evaluations]
    return dict(search.best_params_), fold_scores


def run_bench(
    backends: tuple[str, ...] = BACKENDS,
    *,
    n_jobs: int | None = 2,
    rounds: int = 1,
) -> dict:
    """Time the bench grid on every backend and assert cross-backend parity.

    Returns a fresh record in the CLI JSON format.  Raises ``RuntimeError``
    when any backend selects different parameters or produces different
    per-fold scores than the serial reference (the engine's bit-identical
    guarantee — a violation is always a bug, never noise).
    """
    results: dict[str, dict] = {}
    reference: tuple[dict, list[list[float]]] | None = None
    for backend in backends:
        best_time = float("inf")
        best_params: dict = {}
        fold_scores: list[list[float]] = []
        for _ in range(max(1, rounds)):
            # Cold cache every round: each sample then measures the same
            # thing as every other (and as the recorded baseline protocol),
            # including the O(n^2) distance-matrix cost the cache absorbs.
            clear_distance_cache()
            start = time.perf_counter()
            best_params, fold_scores = run_grid(backend, n_jobs)
            best_time = min(best_time, time.perf_counter() - start)
        if reference is None:
            if backend == "serial":
                reference = (best_params, fold_scores)
            else:
                clear_distance_cache()
                reference = run_grid("serial", n_jobs)
        if (best_params, fold_scores) != reference:
            raise RuntimeError(
                f"backend {backend!r} diverged from the serial reference: "
                f"selected {best_params}, expected {reference[0]}"
            )
        results[backend] = {
            "mean_s": best_time,
            "best_params": best_params,
            "rounds": max(1, rounds),
        }
    return {
        "kind": "repro-bench",
        "grid": BENCH_GRID_DESCRIPTION,
        "machine": {"cpu_count": os.cpu_count(), "python": platform.python_version()},
        "results": results,
    }


def _backend_from_test_name(name: str) -> str | None:
    if "[" not in name or not name.endswith("]"):
        return None
    candidate = name[name.index("[") + 1 : -1]
    return candidate if candidate in BACKENDS else None


def normalize_record(record: dict) -> dict[str, dict]:
    """Normalise a fresh record to ``{backend: {mean_s, best_params}}``.

    Accepts the CLI format (``{"kind": "repro-bench", "results": ...}``)
    and pytest-benchmark's ``--benchmark-json`` format.
    """
    if record.get("kind") == "repro-bench":
        return {
            backend: {"mean_s": entry["mean_s"], "best_params": entry.get("best_params", {})}
            for backend, entry in record["results"].items()
        }
    if "benchmarks" in record:
        normalized: dict[str, dict] = {}
        for entry in record["benchmarks"]:
            backend = _backend_from_test_name(entry.get("name", ""))
            if backend is None:
                continue
            normalized[backend] = {
                "mean_s": entry["stats"]["mean"],
                "best_params": entry.get("extra_info", {}).get("best_params", {}),
            }
        if not normalized:
            raise ValueError("pytest-benchmark record contains no recognised backend benchmarks")
        return normalized
    raise ValueError("unrecognised benchmark record (expected repro-bench or pytest-benchmark JSON)")


def to_spec(record: dict) -> dict:
    """The benchmark record as a JSON-ready mapping (records already are specs)."""
    return dict(record)


def from_spec(spec: object) -> dict[str, dict]:
    """Validate and normalise a benchmark record mapping.

    Spec-protocol counterpart of :func:`normalize_record`: raises
    :class:`repro.utils.specs.SpecError` (with all problems collected)
    instead of a bare ``ValueError``, so bench records validate like any
    other spec table.
    """
    checked = check_spec_mapping(spec, "bench record")
    try:
        return normalize_record(dict(checked))
    except ValueError as exc:
        raise SpecError("bench record", [str(exc)]) from exc


def compare_records(
    fresh: dict[str, dict],
    baseline: dict,
    *,
    max_slowdown: float = 0.25,
    expected_backends: tuple[str, ...] | None = None,
) -> list[str]:
    """Regression problems of a fresh record against the committed baseline.

    Returns an empty list when every backend matches the baseline's
    expected parameter selection and is at most ``max_slowdown`` (fraction,
    e.g. ``0.25`` = 25%) slower than the baseline wall-clock.

    ``expected_backends`` names the backends the fresh record was meant to
    cover — baseline backends outside it are not flagged as missing, so a
    deliberate ``--backends thread`` run can still be gated.  ``None``
    (the CI gate) requires every baselined backend to be present.
    """
    section = baseline.get(BASELINE_SECTION)
    if not isinstance(section, dict):
        return [f"baseline is missing the {BASELINE_SECTION!r} section"]
    expected = section.get("expected_best_params", {})
    baseline_means = section.get("mean_s", {})

    problems: list[str] = []
    for backend, entry in sorted(fresh.items()):
        params = entry.get("best_params", {})
        if expected and params != expected:
            problems.append(f"{backend}: selected parameters {params} do not match baseline {expected}")
        base = baseline_means.get(backend)
        if base is None:
            continue
        slowdown = entry["mean_s"] / base - 1.0
        if slowdown > max_slowdown:
            problems.append(
                f"{backend}: {entry['mean_s']:.4f}s is {slowdown:+.0%} vs baseline "
                f"{base:.4f}s (allowed {max_slowdown:+.0%})"
            )
    for backend in sorted(baseline_means):
        if expected_backends is not None and backend not in expected_backends:
            continue
        if backend not in fresh:
            problems.append(f"{backend}: present in the baseline but missing from the fresh record")
    return problems


def load_json(path: str | Path) -> dict:
    """Load a benchmark record (CLI or pytest-benchmark JSON) from disk."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def format_bench_table(fresh: dict[str, dict], baseline: dict | None = None) -> str:
    """Fixed-width summary of a normalised record (optionally vs baseline)."""
    baseline_means = {}
    if baseline is not None:
        baseline_means = baseline.get(BASELINE_SECTION, {}).get("mean_s", {})
    lines = [f"{'backend':<10} {'wall-clock':>12} {'vs baseline':>12}  selection"]
    for backend, entry in sorted(fresh.items()):
        base = baseline_means.get(backend)
        delta = f"{entry['mean_s'] / base - 1.0:+.0%}" if base else "-"
        lines.append(f"{backend:<10} {entry['mean_s']:>11.4f}s {delta:>12}  {entry.get('best_params', {})}")
    return "\n".join(lines)
