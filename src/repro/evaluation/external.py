"""External clustering evaluation against a ground-truth labelling.

The paper's headline external measure is the **Overall F-Measure**
(set-matching F): for every ground-truth class the best-matching cluster's
F-measure is taken and the results are averaged weighted by class size.
Pairwise (pair-counting) F, Adjusted Rand Index and Normalised Mutual
Information are provided as companion measures.

All measures accept an ``exclude`` index set so the evaluation can ignore
the objects whose labels/constraints were given to the semi-supervised
algorithm, as required by the "set aside" protocol discussed in Section 2
and used in Section 4.1 of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.evaluation.confusion import pair_confusion_matrix
from repro.utils.validation import check_labels


def evaluation_mask(n_samples: int, exclude: Iterable[int] | None = None) -> np.ndarray:
    """Boolean mask selecting the objects to evaluate on.

    Parameters
    ----------
    n_samples:
        Total number of objects.
    exclude:
        Indices to leave out (e.g. objects involved in the side information
        given to the algorithm).  ``None`` excludes nothing.
    """
    mask = np.ones(n_samples, dtype=bool)
    if exclude is not None:
        excluded = np.asarray(sorted(set(int(i) for i in exclude)), dtype=np.int64)
        if excluded.size:
            if excluded.min() < 0 or excluded.max() >= n_samples:
                raise ValueError("exclude contains indices outside the data set")
            mask[excluded] = False
    if not np.any(mask):
        raise ValueError("all objects were excluded from the evaluation")
    return mask


def _filtered(
    labels_true: Sequence[int] | np.ndarray,
    labels_pred: Sequence[int] | np.ndarray,
    exclude: Iterable[int] | None,
) -> tuple[np.ndarray, np.ndarray]:
    labels_true = check_labels(labels_true)
    labels_pred = check_labels(labels_pred, labels_true.shape[0], name="labels_pred")
    mask = evaluation_mask(labels_true.shape[0], exclude)
    return labels_true[mask], labels_pred[mask]


def overall_f_measure(
    labels_true: Sequence[int] | np.ndarray,
    labels_pred: Sequence[int] | np.ndarray,
    *,
    exclude: Iterable[int] | None = None,
) -> float:
    """Overall F-Measure (set-matching F) of a partition against the ground truth.

    For every ground-truth class ``c`` and every cluster ``k`` the F-measure
    of "cluster k retrieves class c" is computed; class ``c`` contributes the
    maximum over clusters, weighted by its relative size.  Noise objects in
    the prediction count as singleton clusters (so they can only be matched
    by classes of size one, i.e. they effectively count against recall).

    Returns a value in ``[0, 1]``; 1 means a perfect recovery of the classes.
    """
    true, pred = _filtered(labels_true, labels_pred, exclude)
    n = true.shape[0]

    # Noise points become unique singleton clusters.
    pred = pred.copy()
    noise = pred < 0
    if np.any(noise):
        next_label = pred.max() + 1 if pred.size else 0
        pred[noise] = np.arange(next_label, next_label + np.count_nonzero(noise))

    true_classes, true_idx = np.unique(true, return_inverse=True)
    pred_classes, pred_idx = np.unique(pred, return_inverse=True)
    contingency = np.zeros((true_classes.size, pred_classes.size), dtype=np.float64)
    np.add.at(contingency, (true_idx, pred_idx), 1.0)

    class_sizes = contingency.sum(axis=1)
    cluster_sizes = contingency.sum(axis=0)

    # F of class c vs cluster k: 2*n_ck / (|c| + |k|).
    with np.errstate(divide="ignore", invalid="ignore"):
        f_matrix = 2.0 * contingency / (class_sizes[:, None] + cluster_sizes[None, :])
    f_matrix = np.nan_to_num(f_matrix)

    best_f_per_class = f_matrix.max(axis=1)
    # The class weights sum to 1 only up to floating-point rounding, so a
    # perfect recovery can land a few ulps above 1; clamp to the contract.
    return float(min(1.0, np.sum(class_sizes / n * best_f_per_class)))


def pairwise_f_measure(
    labels_true: Sequence[int] | np.ndarray,
    labels_pred: Sequence[int] | np.ndarray,
    *,
    exclude: Iterable[int] | None = None,
) -> float:
    """Pair-counting F-measure (harmonic mean of pair precision and recall)."""
    true, pred = _filtered(labels_true, labels_pred, exclude)
    n11, n10, n01, _ = pair_confusion_matrix(true, pred)
    precision = n11 / (n11 + n01) if (n11 + n01) else 0.0
    recall = n11 / (n11 + n10) if (n11 + n10) else 0.0
    if precision + recall == 0.0:
        return 0.0
    return float(2.0 * precision * recall / (precision + recall))


def adjusted_rand_index(
    labels_true: Sequence[int] | np.ndarray,
    labels_pred: Sequence[int] | np.ndarray,
    *,
    exclude: Iterable[int] | None = None,
) -> float:
    """Adjusted Rand Index (Hubert & Arabie, 1985)."""
    true, pred = _filtered(labels_true, labels_pred, exclude)
    n11, n10, n01, n00 = pair_confusion_matrix(true, pred)
    total = n11 + n10 + n01 + n00
    if total == 0:
        return 1.0
    expected = (n11 + n10) * (n11 + n01) / total
    maximum = 0.5 * ((n11 + n10) + (n11 + n01))
    if maximum == expected:
        return 1.0
    return float((n11 - expected) / (maximum - expected))


def normalized_mutual_information(
    labels_true: Sequence[int] | np.ndarray,
    labels_pred: Sequence[int] | np.ndarray,
    *,
    exclude: Iterable[int] | None = None,
) -> float:
    """Normalised mutual information with arithmetic-mean normalisation."""
    true, pred = _filtered(labels_true, labels_pred, exclude)
    n = true.shape[0]

    pred = pred.copy()
    noise = pred < 0
    if np.any(noise):
        next_label = pred.max() + 1 if pred.size else 0
        pred[noise] = np.arange(next_label, next_label + np.count_nonzero(noise))

    true_classes, true_idx = np.unique(true, return_inverse=True)
    pred_classes, pred_idx = np.unique(pred, return_inverse=True)
    contingency = np.zeros((true_classes.size, pred_classes.size), dtype=np.float64)
    np.add.at(contingency, (true_idx, pred_idx), 1.0)

    joint = contingency / n
    p_true = joint.sum(axis=1)
    p_pred = joint.sum(axis=0)

    nonzero = joint > 0
    mutual_information = float(
        np.sum(joint[nonzero] * np.log(joint[nonzero] / np.outer(p_true, p_pred)[nonzero]))
    )
    entropy_true = float(-np.sum(p_true[p_true > 0] * np.log(p_true[p_true > 0])))
    entropy_pred = float(-np.sum(p_pred[p_pred > 0] * np.log(p_pred[p_pred > 0])))
    normaliser = 0.5 * (entropy_true + entropy_pred)
    if normaliser == 0.0:
        return 1.0
    return float(max(0.0, min(1.0, mutual_information / normaliser)))
