"""Internal (unsupervised) clustering evaluation measures.

The Silhouette coefficient (Kaufman & Rousseeuw, 1990) is the baseline
model-selection criterion the paper compares CVCP against for MPCKMeans
(Section 4.3): among the candidate values of ``k`` the one whose partition
maximises the mean silhouette width is selected.  The simplified silhouette
and the Davies–Bouldin index are included as additional internal criteria
for ablation studies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.clustering.distances import euclidean_distances
from repro.utils.cache import cached_pairwise_distances
from repro.utils.validation import check_array_2d, check_labels, unique_labels


def _validated(
    X: np.ndarray, labels: Sequence[int] | np.ndarray, *, metric: str = "euclidean"
) -> tuple[np.ndarray, np.ndarray]:
    if metric == "precomputed":
        from repro.clustering.distances import validate_precomputed_distances

        X = validate_precomputed_distances(X)
    else:
        X = check_array_2d(X)
    labels = check_labels(labels, X.shape[0])
    return X, labels


def silhouette_samples(
    X: np.ndarray,
    labels: Sequence[int] | np.ndarray,
    *,
    metric: str = "euclidean",
    distance_backend: str | None = None,
) -> np.ndarray:
    """Per-object silhouette width.

    Noise objects (label ``-1``) receive a silhouette of 0 and are excluded
    from the neighbour computations of other objects' clusters.
    Singleton clusters also receive 0, following the usual convention.
    ``metric`` selects the distance metric (``"precomputed"`` treats ``X``
    as the distance matrix itself); ``distance_backend`` selects the
    distance-matrix storage tier (see :mod:`repro.core.distance_backend`);
    the per-object loop reads the matrix row-wise, so memmap storage
    streams naturally.
    """
    X, labels = _validated(X, labels, metric=metric)
    clusters = unique_labels(labels)
    n_samples = X.shape[0]
    scores = np.zeros(n_samples, dtype=np.float64)
    if clusters.size < 2:
        return scores

    if metric == "precomputed":
        distances = X
    else:
        distances = cached_pairwise_distances(
            X, metric, distance_backend=distance_backend
        )
    members_by_cluster = {int(c): np.flatnonzero(labels == c) for c in clusters}

    for index in range(n_samples):
        own = int(labels[index])
        if own < 0:
            continue
        own_members = members_by_cluster[own]
        if own_members.size <= 1:
            continue
        within = distances[index, own_members]
        a = within.sum() / (own_members.size - 1)

        b = np.inf
        for other, other_members in members_by_cluster.items():
            if other == own:
                continue
            b = min(b, float(distances[index, other_members].mean()))
        denominator = max(a, b)
        if denominator > 0:
            scores[index] = (b - a) / denominator
    return scores


def silhouette_score(
    X: np.ndarray,
    labels: Sequence[int] | np.ndarray,
    *,
    metric: str = "euclidean",
    distance_backend: str | None = None,
) -> float:
    """Mean silhouette width over non-noise objects.

    Returns 0 when fewer than two clusters are present (the measure is
    undefined there; 0 keeps parameter sweeps well behaved).
    ``metric`` selects the distance metric (``"precomputed"`` = ``X`` is
    the distance matrix); ``distance_backend`` the storage tier.
    """
    X, labels = _validated(X, labels, metric=metric)
    clusters = unique_labels(labels)
    if clusters.size < 2:
        return 0.0
    scores = silhouette_samples(X, labels, metric=metric, distance_backend=distance_backend)
    mask = labels >= 0
    if not np.any(mask):
        return 0.0
    return float(scores[mask].mean())


def simplified_silhouette(X: np.ndarray, labels: Sequence[int] | np.ndarray) -> float:
    """Simplified silhouette: distances to centroids instead of to all members.

    Much cheaper than the full silhouette and nearly as effective for
    model selection on globular clusters (Vendramin et al., 2010).
    """
    X, labels = _validated(X, labels)
    clusters = unique_labels(labels)
    if clusters.size < 2:
        return 0.0

    centroids = np.vstack([X[labels == c].mean(axis=0) for c in clusters])
    distances = euclidean_distances(X, centroids)
    cluster_position = {int(c): position for position, c in enumerate(clusters)}

    scores = []
    for index in range(X.shape[0]):
        own = int(labels[index])
        if own < 0:
            continue
        own_position = cluster_position[own]
        a = distances[index, own_position]
        others = np.delete(distances[index], own_position)
        b = float(others.min()) if others.size else 0.0
        denominator = max(a, b)
        scores.append((b - a) / denominator if denominator > 0 else 0.0)
    return float(np.mean(scores)) if scores else 0.0


def davies_bouldin_index(X: np.ndarray, labels: Sequence[int] | np.ndarray) -> float:
    """Davies–Bouldin index (lower is better; 0 is the ideal value)."""
    X, labels = _validated(X, labels)
    clusters = unique_labels(labels)
    if clusters.size < 2:
        return 0.0

    centroids = np.vstack([X[labels == c].mean(axis=0) for c in clusters])
    scatters = np.array([
        float(np.mean(np.linalg.norm(X[labels == c] - centroids[position], axis=1)))
        for position, c in enumerate(clusters)
    ])
    centroid_distances = euclidean_distances(centroids, centroids)

    ratios = np.zeros(clusters.size)
    for i in range(clusters.size):
        candidates = [
            (scatters[i] + scatters[j]) / centroid_distances[i, j]
            for j in range(clusters.size)
            if j != i and centroid_distances[i, j] > 0
        ]
        ratios[i] = max(candidates) if candidates else 0.0
    return float(ratios.mean())
