"""Clustering evaluation measures.

* :mod:`repro.evaluation.confusion` — pair-level and constraint-level
  confusion counts (the bridge between clustering and classification
  evaluation used by CVCP).
* :mod:`repro.evaluation.external` — external measures against a ground
  truth: the paper's Overall F-Measure, pairwise F, Adjusted Rand Index and
  Normalised Mutual Information.
* :mod:`repro.evaluation.internal` — internal measures: Silhouette
  coefficient (the baseline of Section 4.3), simplified silhouette and
  Davies–Bouldin.
* :mod:`repro.evaluation.significance` — the paired t-test used to mark
  significant differences in the result tables.
"""

from repro.evaluation.confusion import (
    ConstraintConfusion,
    constraint_confusion,
    pair_confusion_matrix,
)
from repro.evaluation.external import (
    overall_f_measure,
    pairwise_f_measure,
    adjusted_rand_index,
    normalized_mutual_information,
    evaluation_mask,
)
from repro.evaluation.internal import (
    silhouette_score,
    silhouette_samples,
    simplified_silhouette,
    davies_bouldin_index,
)
from repro.evaluation.significance import PairedTTestResult, paired_t_test

__all__ = [
    "ConstraintConfusion",
    "constraint_confusion",
    "pair_confusion_matrix",
    "overall_f_measure",
    "pairwise_f_measure",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "evaluation_mask",
    "silhouette_score",
    "silhouette_samples",
    "simplified_silhouette",
    "davies_bouldin_index",
    "PairedTTestResult",
    "paired_t_test",
]
