"""Statistical significance testing for experiment tables.

The paper marks the best mean performance per row in bold when its
difference to the alternatives is significant at the α = 0.05 level under a
*paired* t-test over the 50 experiment repetitions.  This module provides
that test (implemented directly on top of the t distribution from
:mod:`scipy.stats`) plus a convenience for comparing one method against
several alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

DEFAULT_ALPHA = 0.05


@dataclass(frozen=True)
class PairedTTestResult:
    """Outcome of a two-sided paired t-test.

    Attributes
    ----------
    statistic:
        The t statistic (positive when the first sample's mean is larger).
    p_value:
        Two-sided p-value.
    mean_difference:
        Mean of ``first - second``.
    n:
        Number of pairs.
    """

    statistic: float
    p_value: float
    mean_difference: float
    n: int

    def significant(self, alpha: float = DEFAULT_ALPHA) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def paired_t_test(first: Sequence[float], second: Sequence[float]) -> PairedTTestResult:
    """Two-sided paired t-test of ``first`` against ``second``.

    Raises
    ------
    ValueError
        If the samples have different lengths or fewer than two pairs.
    """
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape or first.ndim != 1:
        raise ValueError(
            f"paired samples must be 1-d and of equal length, got {first.shape} and {second.shape}"
        )
    n = first.shape[0]
    if n < 2:
        raise ValueError("paired t-test needs at least two pairs")

    differences = first - second
    mean_difference = float(differences.mean())
    std = float(differences.std(ddof=1))
    if std == 0.0:
        # Identical differences: either exactly zero (no difference at all)
        # or a constant shift, which is "infinitely" significant.
        if mean_difference == 0.0:
            return PairedTTestResult(0.0, 1.0, 0.0, n)
        return PairedTTestResult(np.inf if mean_difference > 0 else -np.inf, 0.0, mean_difference, n)

    statistic = mean_difference / (std / np.sqrt(n))
    p_value = float(2.0 * stats.t.sf(abs(statistic), df=n - 1))
    return PairedTTestResult(float(statistic), p_value, mean_difference, n)


def best_is_significant(
    best: Sequence[float],
    others: Sequence[Sequence[float]],
    *,
    alpha: float = DEFAULT_ALPHA,
) -> bool:
    """Whether ``best`` beats *every* alternative significantly.

    Mirrors the bolding rule of the paper's tables: the winner is marked
    only if the paired difference against each other method is significant
    at level ``alpha`` (and in the winner's favour).
    """
    best = np.asarray(best, dtype=np.float64)
    for other in others:
        result = paired_t_test(best, other)
        if not result.significant(alpha) or result.mean_difference <= 0:
            return False
    return True
