"""Pair-level and constraint-level confusion counts.

Section 3.2 of the paper turns the evaluation of a semi-supervised
clustering into a two-class classification problem over constraints:
must-link is class 1 and cannot-link is class 0, and a produced partition
"classifies" a pair as class 1 if the two objects share a cluster and as
class 0 otherwise.  :func:`constraint_confusion` computes the resulting
confusion counts; :func:`pair_confusion_matrix` is the classic pair-counting
confusion over *all* pairs against a ground truth (used by ARI and the
pairwise F-measure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.constraint import ConstraintSet
from repro.utils.validation import check_labels


@dataclass(frozen=True)
class ConstraintConfusion:
    """Confusion counts of a partition classifying constraints.

    With must-link as the positive class:

    * ``tp`` — must-link pairs placed in the same cluster,
    * ``fn`` — must-link pairs placed in different clusters,
    * ``tn`` — cannot-link pairs placed in different clusters,
    * ``fp`` — cannot-link pairs placed in the same cluster.
    """

    tp: int
    fn: int
    tn: int
    fp: int

    @property
    def n_constraints(self) -> int:
        return self.tp + self.fn + self.tn + self.fp

    @property
    def n_must_link(self) -> int:
        return self.tp + self.fn

    @property
    def n_cannot_link(self) -> int:
        return self.tn + self.fp

    # -- per-class precision / recall / F ---------------------------------
    def precision_must_link(self) -> float:
        return _safe_divide(self.tp, self.tp + self.fp)

    def recall_must_link(self) -> float:
        return _safe_divide(self.tp, self.tp + self.fn)

    def f_measure_must_link(self) -> float:
        return _f_from_pr(self.precision_must_link(), self.recall_must_link())

    def precision_cannot_link(self) -> float:
        return _safe_divide(self.tn, self.tn + self.fn)

    def recall_cannot_link(self) -> float:
        return _safe_divide(self.tn, self.tn + self.fp)

    def f_measure_cannot_link(self) -> float:
        return _f_from_pr(self.precision_cannot_link(), self.recall_cannot_link())

    def average_f_measure(self) -> float:
        """Unweighted mean of the per-class F-measures (the CVCP internal score)."""
        scores: list[float] = []
        if self.n_must_link:
            scores.append(self.f_measure_must_link())
        if self.n_cannot_link:
            scores.append(self.f_measure_cannot_link())
        if not scores:
            return 0.0
        return float(np.mean(scores))

    def accuracy(self) -> float:
        """Fraction of constraints satisfied (an alternative internal score)."""
        return _safe_divide(self.tp + self.tn, self.n_constraints)


def _safe_divide(numerator: float, denominator: float) -> float:
    return float(numerator) / float(denominator) if denominator else 0.0


def _f_from_pr(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def constraint_confusion(
    labels: np.ndarray,
    constraints: ConstraintSet,
) -> ConstraintConfusion:
    """Classify every constraint with the partition ``labels``.

    Noise objects (label ``-1``) are treated as singletons: they are never
    in the same cluster as any other object (including other noise objects).
    """
    labels = check_labels(labels)
    tp = fn = tn = fp = 0
    for constraint in constraints:
        label_i = labels[constraint.i]
        label_j = labels[constraint.j]
        same = label_i >= 0 and label_j >= 0 and label_i == label_j
        if constraint.is_must_link:
            if same:
                tp += 1
            else:
                fn += 1
        else:
            if same:
                fp += 1
            else:
                tn += 1
    return ConstraintConfusion(tp=tp, fn=fn, tn=tn, fp=fp)


def pair_confusion_matrix(labels_true: np.ndarray, labels_pred: np.ndarray) -> tuple[int, int, int, int]:
    """Pair-counting confusion of a predicted partition against a ground truth.

    Returns
    -------
    tuple
        ``(n11, n10, n01, n00)`` — pairs together in both, together only in
        the truth, together only in the prediction, together in neither.
        Noise objects in the prediction are treated as singleton clusters.
    """
    labels_true = check_labels(labels_true)
    labels_pred = check_labels(labels_pred, labels_true.shape[0], name="labels_pred")

    # Give each noise object its own unique (negative-free) cluster label so
    # the contingency table treats it as a singleton.
    pred = labels_pred.copy()
    noise = pred < 0
    if np.any(noise):
        next_label = pred.max() + 1 if pred.size else 0
        pred[noise] = np.arange(next_label, next_label + np.count_nonzero(noise))

    true_classes, true_idx = np.unique(labels_true, return_inverse=True)
    pred_classes, pred_idx = np.unique(pred, return_inverse=True)
    contingency = np.zeros((true_classes.size, pred_classes.size), dtype=np.int64)
    np.add.at(contingency, (true_idx, pred_idx), 1)

    n = labels_true.shape[0]
    sum_squares = int((contingency.astype(np.float64) ** 2).sum())
    row_sums = contingency.sum(axis=1)
    col_sums = contingency.sum(axis=0)
    sum_rows_sq = int((row_sums.astype(np.float64) ** 2).sum())
    sum_cols_sq = int((col_sums.astype(np.float64) ** 2).sum())

    n11 = (sum_squares - n) // 2
    n10 = (sum_rows_sq - sum_squares) // 2
    n01 = (sum_cols_sq - sum_squares) // 2
    n00 = n * (n - 1) // 2 - n11 - n10 - n01
    return int(n11), int(n10), int(n01), int(n00)
