"""``python -m repro`` entry point."""

from repro.cli.main import main

if __name__ == "__main__":
    raise SystemExit(main())
