"""Synthetic analogues of the UCI and gene-expression data sets of the paper.

Each generator matches the corresponding real data set in the number of
objects, classes and features and mimics its qualitative cluster geometry
(see the per-function docstrings and DESIGN.md).  The goal is to preserve
the *relative* behaviour of the algorithms the paper reports — which classes
density-based clustering can recover, where k-means' spherical bias hurts —
rather than the absolute feature values.

All generators are deterministic given ``random_state``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_two_moons
from repro.utils.rng import RandomStateLike, check_random_state


def make_iris_like(*, random_state: RandomStateLike = 0) -> Dataset:
    """Iris analogue: 150 objects, 4 features, 3 classes of 50.

    One class is well separated; the other two overlap (as Setosa vs.
    Versicolor/Virginica do), so a clustering algorithm can typically find
    the separable class but merges or confuses parts of the other two.
    """
    rng = check_random_state(random_state)
    n_per_class = 50
    separated = rng.normal(loc=[5.0, 3.4, 1.5, 0.2], scale=[0.35, 0.38, 0.17, 0.10],
                           size=(n_per_class, 4))
    overlapping_a = rng.normal(loc=[5.9, 2.8, 4.3, 1.3], scale=[0.5, 0.31, 0.47, 0.20],
                               size=(n_per_class, 4))
    overlapping_b = rng.normal(loc=[6.6, 3.0, 5.5, 2.0], scale=[0.63, 0.32, 0.55, 0.27],
                               size=(n_per_class, 4))
    X = np.vstack([separated, overlapping_a, overlapping_b])
    y = np.repeat(np.arange(3, dtype=np.int64), n_per_class)
    return Dataset(
        name="iris-like",
        X=X,
        y=y,
        description=(
            "Synthetic analogue of UCI Iris: 3x50 objects in 4-d, one class "
            "linearly separable, two overlapping"
        ),
    )


def make_wine_like(*, random_state: RandomStateLike = 0) -> Dataset:
    """Wine analogue: 178 objects, 13 features, 3 classes (59/71/48).

    Classes are roughly Gaussian but with very different per-feature scales
    (as the unstandardised Wine chemistry measurements are) and moderate
    overlap, which keeps the absolute clustering quality modest as in the
    paper's Wine rows.
    """
    rng = check_random_state(random_state)
    class_sizes = (59, 71, 48)
    n_features = 13
    feature_scales = np.geomspace(0.1, 50.0, n_features)
    centers = rng.normal(scale=1.3, size=(3, n_features))

    features = []
    labels = []
    for cls, size in enumerate(class_sizes):
        spread = rng.uniform(0.7, 1.4, size=n_features)
        block = centers[cls] + rng.normal(scale=spread, size=(size, n_features))
        features.append(block * feature_scales)
        labels.append(np.full(size, cls, dtype=np.int64))
    return Dataset(
        name="wine-like",
        X=np.vstack(features),
        y=np.concatenate(labels),
        description=(
            "Synthetic analogue of UCI Wine: 178 objects in 13-d, 3 unbalanced "
            "classes with heterogeneous feature scales"
        ),
    )


def make_ionosphere_like(*, random_state: RandomStateLike = 0) -> Dataset:
    """Ionosphere analogue: 351 objects, 34 features, 2 classes (225 good / 126 bad).

    The "good" class forms a relatively compact region while the "bad" class
    is diffuse and partially wraps around it — a non-convex structure that a
    density-based method handles better than a spherical one, matching the
    FOSC > MPCKMeans gap the paper observes on Ionosphere.
    """
    rng = check_random_state(random_state)
    n_good, n_bad = 225, 126
    n_features = 34
    intrinsic = 5

    good_core = rng.normal(loc=0.0, scale=0.6, size=(n_good, intrinsic))
    # The bad class lives on a noisy shell around the good core.
    directions = rng.normal(size=(n_bad, intrinsic))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    radii = rng.uniform(2.2, 3.5, size=(n_bad, 1))
    bad_shell = directions * radii + rng.normal(scale=0.35, size=(n_bad, intrinsic))

    intrinsic_points = np.vstack([good_core, bad_shell])
    projection = rng.normal(size=(intrinsic, n_features)) / np.sqrt(intrinsic)
    X = intrinsic_points @ projection + rng.normal(scale=0.25, size=(n_good + n_bad, n_features))
    y = np.concatenate([
        np.zeros(n_good, dtype=np.int64),
        np.ones(n_bad, dtype=np.int64),
    ])
    return Dataset(
        name="ionosphere-like",
        X=X,
        y=y,
        description=(
            "Synthetic analogue of UCI Ionosphere: 351 objects in 34-d, a compact "
            "class surrounded by a diffuse non-convex class"
        ),
    )


def make_ecoli_like(*, random_state: RandomStateLike = 0) -> Dataset:
    """Ecoli analogue: 336 objects, 7 features, 8 highly unbalanced classes.

    Class sizes follow the real data (143/77/52/35/20/5/2/2): several classes
    are tiny, so no flat partition scores highly on Overall F — mirroring the
    modest absolute values of the paper's Ecoli rows.
    """
    rng = check_random_state(random_state)
    class_sizes = (143, 77, 52, 35, 20, 5, 2, 2)
    n_features = 7
    centers = rng.uniform(-2.2, 2.2, size=(len(class_sizes), n_features))

    features = []
    labels = []
    for cls, size in enumerate(class_sizes):
        spread = rng.uniform(0.7, 1.4)
        features.append(centers[cls] + rng.normal(scale=spread, size=(size, n_features)))
        labels.append(np.full(size, cls, dtype=np.int64))
    return Dataset(
        name="ecoli-like",
        X=np.vstack(features),
        y=np.concatenate(labels),
        description=(
            "Synthetic analogue of UCI Ecoli: 336 objects in 7-d, 8 classes with "
            "very unbalanced sizes (two classes of size 2)"
        ),
    )


def make_zyeast_like(*, random_state: RandomStateLike = 0) -> Dataset:
    """Zyeast analogue: 205 objects, 20 features, 4 classes.

    Gene-expression profiles over 20 conditions: each class is a distinct
    temporal expression pattern (sinusoidal phase-shifted prototypes) with
    per-gene amplitude variation and measurement noise.  The classes are
    elongated and curved in feature space, which density-based clustering
    recovers very well (the paper reports Overall F above 0.9 for FOSC) while
    k-means struggles (around 0.5).
    """
    rng = check_random_state(random_state)
    class_sizes = (60, 55, 50, 40)
    n_conditions = 20
    timeline = np.linspace(0.0, 2.0 * np.pi, n_conditions)

    prototypes = np.vstack([
        np.sin(timeline),
        np.sin(timeline + np.pi / 2.0),
        np.sin(2.0 * timeline),
        -np.sin(timeline),
    ])

    features = []
    labels = []
    for cls, size in enumerate(class_sizes):
        # Wide amplitude range makes every class strongly elongated along its
        # expression prototype: density-based clustering follows the
        # elongated shape, a spherical k-means cuts it into pieces — the
        # regime where the paper observes MPCKMeans failing on Zyeast.
        amplitudes = rng.uniform(0.35, 2.6, size=(size, 1))
        offsets = rng.normal(scale=0.15, size=(size, 1))
        noise = rng.normal(scale=0.22, size=(size, n_conditions))
        features.append(amplitudes * prototypes[cls] + offsets + noise)
        labels.append(np.full(size, cls, dtype=np.int64))
    return Dataset(
        name="zyeast-like",
        X=np.vstack(features),
        y=np.concatenate(labels),
        description=(
            "Synthetic analogue of the Yeast cell-cycle expression data: 205 genes "
            "x 20 conditions, 4 phase-shifted expression patterns"
        ),
    )


def make_density_structured(*, random_state: RandomStateLike = 0) -> Dataset:
    """An explicitly non-convex 2-class data set (moons) for examples and tests.

    Not one of the paper's data sets; exposed because it is the cleanest
    illustration of the regime where MinPts selection matters and k-means'
    Silhouette-selected models fail.
    """
    rng = check_random_state(random_state)
    return make_two_moons(300, noise=0.07, random_state=rng, name="moons")
