"""Loading real data files when they are available.

The reproduction runs on synthetic analogues by default, but if the user
places the real files under a data directory (CSV with the class label in
the last column, one row per object), the same harness runs on them.
Expected file names: ``iris.csv``, ``wine.csv``, ``ionosphere.csv``,
``ecoli.csv``, ``zyeast.csv``; ALOI subsets as ``aloi_k5_<index>.csv``.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.datasets.base import Dataset

#: Default directory searched by :func:`load_real_dataset`.
DEFAULT_DATA_DIR = Path("data")


def load_csv_dataset(path: str | Path, *, name: str | None = None,
                     delimiter: str = ",") -> Dataset:
    """Load a CSV file whose last column is the class label.

    Non-numeric class labels are mapped to integers in order of first
    appearance.  Feature columns must be numeric.

    Raises
    ------
    FileNotFoundError
        If ``path`` does not exist.
    ValueError
        If the file is empty or malformed.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"data file not found: {path}")

    rows: list[list[str]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for row in reader:
            if not row or all(not cell.strip() for cell in row):
                continue
            rows.append([cell.strip() for cell in row])
    if not rows:
        raise ValueError(f"data file is empty: {path}")

    # Skip a header row if the first row's feature cells are not numeric.
    def _is_numeric(cell: str) -> bool:
        try:
            float(cell)
            return True
        except ValueError:
            return False

    if not all(_is_numeric(cell) for cell in rows[0][:-1]):
        rows = rows[1:]
    if not rows:
        raise ValueError(f"data file has a header but no data rows: {path}")

    n_columns = len(rows[0])
    if n_columns < 2:
        raise ValueError(f"need at least one feature column and one label column: {path}")
    if any(len(row) != n_columns for row in rows):
        raise ValueError(f"inconsistent number of columns in {path}")

    features = np.array([[float(cell) for cell in row[:-1]] for row in rows], dtype=np.float64)
    raw_labels = [row[-1] for row in rows]
    label_map: dict[str, int] = {}
    labels = np.empty(len(raw_labels), dtype=np.int64)
    for index, raw in enumerate(raw_labels):
        if raw not in label_map:
            label_map[raw] = len(label_map)
        labels[index] = label_map[raw]

    return Dataset(
        name=name or path.stem,
        X=features,
        y=labels,
        description=f"loaded from {path}",
        meta={"source": str(path), "label_map": label_map},
    )


def load_real_dataset(name: str, data_dir: str | Path = DEFAULT_DATA_DIR) -> Dataset | None:
    """Load the real data set ``name`` if its CSV exists under ``data_dir``.

    Returns ``None`` when the file is absent, so callers can transparently
    fall back to the synthetic analogue.
    """
    path = Path(data_dir) / f"{name}.csv"
    if not path.exists():
        return None
    return load_csv_dataset(path, name=name)
