"""The :class:`Dataset` container used across the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.utils.validation import check_array_2d, check_labels

#: Metrics a :class:`Dataset` may carry (the experiment-facing subset of
#: :data:`repro.clustering.distances.PAIRWISE_METRICS`).
DATASET_METRICS = ("euclidean", "cosine", "precomputed")


@dataclass
class Dataset:
    """A labelled data set.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"iris-like"``).
    X:
        ``(n, d)`` feature matrix — dense ``ndarray`` or scipy CSR (text
        workloads).  With ``metric="precomputed"`` this is the validated
        ``(n, n)`` distance matrix itself.
    y:
        ``(n,)`` ground-truth class labels (integers ``0..c-1``).
    description:
        Free-form provenance note (what the generator mimics, seed, ...).
    metric:
        Distance metric the experiments should evaluate this data set
        under: ``"euclidean"`` (default), ``"cosine"``, or
        ``"precomputed"``.
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    description: str = ""
    meta: dict = field(default_factory=dict)
    metric: str = "euclidean"

    def __post_init__(self) -> None:
        if self.metric not in DATASET_METRICS:
            raise ValueError(
                f"{self.name}.metric must be one of {DATASET_METRICS}, "
                f"got {self.metric!r}"
            )
        if self.metric == "precomputed":
            # The matrix is the distances; validated directly because a
            # legitimate precomputed matrix may contain +inf (unreachable
            # pairs), which check_array_2d rejects.
            from repro.clustering.distances import validate_precomputed_distances

            self.X = validate_precomputed_distances(self.X, name=f"{self.name}.X")
        else:
            self.X = check_array_2d(self.X, name=f"{self.name}.X")
        self.y = check_labels(self.y, self.X.shape[0], name=f"{self.name}.y")

    @property
    def is_sparse(self) -> bool:
        return sparse.issparse(self.X)

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def n_classes(self) -> int:
        return int(np.unique(self.y).size)

    @property
    def class_sizes(self) -> dict[int, int]:
        """Mapping ``class label -> number of objects``."""
        classes, counts = np.unique(self.y, return_counts=True)
        return {int(c): int(n) for c, n in zip(classes, counts)}

    def with_metric(self, metric: str) -> "Dataset":
        """Return a copy evaluated under ``metric`` (same data, new contract)."""
        if metric == self.metric:
            return self
        return Dataset(
            name=self.name,
            X=self.X,
            y=self.y.copy(),
            description=self.description,
            meta=dict(self.meta),
            metric=metric,
        )

    def standardized(self) -> "Dataset":
        """Return a copy with zero-mean, unit-variance features.

        Constant features are left untouched (divided by 1) to avoid NaNs.
        Undefined for sparse matrices (centering densifies) and for
        precomputed distances (there are no features to scale).
        """
        if self.metric == "precomputed":
            raise ValueError(f"{self.name}: cannot standardize a precomputed distance matrix")
        if self.is_sparse:
            raise ValueError(f"{self.name}: cannot standardize a sparse matrix without densifying")
        mean = self.X.mean(axis=0)
        std = self.X.std(axis=0)
        std = np.where(std == 0.0, 1.0, std)
        return Dataset(
            name=self.name,
            X=(self.X - mean) / std,
            y=self.y.copy(),
            description=self.description,
            meta=dict(self.meta, standardized=True),
            metric=self.metric,
        )

    def subsample(self, indices: np.ndarray, *, name: str | None = None) -> "Dataset":
        """Return the data set restricted to ``indices`` (labels re-used as is).

        A precomputed data set is sliced on both axes so the result is
        again a square distance matrix over the kept objects.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if self.metric == "precomputed":
            X = self.X[np.ix_(indices, indices)]
        else:
            X = self.X[indices]
        return Dataset(
            name=name or f"{self.name}[subset]",
            X=X,
            y=self.y[indices],
            description=self.description,
            meta=dict(self.meta),
            metric=self.metric,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(name={self.name!r}, n_samples={self.n_samples}, "
            f"n_features={self.n_features}, n_classes={self.n_classes}, "
            f"metric={self.metric!r})"
        )
