"""The :class:`Dataset` container used across the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_array_2d, check_labels


@dataclass
class Dataset:
    """A labelled data set.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"iris-like"``).
    X:
        ``(n, d)`` feature matrix.
    y:
        ``(n,)`` ground-truth class labels (integers ``0..c-1``).
    description:
        Free-form provenance note (what the generator mimics, seed, ...).
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    description: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = check_array_2d(self.X, name=f"{self.name}.X")
        self.y = check_labels(self.y, self.X.shape[0], name=f"{self.name}.y")

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def n_classes(self) -> int:
        return int(np.unique(self.y).size)

    @property
    def class_sizes(self) -> dict[int, int]:
        """Mapping ``class label -> number of objects``."""
        classes, counts = np.unique(self.y, return_counts=True)
        return {int(c): int(n) for c, n in zip(classes, counts)}

    def standardized(self) -> "Dataset":
        """Return a copy with zero-mean, unit-variance features.

        Constant features are left untouched (divided by 1) to avoid NaNs.
        """
        mean = self.X.mean(axis=0)
        std = self.X.std(axis=0)
        std = np.where(std == 0.0, 1.0, std)
        return Dataset(
            name=self.name,
            X=(self.X - mean) / std,
            y=self.y.copy(),
            description=self.description,
            meta=dict(self.meta, standardized=True),
        )

    def subsample(self, indices: np.ndarray, *, name: str | None = None) -> "Dataset":
        """Return the data set restricted to ``indices`` (labels re-used as is)."""
        indices = np.asarray(indices, dtype=np.intp)
        return Dataset(
            name=name or f"{self.name}[subset]",
            X=self.X[indices],
            y=self.y[indices],
            description=self.description,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(name={self.name!r}, n_samples={self.n_samples}, "
            f"n_features={self.n_features}, n_classes={self.n_classes})"
        )
