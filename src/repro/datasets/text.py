"""Text-like sparse data sets and precomputed-similarity loading.

Two entry points open the document-clustering scenario:

* :func:`make_text_blobs` — a synthetic TF-IDF-shaped corpus with planted
  topics, returned as a scipy CSR matrix with ``metric="cosine"`` so the
  whole stack (distance tiers, CVCP, pipelines) exercises the sparse
  cosine path.
* :func:`load_precomputed_dataset` — a user-supplied ``(n, n)`` distance or
  similarity matrix from an ``.npz`` file, validated and returned with
  ``metric="precomputed"``.

Both are deterministic given their inputs; the generator is registered in
the dataset registry under the name ``"Text"``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from scipy import sparse

from repro.clustering.distances import (
    similarity_to_distance,
    validate_precomputed_distances,
)
from repro.datasets.base import Dataset
from repro.utils.rng import RandomStateLike, check_random_state

#: Accepted ``form`` values for :func:`load_precomputed_dataset`.
PRECOMPUTED_FORMS = ("distance", "similarity")


def make_text_blobs(
    *,
    n_documents: int = 300,
    n_topics: int = 4,
    vocabulary_size: int = 500,
    words_per_document: int = 60,
    topic_sharpness: float = 8.0,
    random_state: RandomStateLike = 0,
) -> Dataset:
    """Synthetic TF-IDF-shaped corpus with planted topics (CSR, cosine).

    Each topic owns a block of "signature" vocabulary terms sampled far
    more often than the shared background terms (``topic_sharpness``
    controls the ratio).  Documents draw ``words_per_document`` terms from
    their topic's distribution, term counts become TF-IDF-style weights
    (log-scaled term frequency × inverse document frequency), and the
    result is an L2-normalised scipy CSR matrix — the natural operand for
    cosine distance.

    Parameters
    ----------
    n_documents:
        Corpus size; documents are split evenly over the topics (the first
        ``n_documents % n_topics`` topics get one extra document).
    n_topics:
        Number of planted topics (= ground-truth classes).
    vocabulary_size:
        Number of distinct terms (feature dimensionality).
    words_per_document:
        Terms drawn per document; controls per-row density.
    topic_sharpness:
        How strongly a topic's signature terms dominate its distribution;
        higher values produce better-separated topics.
    random_state:
        Seed; generation is deterministic given it.
    """
    if n_topics < 2:
        raise ValueError(f"n_topics must be >= 2, got {n_topics}")
    if vocabulary_size < n_topics:
        raise ValueError(
            f"vocabulary_size must be >= n_topics, got {vocabulary_size} < {n_topics}"
        )
    if n_documents < n_topics:
        raise ValueError(
            f"n_documents must be >= n_topics, got {n_documents} < {n_topics}"
        )
    rng = check_random_state(random_state)

    signature_width = vocabulary_size // (2 * n_topics)
    signature_width = max(signature_width, 1)
    topic_term = np.ones((n_topics, vocabulary_size), dtype=np.float64)
    for topic in range(n_topics):
        start = topic * signature_width
        topic_term[topic, start:start + signature_width] *= topic_sharpness
    topic_term /= topic_term.sum(axis=1, keepdims=True)

    sizes = np.full(n_topics, n_documents // n_topics, dtype=np.int64)
    sizes[: n_documents % n_topics] += 1
    y = np.repeat(np.arange(n_topics, dtype=np.int64), sizes)

    counts = np.zeros((n_documents, vocabulary_size), dtype=np.float64)
    for doc, topic in enumerate(y):
        drawn = rng.choice(vocabulary_size, size=words_per_document, p=topic_term[topic])
        np.add.at(counts[doc], drawn, 1.0)

    # TF-IDF shaping: log-scaled term frequency × smoothed inverse document
    # frequency, then L2 row normalisation (standard text preprocessing).
    document_frequency = (counts > 0).sum(axis=0)
    idf = np.log((1.0 + n_documents) / (1.0 + document_frequency)) + 1.0
    tfidf = np.log1p(counts) * idf[None, :]
    norms = np.linalg.norm(tfidf, axis=1)
    norms = np.where(norms == 0.0, 1.0, norms)
    tfidf /= norms[:, None]

    X = sparse.csr_matrix(tfidf)
    X.eliminate_zeros()
    return Dataset(
        name="text-like",
        X=X,
        y=y,
        description=(
            f"Synthetic TF-IDF corpus: {n_documents} documents over "
            f"{vocabulary_size} terms, {n_topics} planted topics "
            f"(sharpness {topic_sharpness})"
        ),
        meta={"density": float(X.nnz / (X.shape[0] * X.shape[1]))},
        metric="cosine",
    )


def load_precomputed_dataset(
    path: str | Path,
    *,
    form: str = "distance",
    name: str | None = None,
) -> Dataset:
    """Load a precomputed distance/similarity matrix from an ``.npz`` file.

    The archive must hold a square float ``matrix`` and an integer
    ``labels`` vector of matching length.  ``form="similarity"`` flips the
    matrix with :func:`repro.clustering.distances.similarity_to_distance`
    before validation; ``form="distance"`` validates it as-is (square,
    symmetric, non-negative, zero diagonal, no NaN).

    Raises
    ------
    ValueError
        On a missing file, missing keys, an invalid ``form``, or a matrix
        failing precomputed-distance validation.
    """
    if form not in PRECOMPUTED_FORMS:
        raise ValueError(f"form must be one of {PRECOMPUTED_FORMS}, got {form!r}")
    path = Path(path)
    if not path.exists():
        raise ValueError(f"precomputed matrix file not found: {path}")
    with np.load(path) as archive:
        missing = [key for key in ("matrix", "labels") if key not in archive.files]
        if missing:
            raise ValueError(
                f"{path} is missing required array(s): {', '.join(missing)} "
                f"(found: {', '.join(archive.files) or 'none'})"
            )
        matrix = np.asarray(archive["matrix"], dtype=np.float64)
        labels = np.asarray(archive["labels"])
    if form == "similarity":
        matrix = similarity_to_distance(matrix)
    matrix = validate_precomputed_distances(matrix, name=f"{path.name}:matrix")
    return Dataset(
        name=name or path.stem,
        X=matrix,
        y=labels,
        description=f"Precomputed {form} matrix loaded from {path.name}",
        meta={"source": str(path), "form": form},
        metric="precomputed",
    )
