"""Data substrates for the reproduction.

The paper evaluates on ALOI-k5 image subsets, four UCI data sets (Iris,
Wine, Ionosphere, Ecoli) and the Zyeast gene-expression data.  Since this
environment has no network access and ships no copies of those files, the
subpackage provides *synthetic analogues* with matching sizes, class
structures and qualitative geometry (see DESIGN.md for the substitution
rationale), plus loaders that pick up the real CSV files when available.

* :mod:`repro.datasets.base` — the :class:`Dataset` container.
* :mod:`repro.datasets.synthetic` — generic generators (blobs, moons,
  anisotropic and nested shapes).
* :mod:`repro.datasets.uci_like` — Iris/Wine/Ionosphere/Ecoli/Zyeast
  analogues.
* :mod:`repro.datasets.aloi` — the ALOI-k5-like collection.
* :mod:`repro.datasets.loaders` — CSV loading of real data when present.
* :mod:`repro.datasets.text` — sparse TF-IDF text blobs (cosine) and
  precomputed distance/similarity loading.
* :mod:`repro.datasets.registry` — name → factory lookup used by the
  experiment harness.
"""

from repro.datasets.base import Dataset
from repro.datasets.synthetic import (
    make_blobs,
    make_two_moons,
    make_anisotropic_blobs,
    make_nested_circles,
)
from repro.datasets.uci_like import (
    make_iris_like,
    make_wine_like,
    make_ionosphere_like,
    make_ecoli_like,
    make_zyeast_like,
)
from repro.datasets.aloi import make_aloi_k5_like, make_aloi_collection
from repro.datasets.loaders import load_csv_dataset, load_real_dataset
from repro.datasets.text import make_text_blobs, load_precomputed_dataset
from repro.datasets.registry import DATASET_NAMES, get_dataset, get_dataset_collection

__all__ = [
    "Dataset",
    "make_blobs",
    "make_two_moons",
    "make_anisotropic_blobs",
    "make_nested_circles",
    "make_iris_like",
    "make_wine_like",
    "make_ionosphere_like",
    "make_ecoli_like",
    "make_zyeast_like",
    "make_aloi_k5_like",
    "make_aloi_collection",
    "load_csv_dataset",
    "load_real_dataset",
    "make_text_blobs",
    "load_precomputed_dataset",
    "DATASET_NAMES",
    "get_dataset",
    "get_dataset_collection",
]
