"""Generic synthetic data generators.

These are the building blocks of the data-set analogues in
:mod:`repro.datasets.uci_like` and :mod:`repro.datasets.aloi`, and are also
useful on their own in the examples and tests (Gaussian blobs for k-means
friendly structure, moons/circles for density-based structure that a
partitional algorithm cannot capture).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomStateLike, check_random_state
from repro.utils.validation import check_positive_int


def make_blobs(
    n_samples_per_class: Sequence[int],
    n_features: int,
    *,
    center_spread: float = 8.0,
    cluster_std: float | Sequence[float] = 1.0,
    random_state: RandomStateLike = None,
    name: str = "blobs",
) -> Dataset:
    """Isotropic Gaussian blobs, one per class.

    Parameters
    ----------
    n_samples_per_class:
        Number of objects in every class (the length defines the number of
        classes).
    n_features:
        Dimensionality.
    center_spread:
        Scale of the uniform cube the class centers are drawn from.
    cluster_std:
        Standard deviation of each class (scalar or one per class).
    """
    check_positive_int(n_features, name="n_features")
    rng = check_random_state(random_state)
    n_classes = len(n_samples_per_class)
    if n_classes < 1:
        raise ValueError("need at least one class")

    stds = np.broadcast_to(np.asarray(cluster_std, dtype=np.float64), (n_classes,))
    centers = rng.uniform(-center_spread, center_spread, size=(n_classes, n_features))

    features = []
    labels = []
    for cls, (n_cls, std) in enumerate(zip(n_samples_per_class, stds)):
        check_positive_int(int(n_cls), name="n_samples_per_class entry")
        features.append(centers[cls] + rng.normal(scale=std, size=(n_cls, n_features)))
        labels.append(np.full(n_cls, cls, dtype=np.int64))
    return Dataset(
        name=name,
        X=np.vstack(features),
        y=np.concatenate(labels),
        description=f"{n_classes} isotropic Gaussian blobs in {n_features}-d",
    )


def make_anisotropic_blobs(
    n_samples_per_class: Sequence[int],
    n_features: int,
    *,
    center_spread: float = 8.0,
    anisotropy: float = 4.0,
    random_state: RandomStateLike = None,
    name: str = "anisotropic-blobs",
) -> Dataset:
    """Gaussian blobs stretched by a random linear map per class.

    Elongated clusters break the spherical assumption of plain k-means while
    remaining connected for density-based methods, which is exactly the
    regime where the paper observes MPCKMeans under-performing.
    """
    rng = check_random_state(random_state)
    base = make_blobs(
        n_samples_per_class,
        n_features,
        center_spread=center_spread,
        cluster_std=1.0,
        random_state=rng,
        name=name,
    )
    X = base.X.copy()
    for cls in np.unique(base.y):
        members = base.y == cls
        transform = np.eye(n_features) + rng.normal(scale=anisotropy / n_features,
                                                    size=(n_features, n_features))
        scales = rng.uniform(0.5, anisotropy, size=n_features)
        center = X[members].mean(axis=0)
        X[members] = (X[members] - center) * scales @ transform + center
    return Dataset(name=name, X=X, y=base.y,
                   description=f"anisotropic blobs ({len(n_samples_per_class)} classes)")


def make_two_moons(
    n_samples: int = 200,
    *,
    noise: float = 0.08,
    random_state: RandomStateLike = None,
    name: str = "two-moons",
) -> Dataset:
    """The classic interleaved half-circles (non-convex, density-friendly)."""
    check_positive_int(n_samples, name="n_samples")
    rng = check_random_state(random_state)
    n_upper = n_samples // 2
    n_lower = n_samples - n_upper

    theta_upper = rng.uniform(0.0, np.pi, size=n_upper)
    theta_lower = rng.uniform(0.0, np.pi, size=n_lower)
    upper = np.column_stack([np.cos(theta_upper), np.sin(theta_upper)])
    lower = np.column_stack([1.0 - np.cos(theta_lower), 0.5 - np.sin(theta_lower)])

    X = np.vstack([upper, lower]) + rng.normal(scale=noise, size=(n_samples, 2))
    y = np.concatenate([np.zeros(n_upper, dtype=np.int64), np.ones(n_lower, dtype=np.int64)])
    return Dataset(name=name, X=X, y=y, description="two interleaved half-moons in 2-d")


def make_nested_circles(
    n_samples: int = 200,
    *,
    noise: float = 0.05,
    radius_ratio: float = 0.45,
    random_state: RandomStateLike = None,
    name: str = "nested-circles",
) -> Dataset:
    """Two concentric rings — impossible for k-means, easy for density methods."""
    check_positive_int(n_samples, name="n_samples")
    rng = check_random_state(random_state)
    n_outer = n_samples // 2
    n_inner = n_samples - n_outer

    theta_outer = rng.uniform(0.0, 2 * np.pi, size=n_outer)
    theta_inner = rng.uniform(0.0, 2 * np.pi, size=n_inner)
    outer = np.column_stack([np.cos(theta_outer), np.sin(theta_outer)])
    inner = radius_ratio * np.column_stack([np.cos(theta_inner), np.sin(theta_inner)])

    X = np.vstack([outer, inner]) + rng.normal(scale=noise, size=(n_samples, 2))
    y = np.concatenate([np.zeros(n_outer, dtype=np.int64), np.ones(n_inner, dtype=np.int64)])
    return Dataset(name=name, X=X, y=y, description="two concentric noisy circles in 2-d")


def embed_in_higher_dimension(
    dataset: Dataset,
    n_features: int,
    *,
    noise: float = 0.05,
    random_state: RandomStateLike = None,
) -> Dataset:
    """Embed a low-dimensional data set into ``n_features`` dimensions.

    The original features are mapped through a random orthonormal-ish linear
    map and Gaussian noise fills the remaining directions — mimicking
    high-dimensional descriptors (e.g. the 144-d colour moments of ALOI)
    whose intrinsic structure is low-dimensional.
    """
    rng = check_random_state(random_state)
    original_dim = dataset.n_features
    if n_features < original_dim:
        raise ValueError(
            f"target dimension {n_features} is smaller than the original {original_dim}"
        )
    projection = rng.normal(size=(original_dim, n_features))
    # Orthonormalise the rows so distances are roughly preserved.
    q, _ = np.linalg.qr(projection.T)
    projection = q[:, :original_dim].T
    X = dataset.X @ projection + rng.normal(scale=noise, size=(dataset.n_samples, n_features))
    return Dataset(
        name=dataset.name,
        X=X,
        y=dataset.y.copy(),
        description=dataset.description + f", embedded in {n_features}-d",
        meta=dict(dataset.meta, embedded_from=original_dim),
    )
