"""Name-based access to the data sets used in the experiments.

The experiment harness refers to data sets by the names the paper uses
(``"ALOI"``, ``"Iris"``, ``"Wine"``, ``"Ionosphere"``, ``"Ecoli"``,
``"Zyeast"``).  :func:`get_dataset` resolves a name to a single data set
(preferring a real CSV under ``data/`` when present, otherwise the synthetic
analogue); :func:`get_dataset_collection` resolves collection names (ALOI)
to a list of data sets.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.datasets.aloi import make_aloi_collection, make_aloi_k5_like
from repro.datasets.base import Dataset
from repro.datasets.loaders import DEFAULT_DATA_DIR, load_real_dataset
from repro.datasets.text import make_text_blobs
from repro.datasets.uci_like import (
    make_ecoli_like,
    make_ionosphere_like,
    make_iris_like,
    make_wine_like,
    make_zyeast_like,
)
from repro.utils.rng import RandomStateLike

_SINGLE_FACTORIES: dict[str, Callable[..., Dataset]] = {
    "iris": make_iris_like,
    "wine": make_wine_like,
    "ionosphere": make_ionosphere_like,
    "ecoli": make_ecoli_like,
    "zyeast": make_zyeast_like,
    "aloi": make_aloi_k5_like,
    "text": make_text_blobs,
}

#: Canonical data-set names in the order the paper's tables use, plus the
#: synthetic text corpus ("Text": sparse TF-IDF blobs, cosine metric).
DATASET_NAMES = ("ALOI", "Iris", "Wine", "Ionosphere", "Ecoli", "Zyeast", "Text")


def _normalise(name: str) -> str:
    return name.strip().lower().replace("-like", "")


def get_dataset(
    name: str,
    *,
    random_state: RandomStateLike = 0,
    data_dir: str | Path = DEFAULT_DATA_DIR,
    prefer_real: bool = True,
    metric: str | None = None,
) -> Dataset:
    """Return a single data set by (paper) name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES` (case-insensitive).  ``"ALOI"`` returns
        one representative ALOI-like data set; use
        :func:`get_dataset_collection` for the whole collection.
    random_state:
        Seed for the synthetic analogue.
    data_dir:
        Directory searched for a real CSV (``<name>.csv``).
    prefer_real:
        If true (default), a real CSV takes precedence over the analogue.
    metric:
        Override the data set's evaluation metric (``"euclidean"`` or
        ``"cosine"``); ``None`` keeps the data set's own default
        (euclidean for the UCI-style sets, cosine for ``"Text"``).
    """
    key = _normalise(name)
    if key not in _SINGLE_FACTORIES:
        raise KeyError(
            f"unknown data set {name!r}; available names: {', '.join(DATASET_NAMES)}"
        )
    if prefer_real:
        real = load_real_dataset(key, data_dir=data_dir)
        if real is not None:
            return real.with_metric(metric) if metric is not None else real
    dataset = _SINGLE_FACTORIES[key](random_state=random_state)
    if metric is not None:
        dataset = dataset.with_metric(metric)
    return dataset


def get_dataset_collection(
    name: str,
    *,
    n_datasets: int = 100,
    random_state: RandomStateLike = 0,
    metric: str | None = None,
) -> list[Dataset]:
    """Return a collection of data sets by name.

    ``"ALOI"`` yields ``n_datasets`` ALOI-k5-like data sets (the paper uses
    100); any other name yields a singleton list with that data set, so the
    experiment drivers can treat every data source uniformly.  ``metric``
    overrides the evaluation metric of every returned data set.
    """
    key = _normalise(name)
    if key == "aloi":
        collection = make_aloi_collection(n_datasets, random_state=random_state)
        if metric is not None:
            collection = [dataset.with_metric(metric) for dataset in collection]
        return collection
    return [get_dataset(name, random_state=random_state, metric=metric)]
