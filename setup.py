"""Setup shim for environments without the `wheel` package.

``pip install -e . --no-build-isolation`` falls back to this legacy path
when PEP 517 editable builds are unavailable.
"""
from setuptools import setup

setup()
