"""Tests for the tiered distance backends (dense / blockwise / memmap / neighbors).

Covers the bit-identity contract across the exact tiers and executors, the memmap
spill lifecycle (atomic writes, exception cleanup, reuse, kill-resume,
process-backend sharing), and the cache-stats parity across backends.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.clustering.distances import DEFAULT_BLOCK_ROWS, pairwise_distances
from repro.clustering.fosc import FOSCOpticsDend
from repro.clustering.hierarchy import DensityHierarchy, mutual_reachability
from repro.clustering.optics import OPTICS
from repro.core.cvcp import CVCP
from repro.core.executor import ExecutionSpec
from repro.core.distance_backend import (
    DEFAULT_DISTANCE_BACKEND,
    DISTANCE_BACKEND_ENV_VAR,
    DISTANCE_BACKENDS,
    EXACT_DISTANCE_BACKENDS,
    SPILL_DIR_ENV_VAR,
    BlockwiseBackend,
    DenseBackend,
    MemmapBackend,
    clear_spill_directory,
    get_distance_backend,
    resolve_distance_backend,
    spill_directory,
)
from repro.datasets.synthetic import make_blobs
from repro.utils.cache import (
    cached_pairwise_distances,
    clear_distance_cache,
    distance_cache_stats,
)

#: A size spanning multiple canonical panels (n > DEFAULT_BLOCK_ROWS).
MULTI_PANEL_N = DEFAULT_BLOCK_ROWS + 88


@pytest.fixture()
def spill_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path / "spill"))
    clear_distance_cache()
    yield tmp_path / "spill"
    clear_distance_cache()


@pytest.fixture(scope="module")
def big_blobs():
    return make_blobs(
        [MULTI_PANEL_N // 3, MULTI_PANEL_N // 3, MULTI_PANEL_N - 2 * (MULTI_PANEL_N // 3)],
        3,
        center_spread=9.0,
        cluster_std=1.0,
        random_state=5,
        name="backend-blobs",
    )


class TestResolution:
    def test_default_is_dense(self, monkeypatch):
        monkeypatch.delenv(DISTANCE_BACKEND_ENV_VAR, raising=False)
        assert resolve_distance_backend(None) == DEFAULT_DISTANCE_BACKEND == "dense"

    def test_env_var_is_consulted(self, monkeypatch):
        monkeypatch.setenv(DISTANCE_BACKEND_ENV_VAR, "blockwise")
        assert resolve_distance_backend(None) == "blockwise"
        assert resolve_distance_backend("memmap") == "memmap"  # argument wins

    def test_unknown_argument_rejected(self):
        with pytest.raises(ValueError, match="distance_backend"):
            resolve_distance_backend("ram-disk")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(DISTANCE_BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match=DISTANCE_BACKEND_ENV_VAR):
            resolve_distance_backend(None)

    def test_get_backend_returns_shared_instances(self):
        assert get_distance_backend("dense") is get_distance_backend("dense")
        assert isinstance(get_distance_backend("dense"), DenseBackend)
        assert isinstance(get_distance_backend("blockwise"), BlockwiseBackend)
        assert isinstance(get_distance_backend("memmap"), MemmapBackend)

    def test_block_rows_policy(self):
        assert get_distance_backend("dense").block_rows(10_000) is None
        assert get_distance_backend("blockwise").block_rows(10_000) == DEFAULT_BLOCK_ROWS
        assert get_distance_backend("memmap").block_rows(10_000) == DEFAULT_BLOCK_ROWS


class TestMatrixBitIdentity:
    @pytest.mark.parametrize("metric", ["euclidean", "sqeuclidean", "manhattan", "cosine"])
    def test_all_tiers_bitwise_identical_across_panels(self, spill_dir, big_blobs, metric):
        matrices = {
            name: np.asarray(get_distance_backend(name).pairwise(big_blobs.X, metric=metric))
            for name in EXACT_DISTANCE_BACKENDS
        }
        assert np.array_equal(matrices["dense"], matrices["blockwise"])
        assert np.array_equal(matrices["blockwise"], matrices["memmap"])

    def test_single_panel_matches_legacy_full_matrix_formula(self, big_blobs):
        """For n <= DEFAULT_BLOCK_ROWS the result is the historical computation."""
        X = big_blobs.X[:200]
        x_sq = np.einsum("ij,ij->i", X, X)
        squared = x_sq[:, None] + x_sq[None, :] - 2.0 * (X @ X.T)
        np.maximum(squared, 0.0, out=squared)
        np.fill_diagonal(squared, 0.0)
        legacy = np.sqrt(squared, out=squared)
        assert np.array_equal(pairwise_distances(X), legacy)

    def test_mutual_reachability_streams_bitwise_identically(self, big_blobs):
        distances = pairwise_distances(big_blobs.X)
        core = distances[:, 5].copy()
        whole = mutual_reachability(distances, core)
        streamed = mutual_reachability(distances, core, block_rows=97)
        into = mutual_reachability(
            distances, core, out=np.empty_like(whole), block_rows=DEFAULT_BLOCK_ROWS
        )
        assert np.array_equal(whole, streamed)
        assert np.array_equal(whole, into)


class TestClusteringParity:
    def test_fosc_and_optics_labels_bitwise_identical(self, spill_dir, big_blobs):
        fosc_labels, optics_out = {}, {}
        for name in EXACT_DISTANCE_BACKENDS:
            clear_distance_cache()
            fosc_labels[name] = FOSCOpticsDend(min_pts=5, distance_backend=name).fit(
                big_blobs.X
            ).labels_
            fitted = OPTICS(min_pts=5, distance_backend=name).fit(big_blobs.X)
            optics_out[name] = (fitted.ordering_, fitted.reachability_, fitted.core_distances_)
        for name in EXACT_DISTANCE_BACKENDS[1:]:
            assert np.array_equal(fosc_labels["dense"], fosc_labels[name])
            for reference, observed in zip(optics_out["dense"], optics_out[name]):
                assert np.array_equal(reference, observed)

    def test_density_hierarchy_artifacts_bitwise_identical(self, spill_dir, big_blobs):
        reference = None
        for name in EXACT_DISTANCE_BACKENDS:
            clear_distance_cache()
            fitted = DensityHierarchy(5, distance_backend=name).fit(big_blobs.X)
            observed = (
                fitted.core_distances_,
                np.asarray(fitted.mutual_reachability_),
                fitted.mst_edges_,
                fitted.single_linkage_tree_,
            )
            if reference is None:
                reference = observed
            else:
                for left, right in zip(reference, observed):
                    assert np.array_equal(left, right)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_cvcp_grid_identical_across_executors_and_tiers(
        self, spill_dir, blobs_dataset, executor
    ):
        reference = None
        labeled = {0: 0, 5: 0, 21: 1, 26: 1, 41: 2, 46: 2, 10: 0, 30: 1}
        for name in EXACT_DISTANCE_BACKENDS:
            clear_distance_cache()
            search = CVCP(
                FOSCOpticsDend(min_pts=5),
                parameter_values=[3, 6],
                n_folds=3,
                random_state=11,
                execution=ExecutionSpec(
                    backend=executor, n_jobs=2, distance_backend=name
                ),
            )
            search.fit(blobs_dataset.X, labeled_objects=labeled)
            observed = (
                search.best_params_,
                [evaluation.fold_scores for evaluation in search.cv_results_.evaluations],
                search.labels_.tolist(),
            )
            if reference is None:
                reference = observed
            else:
                assert observed == reference

    def test_cvcp_override_reaches_estimator_clones(self, spill_dir):
        search = CVCP(
            FOSCOpticsDend(min_pts=5),
            parameter_values=[3, 6],
            execution=ExecutionSpec(distance_backend="blockwise"),
        )
        clone = search._make_estimator(6, seed=1)
        assert clone.distance_backend == "blockwise"
        assert search._effective_distance_backend() == "blockwise"

    def test_cvcp_defers_to_estimator_setting_when_unset(self):
        search = CVCP(
            FOSCOpticsDend(min_pts=5, distance_backend="memmap"),
            parameter_values=[3, 6],
        )
        assert search._effective_distance_backend() == "memmap"
        assert search._make_estimator(3, seed=1).distance_backend == "memmap"

    def test_cvcp_rejects_unknown_distance_backend(self):
        with pytest.raises(ValueError, match="distance_backend"):
            CVCP(
                FOSCOpticsDend(),
                parameter_values=[3],
                execution=ExecutionSpec(distance_backend="bogus"),
            )


class TestMemmapSpillLifecycle:
    def test_spill_file_created_read_only_and_reused(self, spill_dir, big_blobs, monkeypatch):
        backend = get_distance_backend("memmap")
        matrix = backend.pairwise(big_blobs.X)
        assert isinstance(matrix, np.memmap)
        assert not matrix.flags.writeable
        finished = [p for p in spill_dir.iterdir() if p.suffix == ".dmm"]
        assert len(finished) == 1
        assert not [p for p in spill_dir.iterdir() if ".tmp-" in p.name]
        stat_before = finished[0].stat()

        fills = {"count": 0}
        original = MemmapBackend._fill_spill

        def counting(self, path, X, metric):
            fills["count"] += 1
            return original(self, path, X, metric)

        monkeypatch.setattr(MemmapBackend, "_fill_spill", counting)
        again = backend.pairwise(big_blobs.X)
        assert fills["count"] == 0  # the finished spill was mapped, not recomputed
        assert np.array_equal(np.asarray(matrix), np.asarray(again))
        stat_after = finished[0].stat()
        assert (stat_before.st_ino, stat_before.st_mtime_ns) == (
            stat_after.st_ino, stat_after.st_mtime_ns,
        )

    def test_exception_mid_fill_cleans_up_the_temp_file(self, spill_dir, big_blobs, monkeypatch):
        import repro.clustering.distances as distances_module

        calls = {"count": 0}
        original = distances_module.pairwise_distances

        def failing(X, metric="euclidean", **kwargs):
            if kwargs.get("out") is not None:
                calls["count"] += 1
                raise RuntimeError("disk exploded mid-panel")
            return original(X, metric=metric, **kwargs)

        monkeypatch.setattr(distances_module, "pairwise_distances", failing)
        with pytest.raises(RuntimeError, match="disk exploded"):
            get_distance_backend("memmap").pairwise(big_blobs.X)
        assert calls["count"] == 1
        assert list(spill_dir.iterdir()) == []  # no finished file, no stale temp

    def test_derived_matrix_is_ephemeral_and_usable(self, spill_dir):
        backend = get_distance_backend("memmap")
        derived = backend.derived_matrix(64, "mreach")
        assert derived.shape == (64, 64)
        derived[:] = 7.0
        backend.release(derived)
        assert float(derived[13, 21]) == 7.0  # released pages fault back in
        # Unlinked immediately: the spill directory holds no entry for it.
        assert list(spill_dir.iterdir()) == []

    def test_clear_spill_directory_removes_finished_and_stale_files(self, spill_dir, big_blobs):
        get_distance_backend("memmap").pairwise(big_blobs.X)
        stale = spill_directory() / f"deadbeef-600.dmm.tmp-{os.getpid()}"
        stale.write_bytes(b"partial")
        assert clear_spill_directory() == 2
        assert list(spill_dir.iterdir()) == []

    def test_killed_writer_leaves_resumable_directory(self, spill_dir, big_blobs, tmp_path):
        """A run killed mid-spill-write is resumed by the next run in the same dir."""
        script = tmp_path / "writer.py"
        script.write_text(
            textwrap.dedent(
                """
                import sys, time
                import numpy as np
                from repro.cli.bench_scale import scale_dataset
                from repro.core import distance_backend as db

                X = scale_dataset(int(sys.argv[1])).X
                backend = db.get_distance_backend("memmap")
                original = db.MemmapBackend._fill_spill

                def slow(self, path, X, metric):
                    def stall(start, stop):
                        print("PANEL-WRITTEN", flush=True)
                        time.sleep(60)
                    from repro.clustering.distances import pairwise_distances
                    import os
                    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
                    matrix = np.memmap(tmp, dtype=np.float64, mode="w+",
                                       shape=(X.shape[0], X.shape[0]))
                    pairwise_distances(X, metric=metric, out=matrix, panel_done=stall)

                db.MemmapBackend._fill_spill = slow
                backend.pairwise(X)
                """
            ),
            encoding="utf-8",
        )
        env = dict(os.environ)
        env[SPILL_DIR_ENV_VAR] = str(spill_dir)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        n = MULTI_PANEL_N
        child = subprocess.Popen(
            [sys.executable, str(script), str(n)], env=env, stdout=subprocess.PIPE, text=True
        )
        assert child.stdout.readline().strip() == "PANEL-WRITTEN"
        os.kill(child.pid, signal.SIGKILL)
        child.wait()
        time.sleep(0.05)
        stale = [p for p in spill_dir.iterdir() if ".tmp-" in p.name]
        assert stale, "the killed writer should leave its partial temp file"

        # The same spill directory resumes: the fresh run ignores the stale
        # temp, completes atomically, and later runs reuse its finished file.
        matrix = get_distance_backend("memmap").pairwise(big_blobs.X)
        finished = [p for p in spill_dir.iterdir() if p.suffix == ".dmm"]
        assert len(finished) == 1
        assert np.array_equal(np.asarray(matrix), pairwise_distances(big_blobs.X))

    def test_concurrent_fills_without_memo_do_not_collide(self, spill_dir, big_blobs):
        """With the memo disabled, racing thread fills each rename their own temp."""
        import concurrent.futures

        from repro.utils.cache import configure_distance_cache

        configure_distance_cache(0)  # every request computes — no memo lock
        try:
            backend = get_distance_backend("memmap")
            with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
                first, second = pool.map(
                    lambda _: backend.pairwise(big_blobs.X), range(2)
                )
        finally:
            configure_distance_cache(8)
        assert np.array_equal(np.asarray(first), np.asarray(second))
        finished = [p for p in spill_dir.iterdir() if p.suffix == ".dmm"]
        assert len(finished) == 1
        assert not [p for p in spill_dir.iterdir() if ".tmp-" in p.name]

    def test_memmap_warm_happens_even_under_spawn(self, spill_dir, blobs_dataset, monkeypatch):
        """The spill pre-warm is not gated on the fork start method."""
        import repro.core.cvcp as cvcp_module

        monkeypatch.setattr(cvcp_module.multiprocessing, "get_start_method", lambda: "spawn")
        warmed = []
        original = cvcp_module.cached_pairwise_distances

        def recording(X, metric="euclidean", **kwargs):
            warmed.append(kwargs.get("distance_backend"))
            return original(X, metric=metric, **kwargs)

        monkeypatch.setattr(cvcp_module, "cached_pairwise_distances", recording)
        labeled = {0: 0, 5: 0, 21: 1, 26: 1, 41: 2, 46: 2}
        search = CVCP(
            FOSCOpticsDend(min_pts=5),
            parameter_values=[3],
            n_folds=2,
            random_state=0,
            # n_jobs=1 falls back inline: no real spawn cost in the test
            execution=ExecutionSpec(
                backend="process", n_jobs=1, distance_backend="memmap"
            ),
        )
        search.fit(blobs_dataset.X, labeled_objects=labeled)
        assert warmed and warmed[0] == "memmap"
        assert [p for p in spill_dir.iterdir() if p.suffix == ".dmm"]

    def test_process_executor_workers_map_the_same_spill(self, spill_dir, big_blobs):
        """A process-backend CVCP run produces exactly one spill per (X, metric)."""
        labeled = {i: int(big_blobs.y[i]) for i in range(0, 90, 10)}
        search = CVCP(
            FOSCOpticsDend(min_pts=5),
            parameter_values=[3, 6],
            n_folds=3,
            random_state=2,
            execution=ExecutionSpec(
                backend="process", n_jobs=2, distance_backend="memmap"
            ),
        )
        search.fit(big_blobs.X, labeled_objects=labeled)
        finished = [p for p in spill_dir.iterdir() if p.suffix == ".dmm"]
        assert len(finished) == 1  # parent wrote it; workers mapped, never re-spilled
        assert not [p for p in spill_dir.iterdir() if ".tmp-" in p.name]


class TestCacheIntegration:
    def test_hit_miss_stats_identical_across_backends(self, spill_dir, big_blobs):
        observed = {}
        for name in EXACT_DISTANCE_BACKENDS:
            clear_distance_cache()
            FOSCOpticsDend(min_pts=5, distance_backend=name).fit(big_blobs.X)
            FOSCOpticsDend(min_pts=8, distance_backend=name).fit(big_blobs.X)
            OPTICS(min_pts=5, distance_backend=name).fit(big_blobs.X)
            stats = distance_cache_stats()
            observed[name] = (stats.hits, stats.misses, stats.size)
        assert observed["dense"] == observed["blockwise"] == observed["memmap"]
        assert observed["dense"] == (2, 1, 1)

    def test_backends_do_not_share_cache_entries(self, spill_dir, big_blobs):
        clear_distance_cache()
        dense = cached_pairwise_distances(big_blobs.X, distance_backend="dense")
        memmapped = cached_pairwise_distances(big_blobs.X, distance_backend="memmap")
        assert not isinstance(dense, np.memmap)
        assert isinstance(memmapped, np.memmap)
        stats = distance_cache_stats()
        assert (stats.hits, stats.misses) == (0, 2)
        assert np.array_equal(dense, np.asarray(memmapped))

    def test_env_var_reaches_the_cached_path(self, spill_dir, big_blobs, monkeypatch):
        monkeypatch.setenv(DISTANCE_BACKEND_ENV_VAR, "memmap")
        clear_distance_cache()
        matrix = cached_pairwise_distances(big_blobs.X)
        assert isinstance(matrix, np.memmap)
