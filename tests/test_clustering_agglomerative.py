"""Unit tests for agglomerative hierarchical clustering."""

import numpy as np
import pytest

from repro.clustering import AgglomerativeClustering
from repro.evaluation import adjusted_rand_index


class TestAgglomerativeClustering:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_recovers_separated_blobs(self, blobs_dataset, linkage):
        model = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit(blobs_dataset.X)
        assert adjusted_rand_index(blobs_dataset.y, model.labels_) > 0.95

    def test_single_linkage_handles_moons(self, moons_dataset):
        model = AgglomerativeClustering(n_clusters=2, linkage="single").fit(moons_dataset.X)
        assert adjusted_rand_index(moons_dataset.y, model.labels_) > 0.8

    def test_number_of_clusters_is_respected(self, blobs_dataset):
        for k in (1, 2, 4, 7):
            model = AgglomerativeClustering(n_clusters=k).fit(blobs_dataset.X)
            assert model.n_clusters_ == k

    def test_merge_tree_shape(self, blobs_dataset):
        model = AgglomerativeClustering(n_clusters=2).fit(blobs_dataset.X)
        assert model.merge_tree_.shape == (blobs_dataset.n_samples - 1, 4)
        # Final merge contains everything.
        assert model.merge_tree_[-1, 3] == blobs_dataset.n_samples

    def test_average_linkage_merge_distances_monotone(self, blobs_dataset):
        model = AgglomerativeClustering(n_clusters=2, linkage="average").fit(blobs_dataset.X)
        distances = model.merge_tree_[:, 2]
        assert (np.diff(distances) >= -1e-9).all()

    def test_invalid_linkage(self, blobs_dataset):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=2, linkage="ward").fit(blobs_dataset.X)

    def test_too_many_clusters(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=5).fit(np.zeros((3, 2)))

    def test_n_clusters_equals_n_samples(self):
        X = np.arange(8, dtype=float).reshape(4, 2)
        model = AgglomerativeClustering(n_clusters=4).fit(X)
        assert model.n_clusters_ == 4

    def test_usable_inside_cvcp(self, blobs_dataset, rng):
        """An unsupervised estimator can still be model-selected by CVCP."""
        from repro.constraints import sample_labeled_objects
        from repro.core import CVCP

        side = sample_labeled_objects(blobs_dataset.y, 0.2, random_state=0)
        search = CVCP(AgglomerativeClustering(linkage="average"), [2, 3, 4, 5],
                      n_folds=3, random_state=0)
        search.fit(blobs_dataset.X, labeled_objects=side)
        assert search.best_params_["n_clusters"] == 3
