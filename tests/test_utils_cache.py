"""Tests for the memoised distance cache."""

import threading

import numpy as np
import pytest

from repro.clustering import FOSCOpticsDend
from repro.clustering.distances import pairwise_distances
from repro.constraints import sample_labeled_objects
from repro.core import CVCP
from repro.utils.cache import (
    MemoCache,
    array_fingerprint,
    cached_pairwise_distances,
    clear_distance_cache,
    distance_cache_stats,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_distance_cache()
    yield
    clear_distance_cache()


class TestArrayFingerprint:
    def test_copies_share_a_fingerprint(self):
        X = np.random.default_rng(0).normal(size=(30, 4))
        assert array_fingerprint(X) == array_fingerprint(X.copy())

    def test_content_changes_the_fingerprint(self):
        X = np.random.default_rng(0).normal(size=(30, 4))
        Y = X.copy()
        Y[0, 0] += 1.0
        assert array_fingerprint(X) != array_fingerprint(Y)

    def test_shape_distinguishes_reshapes(self):
        X = np.arange(12, dtype=np.float64)
        assert array_fingerprint(X.reshape(3, 4)) != array_fingerprint(X.reshape(4, 3))


class TestMemoCache:
    def test_hit_and_miss_accounting(self):
        cache = MemoCache(max_items=4)
        calls = []
        for key in ["a", "b", "a", "a", "b"]:
            cache.get_or_compute(key, lambda key=key: calls.append(key))
        stats = cache.stats()
        assert stats.misses == 2
        assert stats.hits == 3
        assert stats.requests == 5
        assert stats.hit_rate == pytest.approx(0.6)
        assert calls == ["a", "b"]

    def test_lru_eviction(self):
        cache = MemoCache(max_items=2)
        for key in ["a", "b", "c"]:
            cache.get_or_compute(key, lambda key=key: key.upper())
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2
        # "a" was evicted; asking again recomputes.
        cache.get_or_compute("a", lambda: "A")
        assert cache.stats().misses == 4

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            MemoCache(max_items=-1)
        with pytest.raises(ValueError):
            MemoCache(max_bytes=-1)

    def test_zero_items_disables_caching(self):
        cache = MemoCache(max_items=0)
        calls = []
        for _ in range(3):
            cache.get_or_compute("k", lambda: calls.append(1))
        assert len(calls) == 3
        assert cache.stats().size == 0

    def test_byte_bound_evicts_oldest(self):
        cache = MemoCache(max_items=10, max_bytes=100)
        a = np.zeros(8)   # 64 bytes
        b = np.zeros(8)   # 64 bytes -> total 128 > 100, evict "a"
        cache.get_or_compute("a", lambda: a)
        cache.get_or_compute("b", lambda: b)
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 1
        assert stats.bytes == 64

    def test_byte_bound_keeps_a_single_oversized_entry(self):
        cache = MemoCache(max_items=10, max_bytes=10)
        big = np.zeros(100)
        assert cache.get_or_compute("big", lambda: big) is big
        assert cache.stats().size == 1

    def test_concurrent_access_computes_once(self):
        cache = MemoCache()
        computed = []

        def compute():
            computed.append(1)
            return "value"

        def worker():
            cache.get_or_compute("key", compute)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(computed) == 1
        assert cache.stats().hits == 7


class TestCachedPairwiseDistances:
    def test_matches_uncached_computation(self):
        X = np.random.default_rng(1).normal(size=(40, 3))
        for metric in ("euclidean", "manhattan", "cosine"):
            assert np.array_equal(
                cached_pairwise_distances(X, metric), pairwise_distances(X, metric=metric)
            )

    def test_copy_of_the_data_hits(self):
        X = np.random.default_rng(1).normal(size=(40, 3))
        first = cached_pairwise_distances(X)
        second = cached_pairwise_distances(X.copy())
        assert first is second
        stats = distance_cache_stats()
        assert (stats.misses, stats.hits) == (1, 1)

    def test_returned_matrix_is_read_only(self):
        X = np.random.default_rng(1).normal(size=(10, 2))
        matrix = cached_pairwise_distances(X)
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_metrics_are_cached_separately(self):
        X = np.random.default_rng(1).normal(size=(10, 2))
        cached_pairwise_distances(X, "euclidean")
        cached_pairwise_distances(X, "manhattan")
        assert distance_cache_stats().misses == 2


class TestCVCPGridCacheReuse:
    def test_grid_computes_the_matrix_once(self, blobs_dataset):
        """Every (value × fold) cell of a density sweep shares one matrix."""
        from repro.clustering.hierarchy import structure_cache_stats

        side = sample_labeled_objects(blobs_dataset.y, 0.20, random_state=3)
        search = CVCP(FOSCOpticsDend(), parameter_values=[3, 5, 8], n_folds=4,
                      random_state=0, refit=True)
        search.fit(blobs_dataset.X, labeled_objects=side)
        stats = distance_cache_stats()
        assert stats.misses == 1, "the O(n²) matrix should be computed exactly once"
        # The structure memo absorbs the per-cell fits: one structure build
        # per parameter value (each hitting the shared distance matrix),
        # then 3 values × 4 folds + 1 refit = 13 fits all re-extract.
        structure = structure_cache_stats()
        assert structure.misses == 3
        assert structure.hits >= 10
        assert stats.hits >= 2
