"""Tests for ``distance_backend="neighbors"`` as a full execution tier.

Mirrors ``tests/test_distance_backend.py`` one tier up: the parity matrix
across the serial/thread/process executors and both kernel modes, the
``ExecutionSpec``/``validate-config`` surface for ``epsilon``/``k_neighbors``,
the consumers that must reject the tier with a clear problem instead of a
traceback, and the artifact-store fingerprinting contract (exact tiers
share entries; ``neighbors`` never does).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.fosc import FOSCOpticsDend
from repro.core.cvcp import CVCP
from repro.core.distance_backend import (
    DISTANCE_BACKENDS,
    EXACT_DISTANCE_BACKENDS,
    get_distance_backend,
)
from repro.core.executor import ExecutionSpec
from repro.experiments import ExperimentConfig, run_trial, trial_artifact_key
from repro.experiments.artifacts import ArtifactStore, key_digest
from repro.experiments.pipeline import validate_pipeline_file
from repro.experiments.runner import algorithm_factory
from repro.utils.cache import clear_distance_cache
from repro.utils.specs import SpecError

EXECUTORS = ("serial", "thread", "process")
KERNEL_MODES = ("vectorized", "reference")

LABELED = {0: 0, 5: 0, 21: 1, 26: 1, 41: 2, 46: 2, 10: 0, 30: 1}


def cvcp_observation(dataset, *, kernels, spec):
    """Fit one CVCP grid and return its comparable outcome tuple."""
    clear_distance_cache()
    search = CVCP(
        FOSCOpticsDend(min_pts=5, kernels=kernels),
        parameter_values=[3, 6],
        n_folds=3,
        random_state=11,
        execution=spec,
    )
    search.fit(dataset.X, labeled_objects=LABELED)
    return (
        search.best_params_,
        [evaluation.fold_scores for evaluation in search.cv_results_.evaluations],
        search.labels_.tolist(),
    )


class TestBackendRegistry:
    def test_neighbors_extends_the_exact_tiers(self):
        assert DISTANCE_BACKENDS == EXACT_DISTANCE_BACKENDS + ("neighbors",)
        assert "neighbors" not in EXACT_DISTANCE_BACKENDS

    def test_full_matrix_requests_are_rejected_with_guidance(self):
        backend = get_distance_backend("neighbors")
        with pytest.raises(ValueError, match="cannot materialise"):
            backend.pairwise(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="cannot materialise"):
            backend.derived_matrix(4, "mreach")


class TestExecutionSpecSurface:
    def test_epsilon_and_k_round_trip_through_spec(self):
        spec = ExecutionSpec(distance_backend="neighbors", epsilon=2.5, k_neighbors=16)
        payload = spec.to_spec()
        assert payload["epsilon"] == 2.5
        assert payload["k_neighbors"] == 16
        assert ExecutionSpec.from_spec(payload) == spec

    def test_unset_knobs_are_omitted_from_the_payload(self):
        payload = ExecutionSpec(distance_backend="neighbors").to_spec()
        assert "epsilon" not in payload and "k_neighbors" not in payload

    @pytest.mark.parametrize("bad", [0, -1.5, float("nan"), True, "wide"])
    def test_bad_epsilon_is_a_spec_error(self, bad):
        with pytest.raises(SpecError, match="execution.epsilon"):
            ExecutionSpec(distance_backend="neighbors", epsilon=bad)

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "many"])
    def test_bad_k_neighbors_is_a_spec_error(self, bad):
        with pytest.raises(SpecError, match="execution.k_neighbors"):
            ExecutionSpec(distance_backend="neighbors", k_neighbors=bad)

    @pytest.mark.parametrize("backend", EXACT_DISTANCE_BACKENDS)
    def test_knobs_with_an_exact_tier_are_rejected(self, backend):
        with pytest.raises(SpecError, match="only meaningful"):
            ExecutionSpec(distance_backend=backend, epsilon=2.0)
        with pytest.raises(SpecError, match="only meaningful"):
            ExecutionSpec(distance_backend=backend, k_neighbors=8)

    def test_knobs_without_a_backend_are_allowed(self):
        # distance_backend=None defers to the environment, which may well
        # resolve to "neighbors" — the pairing check cannot reject that.
        spec = ExecutionSpec(epsilon=2.0, k_neighbors=8)
        assert spec.epsilon == 2.0 and spec.k_neighbors == 8


class TestParityMatrix:
    """Satellite 2: neighbors × executors × kernel modes.

    In the exhaustive regime every axis must reproduce the dense/serial
    reference bit-for-bit; at a fixed practical epsilon the observations
    must be identical across axes (deterministic), whatever they are.
    """

    @pytest.fixture(scope="class")
    def dense_reference(self, blobs_dataset):
        return cvcp_observation(
            blobs_dataset,
            kernels="vectorized",
            spec=ExecutionSpec(backend="serial", distance_backend="dense"),
        )

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("kernels", KERNEL_MODES)
    def test_exhaustive_regime_matches_dense_reference(
        self, blobs_dataset, dense_reference, executor, kernels
    ):
        observed = cvcp_observation(
            blobs_dataset,
            kernels=kernels,
            spec=ExecutionSpec(
                backend=executor,
                n_jobs=2,
                distance_backend="neighbors",
                epsilon=float(np.inf),
                k_neighbors=blobs_dataset.n_samples,
            ),
        )
        assert observed == dense_reference

    def test_practical_epsilon_is_identical_across_all_axes(self, blobs_dataset):
        reference = None
        for executor in EXECUTORS:
            for kernels in KERNEL_MODES:
                observed = cvcp_observation(
                    blobs_dataset,
                    kernels=kernels,
                    spec=ExecutionSpec(
                        backend=executor,
                        n_jobs=2,
                        distance_backend="neighbors",
                        epsilon=6.0,
                        k_neighbors=12,
                    ),
                )
                if reference is None:
                    reference = observed
                else:
                    assert observed == reference

    def test_cvcp_passes_the_knobs_to_estimator_clones(self):
        search = CVCP(
            FOSCOpticsDend(min_pts=5),
            parameter_values=[3, 6],
            execution=ExecutionSpec(
                distance_backend="neighbors", epsilon=3.0, k_neighbors=9
            ),
        )
        clone = search._make_estimator(6, seed=1)
        assert clone.distance_backend == "neighbors"
        assert clone.epsilon == 3.0
        assert clone.k_neighbors == 9


NEIGHBORS_TOML = """\
[experiment]
name = "sparse"
kind = "{kind}"
algorithm = "{algorithm}"
scenario = "labels"
amounts = [0.1]
datasets = ["Iris"]
seed = 11

[parameters]
n_trials = 2
n_folds = 3
minpts_range = [3, 6, 9]

[execution]
distance_backend = "neighbors"
{extra}
"""


def write_config(tmp_path, *, kind="trials", algorithm="fosc", extra=""):
    path = tmp_path / "neighbors.toml"
    path.write_text(
        NEIGHBORS_TOML.format(kind=kind, algorithm=algorithm, extra=extra),
        encoding="utf-8",
    )
    return path


class TestValidateConfig:
    """Satellite 3: incompatible combinations are problems, not tracebacks."""

    def test_neighbors_config_with_knobs_is_valid(self, tmp_path):
        path = write_config(tmp_path, extra="epsilon = 2.0\nk_neighbors = 16\n")
        assert validate_pipeline_file(path) == []

    def test_neighbors_with_mpck_is_a_problem(self, tmp_path):
        path = write_config(tmp_path, algorithm="mpck")
        problems = validate_pipeline_file(path)
        assert any("mpck" in p and "neighbors" in p for p in problems)
        assert any("full distance matrix" in p for p in problems)

    def test_neighbors_with_robustness_kind_is_a_problem(self, tmp_path):
        path = write_config(tmp_path, kind="robustness")
        problems = validate_pipeline_file(path)
        assert any("robustness" in p and "neighbors" in p for p in problems)

    def test_knobs_with_an_exact_tier_are_a_problem(self, tmp_path):
        path = tmp_path / "mismatch.toml"
        path.write_text(
            NEIGHBORS_TOML.format(kind="trials", algorithm="fosc", extra="").replace(
                'distance_backend = "neighbors"', 'distance_backend = "dense"\nepsilon = 2.0'
            ),
            encoding="utf-8",
        )
        problems = validate_pipeline_file(path)
        assert any("only meaningful" in p for p in problems)

    def test_bad_epsilon_value_is_a_problem(self, tmp_path):
        path = write_config(tmp_path, extra="epsilon = -1.0\n")
        problems = validate_pipeline_file(path)
        assert any("execution.epsilon" in p for p in problems)

    def test_runner_rejects_mpck_under_neighbors_with_guidance(self):
        config = ExperimentConfig(distance_backend="neighbors")
        with pytest.raises(ValueError, match="MPCKMeans"):
            algorithm_factory("mpck", config)


TINY_EXACT = ExperimentConfig(
    n_trials=1,
    n_folds=3,
    n_aloi_datasets=1,
    minpts_range=(3, 6),
    mpck_n_init=1,
    mpck_max_iter=8,
    max_k=5,
    datasets=("Iris",),
    seed=0,
)


def with_backend(config, backend, **kwargs):
    return config.with_execution(distance_backend=backend, **kwargs)


class TestArtifactFingerprinting:
    """Satellite 4: neighbors trials key their own artifacts; exact tiers share."""

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.datasets import make_blobs

        return make_blobs([15, 15, 15], 3, center_spread=8.0, random_state=0,
                          name="fingerprint-test")

    def test_exact_tiers_share_one_key(self, dataset):
        digests = {
            backend: key_digest(
                "trial",
                trial_artifact_key(
                    with_backend(TINY_EXACT, backend), dataset, "fosc", "labels", 0.1, 7
                ),
            )
            for backend in EXACT_DISTANCE_BACKENDS
        }
        assert len(set(digests.values())) == 1
        key = trial_artifact_key(
            with_backend(TINY_EXACT, "dense"), dataset, "fosc", "labels", 0.1, 7
        )
        assert "approx" not in key

    def test_neighbors_key_records_the_resolved_knobs(self, dataset):
        key = trial_artifact_key(
            with_backend(TINY_EXACT, "neighbors", epsilon=2.5, k_neighbors=16),
            dataset, "fosc", "labels", 0.1, 7,
        )
        assert key["approx"] == {
            "distance_backend": "neighbors",
            "epsilon": 2.5,
            "k_neighbors": 16,
        }

    def test_default_epsilon_serialises_as_the_string_inf(self, dataset):
        key = trial_artifact_key(
            with_backend(TINY_EXACT, "neighbors"), dataset, "fosc", "labels", 0.1, 7
        )
        assert key["approx"]["epsilon"] == "inf"
        import json

        json.dumps(key)  # the key must stay JSON-serialisable

    def test_neighbors_never_shares_with_exact_or_other_settings(self, dataset):
        base = trial_artifact_key(
            with_backend(TINY_EXACT, "dense"), dataset, "fosc", "labels", 0.1, 7
        )
        variants = [
            with_backend(TINY_EXACT, "neighbors"),
            with_backend(TINY_EXACT, "neighbors", epsilon=2.0),
            with_backend(TINY_EXACT, "neighbors", epsilon=2.0, k_neighbors=8),
            with_backend(TINY_EXACT, "neighbors", k_neighbors=8),
        ]
        digests = {key_digest("trial", base)}
        for config in variants:
            digests.add(
                key_digest(
                    "trial",
                    trial_artifact_key(config, dataset, "fosc", "labels", 0.1, 7),
                )
            )
        assert len(digests) == len(variants) + 1  # all distinct

    def test_exact_trial_is_a_cache_miss_for_neighbors(self, dataset, tmp_path):
        """Regression: a stored exact trial must never satisfy a neighbors run."""
        store = ArtifactStore(tmp_path / "store")
        exact = with_backend(TINY_EXACT, "dense")
        sparse = with_backend(TINY_EXACT, "neighbors", epsilon=float(np.inf),
                              k_neighbors=dataset.n_samples)
        run_trial(dataset, "fosc", "labels", 0.1, config=exact, random_state=7, store=store)

        sparse_key = trial_artifact_key(sparse, dataset, "fosc", "labels", 0.1, 7)
        assert store.get("trial", sparse_key) is None  # the miss under test

        result = run_trial(
            dataset, "fosc", "labels", 0.1, config=sparse, random_state=7, store=store
        )
        assert store.get("trial", sparse_key) is not None
        # In the exhaustive regime the recomputed trial agrees with exact.
        exact_key = trial_artifact_key(exact, dataset, "fosc", "labels", 0.1, 7)
        cached_exact = store.get("trial", exact_key)
        assert cached_exact is not None
        assert result.to_dict() == cached_exact
