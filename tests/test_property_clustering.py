"""Property-based tests for the clustering substrates.

These check structural invariants that must hold for *any* input: partitions
returned by the clusterers are well formed, the density hierarchy is a
proper laminar family, and FOSC selections never assign one point to two
clusters.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering import FOSCOpticsDend, KMeans, MPCKMeans
from repro.clustering.hierarchy import DensityHierarchy
from repro.constraints import constraints_from_labels

settings.register_profile("repro-clustering", max_examples=15, deadline=None)
settings.load_profile("repro-clustering")


@st.composite
def small_datasets(draw, min_samples=8, max_samples=40, max_features=4):
    n_samples = draw(st.integers(min_samples, max_samples))
    n_features = draw(st.integers(1, max_features))
    X = draw(
        hnp.arrays(
            np.float64,
            (n_samples, n_features),
            elements=st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False, width=32),
        )
    )
    # Spread duplicated rows apart slightly so degenerate all-equal inputs
    # remain valid but not pathological for the density estimators.
    jitter = np.linspace(0.0, 1e-3, n_samples)[:, None]
    return X + jitter


class TestPartitionInvariants:
    @given(small_datasets(), st.integers(1, 5), st.integers(0, 10**6))
    def test_kmeans_labels_are_a_partition(self, X, n_clusters, seed):
        n_clusters = min(n_clusters, X.shape[0])
        model = KMeans(n_clusters=n_clusters, n_init=1, max_iter=20, random_state=seed).fit(X)
        assert model.labels_.shape == (X.shape[0],)
        assert model.labels_.min() >= 0
        assert model.labels_.max() < n_clusters

    @given(small_datasets(), st.integers(2, 4), st.integers(0, 10**6))
    def test_mpck_labels_are_a_partition(self, X, n_clusters, seed):
        n_clusters = min(n_clusters, X.shape[0])
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, n_clusters, size=X.shape[0])
        revealed = {int(i): int(truth[i]) for i in rng.choice(X.shape[0], 4, replace=False)}
        constraints = constraints_from_labels(revealed)
        model = MPCKMeans(n_clusters=n_clusters, n_init=1, max_iter=8, random_state=seed)
        model.fit(X, constraints=constraints)
        assert model.labels_.shape == (X.shape[0],)
        assert set(np.unique(model.labels_)) <= set(range(n_clusters))
        assert np.all(model.metric_weights_ > 0)

    @given(small_datasets(), st.integers(2, 6))
    def test_fosc_labels_are_valid(self, X, min_pts):
        model = FOSCOpticsDend(min_pts=min_pts).fit(X)
        labels = model.labels_
        assert labels.shape == (X.shape[0],)
        assert labels.min() >= -1
        non_noise = np.unique(labels[labels >= 0])
        # Cluster ids are compact 0..k-1.
        assert non_noise.tolist() == list(range(non_noise.size))


class TestHierarchyInvariants:
    @given(small_datasets(), st.integers(2, 5))
    def test_condensed_tree_is_laminar(self, X, min_pts):
        min_pts = min(min_pts, X.shape[0] - 1) or 2
        tree = DensityHierarchy(min_pts=max(2, min_pts)).fit(X).condensed_tree_
        clusters = tree.clusters
        # Children nest inside parents and siblings are disjoint.
        for cluster in clusters.values():
            for child_id in cluster.children:
                assert clusters[child_id].members <= cluster.members
            for first in cluster.children:
                for second in cluster.children:
                    if first != second:
                        assert not (clusters[first].members & clusters[second].members)
        # The root contains every point exactly once.
        assert clusters[0].members == set(range(X.shape[0]))

    @given(small_datasets(), st.integers(2, 5))
    def test_stabilities_are_non_negative(self, X, min_pts):
        tree = DensityHierarchy(min_pts=max(2, min(min_pts, X.shape[0] - 1))).fit(X).condensed_tree_
        for cluster_id in tree.selectable_clusters():
            assert tree.stability(cluster_id) >= -1e-9
