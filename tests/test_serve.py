"""End-to-end tests for the ``repro serve`` HTTP layer and its job pool.

Covers the acceptance contract of the serve subsystem: concurrent
identical submissions compute the spec's trials exactly once and every
client reads byte-identical report bytes; resubmissions of finished jobs
are served from cached trials; a SIGKILLed server restarted over the
same artifacts root resumes from the store; and validation/queue errors
map to the documented HTTP statuses.
"""

import json
import os
import subprocess
import sys
import threading
import time
import types
from pathlib import Path

import pytest

from repro import api
from repro.serve import (
    JobManager,
    QueueFullError,
    ServeClient,
    ServeError,
    ServeSettings,
    make_server,
)
from repro.utils.specs import SpecError


def tiny_spec(seed: int = 7, n_trials: int = 1, name: str = "serve-tiny") -> dict:
    """A pipeline spec that runs in about a second."""
    return {
        "experiment": {
            "name": name,
            "kind": "comparison",
            "algorithm": "fosc",
            "scenario": "labels",
            "amounts": [0.2],
            "datasets": ["Iris"],
            "seed": seed,
        },
        "parameters": {"n_trials": n_trials, "n_folds": 3, "minpts_range": [3, 6]},
        "report": {"formats": ["json", "txt"]},
    }


def select_body(seed: int = 5) -> dict:
    return {
        "select": {
            "algorithm": "fosc",
            "dataset": "Iris",
            "scenario": "labels",
            "amount": 0.2,
            "n_trials": 1,
            "n_folds": 3,
            "seed": seed,
        }
    }


@pytest.fixture
def server(tmp_path):
    """A live server (ephemeral port, own store) plus a client for it."""
    instance = make_server(tmp_path / "store", ServeSettings(port=0, workers=2))
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    try:
        yield instance, ServeClient(instance.url, timeout=30.0)
    finally:
        instance.shutdown()
        instance.server_close()
        thread.join(timeout=5)


class TestServeSettings:
    def test_defaults(self):
        settings = ServeSettings()
        assert (settings.host, settings.port) == ("127.0.0.1", 8601)
        assert (settings.workers, settings.max_pending) == (2, 32)

    def test_roundtrip_law(self):
        settings = ServeSettings(host="0.0.0.0", port=9999, workers=4, max_pending=5)
        assert ServeSettings.from_spec(settings.to_spec()) == settings

    def test_with_overrides_ignores_none_and_revalidates(self):
        settings = ServeSettings().with_overrides(port=0, workers=3)
        assert (settings.port, settings.workers) == (0, 3)
        assert settings.host == "127.0.0.1"
        with pytest.raises(SpecError, match=r"serve\.port"):
            ServeSettings().with_overrides(port=70000)

    def test_from_spec_collects_every_problem(self):
        with pytest.raises(SpecError) as excinfo:
            ServeSettings.from_spec({"port": "http", "workers": 0, "bogus": 1})
        text = "\n".join(excinfo.value.problems)
        assert "serve.port" in text
        assert "serve.workers" in text
        assert "serve.bogus: unknown key" in text


class TestJobManager:
    def test_rejects_non_mapping_payloads(self, tmp_path):
        manager = JobManager(tmp_path)
        try:
            with pytest.raises(SpecError, match="must be a table/object"):
                manager.submit(["not", "a", "job"])
        finally:
            manager.shutdown(wait=False)

    def test_invalid_spec_lists_problems_without_consuming_queue(self, tmp_path):
        manager = JobManager(tmp_path, max_pending=1)
        try:
            bad = tiny_spec()
            bad["experiment"]["algorithm"] = "kmeanz"
            with pytest.raises(SpecError) as excinfo:
                manager.submit(bad)
            assert any("algorithm" in problem for problem in excinfo.value.problems)
            assert manager.store_stats()["jobs_total"] == 0
        finally:
            manager.shutdown(wait=False)

    def test_select_alongside_other_keys_is_rejected(self, tmp_path):
        manager = JobManager(tmp_path)
        try:
            body = select_body()
            body["experiment"] = {}
            with pytest.raises(SpecError, match="unknown key alongside 'select'"):
                manager.submit(body)
        finally:
            manager.shutdown(wait=False)

    @pytest.fixture
    def gated_manager(self, tmp_path, monkeypatch):
        """A manager whose jobs block until ``release`` is set (no compute)."""
        release = threading.Event()

        def slow_run_pipeline(source, **kwargs):
            release.wait(timeout=30)
            return types.SimpleNamespace(as_dict=lambda: {"ok": True}, report_paths=())

        monkeypatch.setattr(api, "run_pipeline", slow_run_pipeline)
        manager = JobManager(tmp_path, workers=1, max_pending=1)
        try:
            yield manager, release
        finally:
            release.set()
            manager.shutdown(wait=True)

    def test_queue_full_raises(self, gated_manager):
        manager, release = gated_manager
        manager.submit(tiny_spec(seed=1))
        with pytest.raises(QueueFullError, match="max_pending=1"):
            manager.submit(tiny_spec(seed=2))
        release.set()

    def test_identical_active_submission_joins_instead_of_enqueueing(self, gated_manager):
        manager, release = gated_manager
        first = manager.submit(tiny_spec(seed=3))
        assert not first.deduplicated
        # max_pending=1 is already used up: only dedup can accept this.
        joined = manager.submit(tiny_spec(seed=3))
        assert joined.deduplicated
        assert joined.id == first.id
        release.set()


class TestServeHTTP:
    def test_health_and_store_stats(self, server):
        _, client = server
        health = client.health()
        assert health["status"] == "ok"
        stats = client.store_stats()
        assert stats["jobs_total"] == 0
        assert stats["artifacts"] == 0

    def test_unknown_routes_and_jobs_are_404(self, server):
        _, client = server
        with pytest.raises(ServeError) as excinfo:
            client.job("job-999")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._json("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_invalid_json_body_is_400(self, server):
        instance, client = server
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{instance.url}/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_invalid_spec_is_400_with_problems(self, server):
        _, client = server
        bad = tiny_spec()
        bad["experiment"]["kind"] = "wat"
        bad["bogus"] = {}
        with pytest.raises(ServeError) as excinfo:
            client.submit(bad)
        assert excinfo.value.status == 400
        problems = excinfo.value.payload["problems"]
        assert any("kind" in problem for problem in problems)
        assert any("bogus" in problem for problem in problems)

    def test_precomputed_matrix_defects_are_400_with_problems(self, server, tmp_path):
        """A bad [dataset] matrix fails at submit time, listing the defect."""
        import numpy as np

        _, client = server
        path = tmp_path / "lopsided.npz"
        np.savez(path, matrix=np.zeros((4, 5)), labels=np.arange(4))
        bad = tiny_spec(name="serve-precomputed")
        bad["experiment"]["kind"] = "trials"
        del bad["experiment"]["datasets"]
        bad["dataset"] = {"metric": "precomputed", "path": str(path)}
        with pytest.raises(ServeError) as excinfo:
            client.submit(bad)
        assert excinfo.value.status == 400
        problems = excinfo.value.payload["problems"]
        assert any("dataset.path" in p and "square" in p for p in problems)

    def test_metric_backend_conflict_is_400(self, server):
        _, client = server
        bad = tiny_spec(name="serve-metric-conflict")
        bad["experiment"]["kind"] = "trials"
        bad["dataset"] = {"metric": "cosine"}
        bad["execution"] = {"distance_backend": "neighbors"}
        with pytest.raises(ServeError) as excinfo:
            client.submit(bad)
        assert excinfo.value.status == 400
        assert any("neighbors" in p for p in excinfo.value.payload["problems"])

    def test_concurrent_identical_jobs_compute_once_with_identical_bytes(
        self, server, tmp_path
    ):
        """The acceptance bar: 8 clients, one computation, one byte stream."""
        instance, client = server
        payload = tiny_spec(seed=11, name="serve-wave")
        barrier = threading.Barrier(8)
        views = [None] * 8

        def post(slot):
            wave_client = ServeClient(instance.url, timeout=30.0)
            barrier.wait()
            views[slot] = wave_client.submit(payload)

        threads = [threading.Thread(target=post, args=(slot,)) for slot in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(view is not None for view in views)

        job_ids = sorted({view["id"] for view in views})
        computed = 0
        for job_id in job_ids:
            done = client.wait(job_id, timeout=120)
            assert done["state"] == "done", done
            computed += done["progress"]["trials_computed"]
        # The spec's single trial ran exactly once across the whole wave,
        # however many job records the wave produced.
        assert computed == 1
        served = {client.report_bytes(job_id, "json") for job_id in job_ids}
        assert len(served) == 1

        # Byte-parity with a batch run of the same spec in a fresh store.
        batch = api.run_pipeline(payload, artifacts_root=tmp_path / "batch")
        summary = next(path for path in batch.report_paths if path.suffix == ".json")
        assert served == {summary.read_bytes()}

    def test_finished_job_resubmission_is_served_from_cache(self, server):
        _, client = server
        payload = tiny_spec(seed=13, name="serve-cache")
        first = client.wait(client.submit(payload)["id"], timeout=120)
        assert first["progress"]["trials_computed"] == 1
        rerun = client.submit(payload)
        assert not rerun["deduplicated"]  # the first job is finished, not active
        redone = client.wait(rerun["id"], timeout=120)
        assert redone["progress"]["trials_computed"] == 0
        assert redone["progress"]["trials_cached"] == 1
        assert client.report_bytes(rerun["id"], "json") == client.report_bytes(
            first["id"], "json"
        )

    def test_txt_report_and_format_errors(self, server):
        _, client = server
        payload = tiny_spec(seed=17, name="serve-formats")
        done = client.wait(client.submit(payload)["id"], timeout=120)
        text = client.report_bytes(done["id"], "txt").decode("utf-8")
        assert "serve-formats" in text or "Iris" in text
        with pytest.raises(ServeError) as excinfo:
            client.report_bytes(done["id"], "csv")
        assert excinfo.value.status == 400

    def test_select_job_over_http(self, server):
        _, client = server
        view = client.submit(select_body())
        assert view["kind"] == "select"
        done = client.wait(view["id"], timeout=120)
        assert done["state"] == "done", done
        report = json.loads(client.report_bytes(done["id"], "json"))
        assert report["parameter_name"] == "min_pts"
        assert report["selected_value"] in (3, 6, 9, 12, 15, 18)

    def test_report_before_done_is_409(self, tmp_path, monkeypatch):
        release = threading.Event()

        def slow_run_pipeline(source, **kwargs):
            release.wait(timeout=30)
            return types.SimpleNamespace(as_dict=lambda: {}, report_paths=())

        monkeypatch.setattr(api, "run_pipeline", slow_run_pipeline)
        instance = make_server(tmp_path / "store", ServeSettings(port=0, workers=1))
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(instance.url, timeout=10.0)
        try:
            view = client.submit(tiny_spec(seed=19))
            with pytest.raises(ServeError) as excinfo:
                client.report_bytes(view["id"], "json")
            assert excinfo.value.status == 409
        finally:
            release.set()
            instance.shutdown()
            instance.server_close()
            thread.join(timeout=5)

    def test_full_queue_is_429(self, tmp_path, monkeypatch):
        release = threading.Event()

        def slow_run_pipeline(source, **kwargs):
            release.wait(timeout=30)
            return types.SimpleNamespace(as_dict=lambda: {}, report_paths=())

        monkeypatch.setattr(api, "run_pipeline", slow_run_pipeline)
        instance = make_server(
            tmp_path / "store", ServeSettings(port=0, workers=1, max_pending=1)
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(instance.url, timeout=10.0)
        try:
            client.submit(tiny_spec(seed=23))
            with pytest.raises(ServeError) as excinfo:
                client.submit(tiny_spec(seed=29))
            assert excinfo.value.status == 429
        finally:
            release.set()
            instance.shutdown()
            instance.server_close()
            thread.join(timeout=5)

    def test_failed_job_reports_its_error(self, tmp_path, monkeypatch):
        def broken_run_pipeline(source, **kwargs):
            raise RuntimeError("exploded mid-grid")

        monkeypatch.setattr(api, "run_pipeline", broken_run_pipeline)
        manager = JobManager(tmp_path)
        try:
            view = manager.submit(tiny_spec(seed=31))
            deadline = time.monotonic() + 10
            while manager.view(view.id).state not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            final = manager.view(view.id)
            assert final.state == "failed"
            assert "exploded mid-grid" in final.error
        finally:
            manager.shutdown(wait=False)


class TestServeRestart:
    """A SIGKILLed server restarted on the same root resumes from the store."""

    def _start(self, root: Path) -> tuple[subprocess.Popen, ServeClient]:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--artifacts-root", str(root)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        line = proc.stdout.readline()
        assert "serving on http://" in line, line
        url = line.split("serving on ", 1)[1].split(" ", 1)[0]
        return proc, ServeClient(url, timeout=30.0)

    def test_sigkill_restart_resumes_from_cached_trials(self, tmp_path):
        root = tmp_path / "store"
        payload = tiny_spec(seed=37, n_trials=3, name="serve-restart")
        proc, client = self._start(root)
        try:
            view = client.submit(payload)
            # Let at least one trial land in the store, then hard-kill the
            # server mid-grid (no cleanup, no atexit).
            deadline = time.monotonic() + 120
            while client.job(view["id"])["progress"]["done_units"] < 1:
                assert time.monotonic() < deadline, "no trial completed before kill"
                time.sleep(0.1)
        finally:
            proc.kill()
            proc.wait(timeout=10)

        proc, client = self._start(root)
        try:
            redone = client.wait(client.submit(payload)["id"], timeout=120)
            assert redone["state"] == "done", redone
            progress = redone["progress"]
            assert progress["trials_cached"] >= 1  # the pre-kill work survived
            assert progress["trials_cached"] + progress["trials_computed"] == 3
            served = client.report_bytes(redone["id"], "json")
        finally:
            proc.kill()
            proc.wait(timeout=10)

        batch = api.run_pipeline(payload, artifacts_root=tmp_path / "batch")
        summary = next(path for path in batch.report_paths if path.suffix == ".json")
        assert served == summary.read_bytes()
