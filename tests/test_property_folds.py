"""Property-based tests for the CVCP fold construction (the leak-free invariant)."""

from hypothesis import given, settings, strategies as st

from repro.constraints import constraints_from_labels, transitive_closure
from repro.core import constraint_scenario_folds, label_scenario_folds

settings.register_profile("repro-folds", max_examples=25, deadline=None)
settings.load_profile("repro-folds")


@st.composite
def labellings(draw):
    n_objects = draw(st.integers(min_value=4, max_value=16))
    indices = draw(
        st.lists(st.integers(min_value=0, max_value=60), min_size=n_objects,
                 max_size=n_objects, unique=True)
    )
    labels = draw(st.lists(st.integers(0, 3), min_size=n_objects, max_size=n_objects))
    return dict(zip(indices, labels))


class TestScenarioIProperties:
    @given(labellings(), st.integers(min_value=2, max_value=6), st.integers(0, 10**6))
    def test_test_folds_partition_the_labelled_objects(self, labelling, n_folds, seed):
        folds = label_scenario_folds(labelling, n_folds, random_state=seed)
        covered = sorted(obj for fold in folds for obj in fold.test_objects)
        assert covered == sorted(labelling)

    @given(labellings(), st.integers(min_value=2, max_value=6), st.integers(0, 10**6))
    def test_no_test_constraint_leaks_from_training(self, labelling, n_folds, seed):
        folds = label_scenario_folds(labelling, n_folds, random_state=seed)
        for fold in folds:
            training_closure = transitive_closure(fold.training_constraints, strict=False)
            for constraint in fold.test_constraints:
                assert constraint not in training_closure

    @given(labellings(), st.integers(min_value=2, max_value=6), st.integers(0, 10**6))
    def test_training_and_test_objects_disjoint(self, labelling, n_folds, seed):
        folds = label_scenario_folds(labelling, n_folds, random_state=seed)
        for fold in folds:
            assert not (set(fold.training_objects) & set(fold.test_objects))


class TestScenarioIIProperties:
    @given(labellings(), st.integers(min_value=2, max_value=5), st.integers(0, 10**6))
    def test_no_cross_fold_constraints_survive(self, labelling, n_folds, seed):
        constraints = constraints_from_labels(labelling)
        if not len(constraints):
            return
        folds = constraint_scenario_folds(constraints, n_folds, random_state=seed)
        for fold in folds:
            training_set = set(fold.training_objects)
            test_set = set(fold.test_objects)
            for constraint in fold.training_constraints:
                assert {constraint.i, constraint.j} <= training_set
            for constraint in fold.test_constraints:
                assert {constraint.i, constraint.j} <= test_set

    @given(labellings(), st.integers(min_value=2, max_value=5), st.integers(0, 10**6))
    def test_no_leakage_through_the_closure(self, labelling, n_folds, seed):
        constraints = constraints_from_labels(labelling)
        if not len(constraints):
            return
        folds = constraint_scenario_folds(constraints, n_folds, random_state=seed)
        for fold in folds:
            training_closure = transitive_closure(fold.training_constraints, strict=False)
            for constraint in fold.test_constraints:
                assert constraint not in training_closure

    @given(labellings(), st.integers(min_value=2, max_value=5), st.integers(0, 10**6))
    def test_fold_sides_are_transitively_closed(self, labelling, n_folds, seed):
        constraints = constraints_from_labels(labelling)
        if not len(constraints):
            return
        folds = constraint_scenario_folds(constraints, n_folds, random_state=seed)
        for fold in folds:
            assert transitive_closure(fold.training_constraints, strict=False) == fold.training_constraints
            assert transitive_closure(fold.test_constraints, strict=False) == fold.test_constraints
