"""Tests for the large-n scale benchmark (record format, gate, CLI)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import bench_scale
from repro.cli.main import main
from repro.core.distance_backend import SPILL_DIR_ENV_VAR


def fresh_record(**cell_overrides) -> dict:
    cell = {
        "wall_s": 1.0,
        "peak_rss_bytes": 500 * 2**20,
        "labels_digest": "abc",
        "parity": True,
        "rounds": 1,
    }
    cell.update(cell_overrides)
    return {
        "kind": "repro-bench-scale",
        "seed": bench_scale.SCALE_SEED,
        "sizes": dict(bench_scale.SCALE_SIZES),
        "budget_bytes": bench_scale.MEMORY_BUDGET_BYTES,
        "dense_projected_bytes": {
            name: bench_scale.projected_dense_peak_bytes(n)
            for name, n in bench_scale.SCALE_SIZES.items()
        },
        "machine": {"cpu_count": 1, "python": "3.11.0"},
        "results": {
            "dense": {"n1200": dict(cell)},
            "memmap": {"n1200": dict(cell), "n10000": dict(cell)},
        },
    }


def baseline_from(record: dict) -> dict:
    wall = {
        backend: {size: entry["wall_s"] for size, entry in sizes.items()}
        for backend, sizes in record["results"].items()
    }
    rss = {
        backend: {size: entry["peak_rss_bytes"] for size, entry in sizes.items()}
        for backend, sizes in record["results"].items()
    }
    return {
        bench_scale.BASELINE_SECTION: {
            "wall_s": wall,
            "peak_rss_bytes": rss,
            "budget_bytes": bench_scale.MEMORY_BUDGET_BYTES,
        }
    }


class TestRecordHandling:
    def test_normalize_accepts_the_cli_format(self):
        record = fresh_record()
        assert bench_scale.normalize_record(record) == record["results"]

    def test_normalize_rejects_foreign_and_truncated_records(self):
        with pytest.raises(ValueError, match="repro-bench-scale"):
            bench_scale.normalize_record({"kind": "something-else"})
        with pytest.raises(ValueError, match="results"):
            bench_scale.normalize_record({"kind": "repro-bench-scale"})

    def test_projected_dense_bytes_exceed_budget_at_n10000(self):
        """The scale story: three dense float64 matrices at n=10000 blow 2 GiB."""
        assert bench_scale.projected_dense_peak_bytes(10_000) > bench_scale.MEMORY_BUDGET_BYTES
        assert bench_scale.projected_dense_peak_bytes(5_000) < bench_scale.MEMORY_BUDGET_BYTES

    def test_labels_digest_is_content_addressed(self):
        a = np.array([0, 1, 1, -1], dtype=np.int64)
        assert bench_scale.labels_digest(a) == bench_scale.labels_digest(a.copy())
        assert bench_scale.labels_digest(a) != bench_scale.labels_digest(a[::-1].copy())

    def test_format_table_lists_cells_and_baseline_delta(self):
        record = fresh_record()
        table = bench_scale.format_scale_table(
            bench_scale.normalize_record(record), baseline_from(record)
        )
        assert "memmap" in table and "n10000" in table
        assert "+0%" in table  # identical to baseline
        assert "dense projected" in table


class TestCompareRecords:
    def test_identical_record_passes(self):
        record = fresh_record()
        assert bench_scale.compare_records(
            bench_scale.normalize_record(record), baseline_from(record)
        ) == []

    def test_missing_baseline_section_is_reported(self):
        assert bench_scale.compare_records({}, {}) == [
            "baseline is missing the 'bench_scale' section"
        ]

    def test_missing_cell_and_malformed_entry_reported(self):
        record = fresh_record()
        baseline = baseline_from(record)
        fresh = bench_scale.normalize_record(fresh_record())
        del fresh["memmap"]["n10000"]
        fresh["dense"]["n1200"] = {"parity": True}
        problems = bench_scale.compare_records(fresh, baseline)
        text = "\n".join(problems)
        assert "memmap/n10000: missing" in text
        assert "dense/n1200: malformed" in text

    def test_slowdown_rss_growth_and_parity_flag_gate(self):
        record = fresh_record()
        baseline = baseline_from(record)
        fresh = bench_scale.normalize_record(fresh_record())
        fresh["dense"]["n1200"]["wall_s"] = 2.0  # +100%
        fresh["memmap"]["n1200"]["peak_rss_bytes"] = 900 * 2**20  # +80%
        fresh["memmap"]["n10000"]["parity"] = False
        problems = "\n".join(bench_scale.compare_records(fresh, baseline))
        assert "dense/n1200: wall" in problems
        assert "memmap/n1200: peak RSS" in problems
        assert "memmap/n10000: parity mismatch" in problems

    def test_memmap_cells_must_stay_under_the_absolute_budget(self):
        record = fresh_record()
        baseline = baseline_from(record)
        # Baseline RSS huge so the relative gate passes; absolute gate still fires.
        section = baseline[bench_scale.BASELINE_SECTION]
        section["peak_rss_bytes"]["memmap"]["n10000"] = 4 * 2**30
        fresh = bench_scale.normalize_record(fresh_record())
        fresh["memmap"]["n10000"]["peak_rss_bytes"] = 3 * 2**30
        problems = "\n".join(bench_scale.compare_records(fresh, baseline))
        assert "exceeds the 2048 MiB budget" in problems

    def test_digest_divergence_across_backends_reported(self):
        record = fresh_record()
        baseline = baseline_from(record)
        fresh = bench_scale.normalize_record(fresh_record())
        fresh["memmap"]["n1200"]["labels_digest"] = "different"
        problems = "\n".join(bench_scale.compare_records(fresh, baseline))
        assert "label digests differ" in problems

    def test_subset_runs_gate_only_their_cells(self):
        record = fresh_record()
        baseline = baseline_from(record)
        fresh = {"memmap": {"n1200": record["results"]["memmap"]["n1200"]}}
        # Without expected_cells the dense cell and memmap/n10000 are missing...
        assert bench_scale.compare_records(fresh, baseline)
        # ...but a deliberate memmap/n1200-only run passes.
        assert bench_scale.compare_records(
            fresh, baseline, expected_cells={"memmap": ("n1200",)}
        ) == []


class TestRunBenchScale:
    def test_rejects_unknown_backends_and_sizes(self):
        with pytest.raises(ValueError, match="unknown backend"):
            bench_scale.run_bench_scale(("ram-disk",))
        with pytest.raises(ValueError, match="unknown size"):
            bench_scale.run_bench_scale(("dense",), ("n99",))

    def test_small_run_records_all_cells_with_matching_digests(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path / "spill"))
        monkeypatch.setattr(bench_scale, "SCALE_SIZES", {"n180": 180})
        monkeypatch.setattr(bench_scale, "PARITY_N", 180)
        record = bench_scale.run_bench_scale(
            ("dense", "memmap"), ("n180",), skip_executor_parity=True
        )
        results = bench_scale.normalize_record(record)
        assert set(results) == {"dense", "memmap"}
        for backend in results:
            cell = results[backend]["n180"]
            assert cell["parity"] is True
            assert cell["wall_s"] > 0
            assert cell["peak_rss_bytes"] > 0
        assert (
            results["dense"]["n180"]["labels_digest"]
            == results["memmap"]["n180"]["labels_digest"]
        )
        assert record["dense_projected_bytes"] == {"n180": 180 * 180 * 24}

    def test_run_cell_measures_in_process(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path / "spill"))
        cell = bench_scale.run_cell("blockwise", 150)
        assert cell["wall_s"] > 0 and cell["peak_rss_bytes"] > 0
        assert cell["n_clusters"] >= 1


class TestScaleCli:
    def test_parity_only_smoke(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path / "spill"))
        monkeypatch.setattr(bench_scale, "PARITY_N", 150)
        monkeypatch.setattr(
            bench_scale, "assert_executor_parity", lambda n_samples=240: None
        )
        assert main(["bench", "scale", "--parity-only"]) == 0
        assert "parity ok" in capsys.readouterr().out

    def test_compare_and_json_are_mutually_exclusive(self, tmp_path, capsys):
        record_path = tmp_path / "fresh.json"
        record_path.write_text(json.dumps(fresh_record()), encoding="utf-8")
        code = main([
            "bench", "scale", "--compare", str(record_path), "--json", str(tmp_path / "out.json"),
        ])
        assert code == 2
        assert "--compare" in capsys.readouterr().err

    def test_compare_gates_against_baseline(self, tmp_path, capsys):
        record = fresh_record()
        record_path = tmp_path / "fresh.json"
        record_path.write_text(json.dumps(record), encoding="utf-8")
        baseline_path = tmp_path / "BENCH_scale.json"
        baseline_path.write_text(json.dumps(baseline_from(record)), encoding="utf-8")
        assert main([
            "bench", "scale", "--compare", str(record_path), "--baseline", str(baseline_path),
        ]) == 0
        assert "within baseline" in capsys.readouterr().out

        slow = fresh_record(wall_s=10.0)
        record_path.write_text(json.dumps(slow), encoding="utf-8")
        assert main([
            "bench", "scale", "--compare", str(record_path), "--baseline", str(baseline_path),
        ]) == 1
        assert "regression detected" in capsys.readouterr().err

    def test_malformed_compare_record_is_a_usage_error(self, tmp_path, capsys):
        record_path = tmp_path / "fresh.json"
        record_path.write_text(json.dumps({"kind": "nonsense"}), encoding="utf-8")
        assert main(["bench", "scale", "--compare", str(record_path)]) == 2
        assert "repro-bench-scale" in capsys.readouterr().err

    def test_unknown_backend_is_a_usage_error(self, capsys):
        assert main(["bench", "scale", "--backends", "ram-disk"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_json_writes_record_and_table(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(tmp_path / "spill"))
        monkeypatch.setattr(bench_scale, "SCALE_SIZES", {"n150": 150})
        monkeypatch.setattr(bench_scale, "PARITY_N", 150)
        monkeypatch.setattr(
            bench_scale, "assert_executor_parity", lambda n_samples=240: None
        )
        out_path = tmp_path / "record.json"
        assert main([
            "bench", "scale", "--backends", "dense", "--sizes", "n150",
            "--json", str(out_path),
        ]) == 0
        record = json.loads(out_path.read_text(encoding="utf-8"))
        assert record["kind"] == "repro-bench-scale"
        assert "dense" in record["results"]
        assert "wrote" in capsys.readouterr().out


class TestMalformedResults:
    def test_normalize_rejects_non_mapping_backend_entries(self):
        # Regression: a truncated artifact with results["dense"] == [] used
        # to traceback in format/compare instead of exiting 2.
        with pytest.raises(ValueError, match="truncated artifact"):
            bench_scale.normalize_record(
                {"kind": "repro-bench-scale", "results": {"dense": []}}
            )
        with pytest.raises(ValueError, match="truncated artifact"):
            bench_scale.normalize_record(
                {"kind": "repro-bench-scale", "results": {"dense": {"n1200": 3.0}}}
            )

    def test_cli_reports_truncated_artifact_as_usage_error(self, tmp_path, capsys):
        record_path = tmp_path / "truncated.json"
        record_path.write_text(
            json.dumps({"kind": "repro-bench-scale", "results": {"dense": []}}),
            encoding="utf-8",
        )
        assert main(["bench", "scale", "--compare", str(record_path)]) == 2
        assert "truncated artifact" in capsys.readouterr().err


class TestSpillFailFast:
    def test_check_spill_writable_raises_one_line(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory", encoding="utf-8")
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(blocker))
        with pytest.raises(RuntimeError, match="spill directory is not writable") as excinfo:
            bench_scale.check_spill_writable()
        message = str(excinfo.value)
        assert "\n" not in message
        assert SPILL_DIR_ENV_VAR in message
        # Fail fast means before any cell runs: the chained OSError is consumed.
        assert excinfo.value.__cause__ is None

    def test_parity_only_cli_fails_with_reason_not_traceback(self, tmp_path, monkeypatch, capsys):
        # The CI bench smokes grep stderr for this exact failure shape.
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory", encoding="utf-8")
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(blocker))
        assert main(["bench", "scale", "--parity-only"]) == 1
        err = capsys.readouterr().err
        assert "spill directory is not writable" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_run_bench_scale_fails_fast(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory", encoding="utf-8")
        monkeypatch.setenv(SPILL_DIR_ENV_VAR, str(blocker))
        with pytest.raises(RuntimeError, match="spill directory is not writable"):
            bench_scale.run_bench_scale(backends=("dense",), sizes=("n1200",))


class TestCellSubprocessHardening:
    class _Completed:
        def __init__(self, returncode=0, stdout="", stderr=""):
            self.returncode = returncode
            self.stdout = stdout
            self.stderr = stderr

    def test_garbage_stdout_is_a_runtime_error(self, monkeypatch):
        monkeypatch.setattr(
            bench_scale.subprocess,
            "run",
            lambda *args, **kwargs: self._Completed(stdout="not json at all"),
        )
        with pytest.raises(RuntimeError, match="no parseable measurement"):
            bench_scale._run_cell_subprocess("dense", 100)

    def test_empty_stdout_is_a_runtime_error(self, monkeypatch):
        monkeypatch.setattr(
            bench_scale.subprocess,
            "run",
            lambda *args, **kwargs: self._Completed(stdout="", stderr="cell died"),
        )
        with pytest.raises(RuntimeError, match="no parseable measurement"):
            bench_scale._run_cell_subprocess("dense", 100)

    def test_nonzero_exit_reports_last_stderr_line(self, monkeypatch):
        monkeypatch.setattr(
            bench_scale.subprocess,
            "run",
            lambda *args, **kwargs: self._Completed(
                returncode=1, stderr="noise\nMemoryError: out of memory"
            ),
        )
        with pytest.raises(RuntimeError, match="MemoryError: out of memory") as excinfo:
            bench_scale._run_cell_subprocess("memmap", 100)
        assert "noise" not in str(excinfo.value)

    def test_cell_main_prints_one_line_on_failure(self, monkeypatch, capsys):
        def explode(backend, n_samples, rounds=1):
            raise RuntimeError("synthetic cell failure")

        monkeypatch.setattr(bench_scale, "run_cell", explode)
        assert bench_scale._cell_main(["dense", "100"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == "RuntimeError: synthetic cell failure"
