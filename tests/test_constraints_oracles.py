"""Tests for the pluggable constraint-oracle subsystem."""

import numpy as np
import pytest

from repro.constraints import is_consistent
from repro.constraints.constraint import CANNOT_LINK, MUST_LINK, Constraint, ConstraintSet
from repro.constraints.generation import (
    build_constraint_pool,
    sample_constraint_subset,
    sample_labeled_objects,
)
from repro.constraints.oracles import (
    ActiveOracle,
    BudgetedOracle,
    ConstraintOracle,
    NoisyOracle,
    PerfectOracle,
    make_oracle,
    oracle_from_spec,
    oracle_names,
    repair_closure_consistency,
)
from repro.datasets import make_iris_like


@pytest.fixture(scope="module")
def iris():
    return make_iris_like(random_state=0)


ALL_ORACLES = [
    PerfectOracle(),
    NoisyOracle(flip_probability=0.3),
    NoisyOracle(flip_probability=0.3, repair=True),
    BudgetedOracle(budget=40, ordering="random"),
    BudgetedOracle(budget=40, ordering="farthest_first"),
    BudgetedOracle(budget=40, ordering="min_max"),
    ActiveOracle(budget=40, batch_size=8),
]


class TestRegistry:
    def test_builtin_names_registered(self):
        assert set(oracle_names()) >= {"perfect", "noisy", "budgeted", "active"}

    def test_make_oracle_by_name(self):
        oracle = make_oracle("noisy", flip_probability=0.25, repair=True)
        assert isinstance(oracle, NoisyOracle)
        assert oracle.flip_probability == 0.25 and oracle.repair is True

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            make_oracle("psychic")

    def test_unknown_parameters_all_listed_at_once(self):
        with pytest.raises(ValueError, match="bogus.*nope|nope.*bogus"):
            make_oracle("noisy", bogus=1, nope=2)

    @pytest.mark.parametrize("oracle", ALL_ORACLES, ids=lambda o: repr(o))
    def test_spec_roundtrip(self, oracle):
        spec = oracle.spec()
        assert spec["name"] == oracle.name
        rebuilt = oracle_from_spec(spec)
        assert rebuilt == oracle and rebuilt.spec() == spec

    def test_spec_is_json_scalar(self):
        import json

        for oracle in ALL_ORACLES:
            json.dumps(oracle.spec())  # must not raise

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError, match="spec"):
            oracle_from_spec({"flip_probability": 0.1})

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="flip_probability"):
            NoisyOracle(flip_probability=1.5)
        with pytest.raises(ValueError, match="budget"):
            BudgetedOracle(budget=0)
        with pytest.raises(ValueError, match="ordering"):
            BudgetedOracle(ordering="sideways")
        with pytest.raises(ValueError, match="batch_size"):
            ActiveOracle(batch_size=-1)

    def test_oracles_are_picklable(self):
        import pickle

        for oracle in ALL_ORACLES:
            assert pickle.loads(pickle.dumps(oracle)) == oracle


class TestPerfectOracle:
    def test_constraints_bit_compatible_with_generation(self, iris):
        """The tentpole guarantee: same seed, same stream, same constraints."""
        rng = np.random.default_rng(42)
        pool = build_constraint_pool(iris.y, fraction_per_class=0.10, random_state=rng)
        expected = sample_constraint_subset(pool, 0.2, random_state=rng)
        actual = PerfectOracle().pairwise_constraints(
            iris.y, 0.2, random_state=np.random.default_rng(42)
        )
        assert actual == expected

    def test_labels_bit_compatible_with_generation(self, iris):
        expected = sample_labeled_objects(iris.y, 0.1, random_state=5)
        actual = PerfectOracle().labeled_objects(iris.y, 0.1, random_state=5)
        assert actual == expected

    def test_side_information_dispatch(self, iris):
        labels, constraints = PerfectOracle().side_information(
            iris.y, "labels", 0.1, random_state=0
        )
        assert labels and len(constraints) == 0
        labels, constraints = PerfectOracle().side_information(
            iris.y, "constraints", 0.2, random_state=0
        )
        assert not labels and len(constraints) > 0

    def test_unknown_scenario_rejected(self, iris):
        with pytest.raises(ValueError, match="scenario"):
            PerfectOracle().side_information(iris.y, "telepathy", 0.1, random_state=0)


class TestNoisyOracle:
    def test_zero_flip_rate_equals_perfect(self, iris):
        perfect = PerfectOracle().pairwise_constraints(iris.y, 0.2, random_state=3)
        noisy = NoisyOracle(flip_probability=0.0).pairwise_constraints(
            iris.y, 0.2, random_state=3
        )
        assert noisy == perfect

    def test_full_flip_rate_inverts_every_kind(self, iris):
        perfect = PerfectOracle().pairwise_constraints(iris.y, 0.2, random_state=3)
        flipped = NoisyOracle(flip_probability=1.0).pairwise_constraints(
            iris.y, 0.2, random_state=3
        )
        assert len(flipped) == len(perfect)
        for constraint in flipped:
            assert constraint.kind != perfect.kind_of(constraint.i, constraint.j)

    def test_repair_restores_consistency(self, iris):
        oracle = NoisyOracle(flip_probability=0.5, repair=True)
        for seed in range(5):
            constraints = oracle.pairwise_constraints(iris.y, 0.5, random_state=seed)
            assert is_consistent(constraints)

    def test_repair_only_drops_contradicting_cannot_links(self):
        constraints = ConstraintSet(
            [
                Constraint(0, 1, MUST_LINK),
                Constraint(1, 2, MUST_LINK),
                Constraint(0, 2, CANNOT_LINK),  # contradicts the chain
                Constraint(3, 4, CANNOT_LINK),  # independent, survives
            ]
        )
        repaired = repair_closure_consistency(constraints)
        assert Constraint(0, 2, CANNOT_LINK) not in repaired
        assert Constraint(3, 4, CANNOT_LINK) in repaired
        assert repaired.n_must_link == 2

    def test_noisy_labels_stay_within_classes(self, iris):
        labels = NoisyOracle(flip_probability=1.0).labeled_objects(
            iris.y, 0.2, random_state=1
        )
        classes = set(int(cls) for cls in np.unique(iris.y))
        for index, label in labels.items():
            assert label in classes
            assert label != int(iris.y[index])  # p=1 always flips


class TestBudgetedOracle:
    @pytest.mark.parametrize("ordering", ["random", "farthest_first", "min_max"])
    def test_budget_is_a_hard_cap(self, iris, ordering):
        oracle = BudgetedOracle(budget=25, ordering=ordering)
        constraints = oracle.pairwise_constraints(iris.y, 1.0, random_state=2, X=iris.X)
        assert 0 < len(constraints) <= 25
        labels = oracle.labeled_objects(iris.y, 0.5, random_state=2, X=iris.X)
        assert 0 < len(labels) <= 25

    @pytest.mark.parametrize("ordering", ["random", "farthest_first", "min_max"])
    def test_answers_are_truthful(self, iris, ordering):
        oracle = BudgetedOracle(budget=30, ordering=ordering)
        constraints = oracle.pairwise_constraints(iris.y, 1.0, random_state=2, X=iris.X)
        for constraint in constraints:
            expected = MUST_LINK if iris.y[constraint.i] == iris.y[constraint.j] else CANNOT_LINK
            assert constraint.kind == expected

    def test_distance_orderings_require_X(self, iris):
        with pytest.raises(ValueError, match="data matrix"):
            BudgetedOracle(ordering="farthest_first").pairwise_constraints(
                iris.y, 0.5, random_state=0
            )

    def test_orderings_differ(self, iris):
        by_ordering = {
            ordering: BudgetedOracle(budget=30, ordering=ordering).pairwise_constraints(
                iris.y, 1.0, random_state=2, X=iris.X
            )
            for ordering in ("random", "farthest_first", "min_max")
        }
        assert by_ordering["farthest_first"] != by_ordering["min_max"]
        assert by_ordering["random"] != by_ordering["farthest_first"]

    def test_amount_still_scales_below_budget(self, iris):
        oracle = BudgetedOracle(budget=10_000)
        small = oracle.pairwise_constraints(iris.y, 0.1, random_state=2)
        large = oracle.pairwise_constraints(iris.y, 0.9, random_state=2)
        assert len(small) < len(large)


class TestActiveOracle:
    def test_budget_respected_and_truthful(self, iris):
        oracle = ActiveOracle(budget=35, batch_size=7)
        constraints = oracle.pairwise_constraints(iris.y, 1.0, random_state=4)
        assert 0 < len(constraints) <= 35
        for constraint in constraints:
            expected = MUST_LINK if iris.y[constraint.i] == iris.y[constraint.j] else CANNOT_LINK
            assert constraint.kind == expected

    def test_acquisition_is_deterministic(self, iris):
        oracle = ActiveOracle(budget=30, batch_size=6)
        first = oracle.pairwise_constraints(iris.y, 1.0, random_state=4)
        second = oracle.pairwise_constraints(iris.y, 1.0, random_state=4)
        assert first == second

    def test_labels_fall_back_to_budgeted_reveal(self, iris):
        labels = ActiveOracle(budget=12).labeled_objects(iris.y, 0.5, random_state=4)
        assert 0 < len(labels) <= 12
        for index, label in labels.items():
            assert label == int(iris.y[index])


class TestDeterminism:
    @pytest.mark.parametrize("oracle", ALL_ORACLES, ids=lambda o: repr(o))
    def test_same_seed_same_side_information(self, iris, oracle):
        for scenario, amount in (("labels", 0.15), ("constraints", 0.4)):
            first = oracle.side_information(
                iris.y, scenario, amount, random_state=11, X=iris.X
            )
            second = oracle.side_information(
                iris.y, scenario, amount, random_state=11, X=iris.X
            )
            assert first == second


class TestCVCPIntegration:
    def test_cvcp_accepts_an_oracle(self, iris):
        from repro.clustering import MPCKMeans
        from repro.core.cvcp import CVCP

        search = CVCP(
            MPCKMeans(n_init=1, max_iter=5, random_state=0),
            parameter_values=[2, 3, 4],
            n_folds=3,
            oracle=NoisyOracle(flip_probability=0.1),
            oracle_scenario="labels",
            oracle_amount=0.2,
            random_state=7,
        )
        search.fit(iris.X, ground_truth=iris.y)
        assert search.best_params_["n_clusters"] in (2, 3, 4)

    def test_oracle_without_ground_truth_rejected(self, iris):
        from repro.clustering import MPCKMeans
        from repro.core.cvcp import CVCP

        search = CVCP(
            MPCKMeans(n_init=1, max_iter=5, random_state=0),
            parameter_values=[2, 3],
            n_folds=3,
            oracle=PerfectOracle(),
            random_state=7,
        )
        with pytest.raises(ValueError, match="ground_truth"):
            search.fit(iris.X, constraints=PerfectOracle().pairwise_constraints(
                iris.y, 0.2, random_state=0
            ))

    def test_ground_truth_with_explicit_side_information_rejected(self, iris):
        from repro.clustering import MPCKMeans
        from repro.core.cvcp import CVCP

        search = CVCP(
            MPCKMeans(n_init=1, max_iter=5, random_state=0),
            parameter_values=[2, 3],
            n_folds=3,
            random_state=7,
        )
        with pytest.raises(ValueError, match="not both"):
            search.fit(iris.X, ground_truth=iris.y, labeled_objects={0: 0, 60: 1})

    def test_select_parameter_with_oracle(self, iris):
        from repro.clustering import MPCKMeans
        from repro.core.cvcp import select_parameter

        best, result = select_parameter(
            MPCKMeans(n_init=1, max_iter=5, random_state=0),
            iris.X,
            [2, 3, 4],
            ground_truth=iris.y,
            oracle=PerfectOracle(),
            oracle_scenario="constraints",
            oracle_amount=0.3,
            n_folds=3,
            random_state=7,
        )
        assert best in (2, 3, 4)
        assert result.scenario == "constraints"

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            ConstraintOracle()
