"""Unit tests for result containers and baseline selectors."""

import numpy as np
import pytest

from repro.clustering import KMeans, MPCKMeans
from repro.constraints import constraints_from_labels, sample_labeled_objects
from repro.core import CVCPResult, SilhouetteSelector, expected_quality
from repro.core.model_selection import (
    MINPTS_RANGE,
    ParameterEvaluation,
    parameter_range_for_k,
)


class TestParameterEvaluation:
    def test_mean_and_std(self):
        evaluation = ParameterEvaluation(value=3, fold_scores=[0.5, 0.7, 0.9])
        assert evaluation.mean_score == pytest.approx(0.7)
        assert evaluation.std_score == pytest.approx(np.std([0.5, 0.7, 0.9]))

    def test_empty_scores(self):
        evaluation = ParameterEvaluation(value=3)
        assert evaluation.mean_score == 0.0
        assert evaluation.std_score == 0.0


class TestCVCPResult:
    def _result(self):
        return CVCPResult(
            parameter_name="k",
            evaluations=[
                ParameterEvaluation(2, [0.4, 0.5]),
                ParameterEvaluation(3, [0.9, 0.8]),
                ParameterEvaluation(4, [0.7, 0.6]),
            ],
            n_folds=2,
            scenario="labels",
        )

    def test_best_value_and_score(self):
        result = self._result()
        assert result.best_value == 3
        assert result.best_score == pytest.approx(0.85)
        assert result.best_index == 1

    def test_values_and_mean_scores(self):
        result = self._result()
        assert result.values == [2, 3, 4]
        assert np.allclose(result.mean_scores, [0.45, 0.85, 0.65])

    def test_tie_breaks_towards_smaller_value(self):
        result = CVCPResult(
            parameter_name="k",
            evaluations=[ParameterEvaluation(2, [0.8]), ParameterEvaluation(5, [0.8])],
            n_folds=1,
            scenario="labels",
        )
        assert result.best_value == 2

    def test_empty_result_raises(self):
        result = CVCPResult("k", [], 3, "labels")
        with pytest.raises(ValueError):
            _ = result.best_value


class TestSilhouetteSelector:
    def test_selects_true_k_on_blobs(self, blobs_dataset):
        selector = SilhouetteSelector(KMeans(random_state=0), [2, 3, 4, 5])
        selector.fit(blobs_dataset.X)
        assert selector.best_value_ == 3
        assert selector.labels_.shape == (blobs_dataset.n_samples,)
        assert len(selector.scores_) == 4

    def test_uses_side_information_through_estimator(self, blobs_dataset):
        labeled = sample_labeled_objects(blobs_dataset.y, 0.2, random_state=0)
        constraints = constraints_from_labels(labeled)
        selector = SilhouetteSelector(
            MPCKMeans(random_state=0, n_init=1, max_iter=10), [2, 3, 4]
        )
        selector.fit(blobs_dataset.X, constraints=constraints)
        assert selector.best_value_ in [2, 3, 4]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            SilhouetteSelector(KMeans(), [])

    def test_missing_parameter_name_rejected(self):
        class Nameless(KMeans):
            tuned_parameter = ""

        with pytest.raises(ValueError):
            SilhouetteSelector(Nameless(), [2, 3])


class TestExpectedQuality:
    def test_is_the_mean(self):
        assert expected_quality([0.2, 0.4, 0.9]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expected_quality([])


class TestParameterRanges:
    def test_paper_minpts_range(self):
        assert MINPTS_RANGE == (3, 6, 9, 12, 15, 18, 21, 24)

    def test_k_range(self):
        assert parameter_range_for_k(5) == [2, 3, 4, 5]
        with pytest.raises(ValueError):
            parameter_range_for_k(1)
