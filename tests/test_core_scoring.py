"""Unit tests for the constraint-classification scoring (Section 3.2)."""

import numpy as np
import pytest

from repro.constraints import ConstraintSet, cannot_link, must_link
from repro.core import SCORERS, constraint_accuracy_score, constraint_f_score, score_partition


@pytest.fixture()
def constraints():
    return ConstraintSet([
        must_link(0, 1),
        must_link(2, 3),
        cannot_link(0, 2),
        cannot_link(1, 3),
    ])


class TestConstraintFScore:
    def test_perfect_partition(self, constraints):
        labels = np.array([0, 0, 1, 1])
        assert constraint_f_score(labels, constraints) == pytest.approx(1.0)

    def test_all_violated(self, constraints):
        labels = np.array([0, 1, 0, 1])
        assert constraint_f_score(labels, constraints) == pytest.approx(0.0)

    def test_partial_satisfaction_between_zero_and_one(self, constraints):
        labels = np.array([0, 0, 0, 1])
        score = constraint_f_score(labels, constraints)
        assert 0.0 < score < 1.0

    def test_empty_constraints_scores_zero(self):
        assert constraint_f_score(np.array([0, 1]), ConstraintSet()) == 0.0

    def test_single_big_cluster_gets_only_must_link_credit(self, constraints):
        labels = np.zeros(4, dtype=int)
        score = constraint_f_score(labels, constraints)
        # Must-link class: P=0.5, R=1.0 -> F=2/3; cannot-link class: F=0.
        assert score == pytest.approx(0.5 * (2 / 3))

    def test_noise_counts_as_separated(self, constraints):
        labels = np.array([-1, -1, -1, -1])
        score = constraint_f_score(labels, constraints)
        # Cannot-links satisfied, must-links violated.
        # must-link F = 0; cannot-link: P = 2/4... recall = 1 -> F = 2*0.5*1/1.5 = 2/3.
        assert score == pytest.approx(0.5 * (2 / 3))


class TestAccuracyScore:
    def test_matches_fraction_satisfied(self, constraints):
        labels = np.array([0, 0, 0, 1])
        # ML(0,1) ok, ML(2,3) violated, CL(0,2) violated, CL(1,3) ok -> 2/4.
        assert constraint_accuracy_score(labels, constraints) == pytest.approx(0.5)

    def test_empty_constraints(self):
        assert constraint_accuracy_score(np.array([0]), ConstraintSet()) == 0.0


class TestScorePartition:
    def test_registry_contains_expected_scorers(self):
        assert {"average_f", "accuracy", "must_link_f"} <= set(SCORERS)

    def test_dispatch(self, constraints):
        labels = np.array([0, 0, 1, 1])
        assert score_partition(labels, constraints, scoring="average_f") == pytest.approx(1.0)
        assert score_partition(labels, constraints, scoring="accuracy") == pytest.approx(1.0)

    def test_unknown_scorer(self, constraints):
        with pytest.raises(ValueError):
            score_partition(np.array([0, 0, 1, 1]), constraints, scoring="auc")

    def test_f_score_differs_from_accuracy_under_imbalance(self):
        """With many cannot-links and few must-links the two scorers disagree."""
        constraints = ConstraintSet([must_link(0, 1)])
        for i in range(2, 12):
            constraints.add(cannot_link(0, i))
            constraints.add(cannot_link(1, i))
        # A partition that separates everything: all cannot-links satisfied,
        # the single must-link violated.
        labels = np.arange(12)
        accuracy = score_partition(labels, constraints, scoring="accuracy")
        average_f = score_partition(labels, constraints, scoring="average_f")
        assert accuracy > 0.9
        assert average_f < accuracy  # the averaged F penalises the missed class
